//! Relay core: subscription aggregation, object caching, and
//! topology-aware upstream routing.
//!
//! Paper §3: "Relays are MoQT endpoints that do not publish or consume
//! media but forward and route objects from publishers to subscribers.
//! Relays can aggregate subscriptions of multiple subscribers to a single
//! upstream subscription and cache objects without accessing the object
//! payload."
//!
//! [`RelayCore`] is the pure logic of such a relay: it maps downstream
//! subscriptions onto (at most) one upstream subscription per track,
//! caches objects by `(track, group, object)` identity, and computes
//! fan-out lists. It never parses payloads — there is no DNS dependency in
//! this crate at all, which *proves* payload agnosticism at the type
//! level. The surrounding node (in `moqdns-core`) owns the actual sessions
//! and executes the actions this core emits.
//!
//! ## Routing
//!
//! The paper's §5.3 scenarios assume distribution paths of several relays
//! ("involving 5 MoQ relays on average"), so a relay is not limited to one
//! upstream parent: it holds an ordered set of *uplinks* and a
//! [`RoutePolicy`] that picks, per track, which uplink serves the upstream
//! subscription. The policy only ever sees the track identity and the
//! current uplink health — never payloads — so routing stays
//! payload-agnostic too. Three policies cover the §5.3 topologies:
//!
//! * [`StaticParent`] — the classic single-parent chain (uplink 0 always);
//! * [`HashShard`] — deterministic track-hash sharding across K parents,
//!   spreading distinct tracks over a multi-relay mesh;
//! * [`Failover`] — primary-first with fail-over to the next healthy
//!   uplink when the upstream connection closes.
//!
//! Every [`RelayAction::SubscribeUpstream`] carries the chosen
//! [`UplinkId`]; when an uplink dies the owning node reports it via
//! [`RelayCore::on_uplink_closed`] and executes the re-subscribe actions
//! the core emits (the re-route is where fail-over actually happens).

use crate::data::Object;
use crate::track::FullTrackName;
use moqdns_wire::Payload;
use std::collections::{BTreeMap, HashMap};

/// Identifies one downstream session at the owning node.
pub type SessionKey = u64;

/// Index of one upstream parent in the relay's ordered uplink set.
pub type UplinkId = usize;

/// Liveness of each uplink, as reported by the owning node.
///
/// The core marks an uplink down in [`RelayCore::on_uplink_closed`] and up
/// again in [`RelayCore::on_uplink_up`]; policies consult this view when
/// choosing where a track's upstream subscription should live.
#[derive(Debug, Clone)]
pub struct UplinkHealth {
    up: Vec<bool>,
}

impl UplinkHealth {
    /// All `n` uplinks start healthy.
    pub fn new(n: usize) -> UplinkHealth {
        UplinkHealth { up: vec![true; n] }
    }

    /// Number of configured uplinks.
    pub fn len(&self) -> usize {
        self.up.len()
    }

    /// True when no uplinks are configured.
    pub fn is_empty(&self) -> bool {
        self.up.is_empty()
    }

    /// Whether uplink `i` is currently believed healthy.
    pub fn is_up(&self, i: UplinkId) -> bool {
        self.up.get(i).copied().unwrap_or(false)
    }

    fn set(&mut self, i: UplinkId, up: bool) {
        if let Some(slot) = self.up.get_mut(i) {
            *slot = up;
        }
    }

    /// First healthy uplink in index order, if any.
    pub fn first_up(&self) -> Option<UplinkId> {
        self.up.iter().position(|&u| u)
    }
}

/// Per-track upstream selection. Implementations must be deterministic:
/// the same track and the same health view always yield the same uplink,
/// so a simulation replays identically from its seed.
pub trait RoutePolicy: std::fmt::Debug {
    /// Chooses the uplink that should carry `track`'s upstream
    /// subscription. `None` means no uplink can serve it (e.g. zero
    /// uplinks configured).
    fn route(&self, track: &FullTrackName, health: &UplinkHealth) -> Option<UplinkId>;

    /// Short label for stats tables.
    fn name(&self) -> &'static str;
}

/// The classic single-parent chain: every track routes to uplink 0, even
/// when it is marked down (routing to a down uplink makes the owning node
/// redial it — the reconnect semantics a single-parent relay needs).
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticParent;

impl RoutePolicy for StaticParent {
    fn route(&self, _track: &FullTrackName, health: &UplinkHealth) -> Option<UplinkId> {
        (!health.is_empty()).then_some(0)
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Deterministic track-hash sharding across K uplinks: a track's home
/// shard is `track_hash % K`; when the home shard is down the policy walks
/// the ring to the next healthy uplink, and when everything is down it
/// returns the home shard (forcing a redial there).
#[derive(Debug, Default, Clone, Copy)]
pub struct HashShard;

impl RoutePolicy for HashShard {
    fn route(&self, track: &FullTrackName, health: &UplinkHealth) -> Option<UplinkId> {
        let k = health.len();
        if k == 0 {
            return None;
        }
        let home = (track_hash(track) % k as u64) as usize;
        for step in 0..k {
            let cand = (home + step) % k;
            if health.is_up(cand) {
                return Some(cand);
            }
        }
        Some(home)
    }

    fn name(&self) -> &'static str {
        "hash-shard"
    }
}

/// Primary-first with fail-over: tracks ride the lowest-index healthy
/// uplink; when the primary's connection closes everything re-routes to
/// the next healthy one. With all uplinks down it falls back to uplink 0.
#[derive(Debug, Default, Clone, Copy)]
pub struct Failover;

impl RoutePolicy for Failover {
    fn route(&self, _track: &FullTrackName, health: &UplinkHealth) -> Option<UplinkId> {
        if health.is_empty() {
            return None;
        }
        Some(health.first_up().unwrap_or(0))
    }

    fn name(&self) -> &'static str {
        "failover"
    }
}

/// Stable 64-bit FNV-1a hash of a track identity (namespace tuple +
/// name, length-delimited so distinct tuples never collide by
/// concatenation). Independent of process, seed, and run — the property
/// the sharding determinism tests pin down.
pub fn track_hash(track: &FullTrackName) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    fn eat(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    let mut h = OFFSET;
    for part in &track.namespace {
        h = eat(h, &(part.len() as u64).to_le_bytes());
        h = eat(h, part);
    }
    h = eat(h, &(track.name.len() as u64).to_le_bytes());
    eat(h, &track.name)
}

/// What the owning node must do after feeding the core an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayAction {
    /// Open (or reuse) the upstream session on `uplink` and subscribe to
    /// `track`; associate the upstream subscription with `track`.
    SubscribeUpstream {
        /// Track to subscribe to upstream.
        track: FullTrackName,
        /// Which uplink the route policy chose.
        uplink: UplinkId,
    },
    /// Accept the downstream subscription with our current largest version.
    AcceptDownstream {
        /// Downstream session.
        session: SessionKey,
        /// Downstream request id.
        request_id: u64,
        /// Largest cached (group, object), if any.
        largest: Option<(u64, u64)>,
    },
    /// Forward an object to a downstream subscriber.
    Forward {
        /// Downstream session.
        session: SessionKey,
        /// Downstream request id.
        request_id: u64,
        /// The object (payload untouched).
        object: Object,
    },
    /// Answer a downstream fetch from cache.
    ServeFetch {
        /// Downstream session.
        session: SessionKey,
        /// Downstream fetch request id.
        request_id: u64,
        /// Largest cached (group, object).
        largest: (u64, u64),
        /// Cached objects in range.
        objects: Vec<Object>,
    },
    /// Cache miss with no fetch already in flight: the node must fetch on
    /// `uplink` and then call [`RelayCore::on_upstream_fetch_result`] (or
    /// [`RelayCore::on_upstream_fetch_failed`]). The waiting downstream
    /// fetches live in the core's pending-fetch table, not in the action:
    /// any number of concurrent same-track fetches collapse into one
    /// upstream fetch whose result fans out to every waiter.
    FetchUpstream {
        /// Track to fetch.
        track: FullTrackName,
        /// Which uplink to fetch from.
        uplink: UplinkId,
        /// Start group requested.
        start_group: u64,
        /// End group requested (inclusive).
        end_group: u64,
    },
    /// Reject a downstream fetch (upstream unavailable or fetch failed).
    RejectFetch {
        /// Downstream session.
        session: SessionKey,
        /// Downstream fetch request id.
        request_id: u64,
    },
    /// No downstream subscribers remain: drop the upstream subscription.
    UnsubscribeUpstream {
        /// Track to drop.
        track: FullTrackName,
        /// Uplink that carried the subscription.
        uplink: UplinkId,
    },
}

/// Per-track relay state.
#[derive(Debug, Default)]
struct TrackState {
    /// Downstream subscribers: (session, request_id).
    subscribers: Vec<(SessionKey, u64)>,
    /// Uplink carrying the upstream subscription, when one exists (or is
    /// being set up).
    upstream: Option<UplinkId>,
    /// Object cache: (group, object) -> payload handle. BTreeMap gives
    /// range queries for fetches; storing [`Payload`] means caching an
    /// object shares the publisher's bytes instead of copying them.
    cache: BTreeMap<(u64, u64), Payload>,
}

impl TrackState {
    fn largest(&self) -> Option<(u64, u64)> {
        self.cache.keys().next_back().copied()
    }
}

/// One in-flight upstream fetch and the downstream fetches blocked on it.
///
/// The §3 stampede problem: when N downstreams issue a joining fetch for
/// the same (cold) track at once, a naive relay escalates N upstream
/// fetches — `fetch_cache_misses` multiplies up the tree exactly the way
/// aggregation is supposed to prevent. The pending-fetch table collapses
/// them: the first miss opens the upstream fetch, every later one joins
/// the waiter list, and the single result fans out to all of them.
#[derive(Debug)]
struct PendingFetch {
    /// Uplink carrying the in-flight upstream fetch.
    uplink: UplinkId,
    /// Start group of the in-flight request.
    start_group: u64,
    /// End group (inclusive) of the in-flight request.
    end_group: u64,
    /// Downstream fetches blocked on the result.
    waiters: Vec<Waiter>,
}

/// One downstream fetch blocked on an in-flight upstream fetch. The
/// requested range is kept per waiter so the fan-out serves each waiter
/// only the groups it asked for, exactly like the cache-hit path.
#[derive(Debug)]
struct Waiter {
    session: SessionKey,
    request_id: u64,
    start_group: u64,
    end_group: u64,
}

/// Counters for relay effectiveness (ablation A3, §3 aggregation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Downstream subscription requests seen.
    pub downstream_subscribes: u64,
    /// Upstream subscriptions opened (including re-subscribes after an
    /// uplink loss).
    pub upstream_subscribes: u64,
    /// Objects forwarded downstream.
    pub objects_forwarded: u64,
    /// Fetches served from cache.
    pub fetch_cache_hits: u64,
    /// Fetches requiring upstream data (whether they opened a new upstream
    /// fetch or joined one already in flight).
    pub fetch_cache_misses: u64,
    /// Cache-missing fetches absorbed by an in-flight upstream fetch for
    /// the same track (no extra upstream fetch was opened).
    pub fetch_coalesced: u64,
    /// Upstream fetches actually opened
    /// (`fetch_cache_misses - fetch_coalesced`, plus re-issues after an
    /// uplink died with the fetch in flight).
    pub upstream_fetches: u64,
    /// Downstream fetches answered from an upstream fetch result fanning
    /// out through the waiter list.
    pub fetch_waiters_served: u64,
    /// Tracks moved to a *different* uplink after their uplink closed.
    pub reroutes: u64,
    /// Tracks moved back onto a recovered uplink (its hash shard or
    /// failover priority reclaimed) by [`RelayCore::on_uplink_up`].
    pub rebalances: u64,
}

/// The relay's track/subscription/cache bookkeeping.
#[derive(Debug)]
pub struct RelayCore {
    tracks: HashMap<FullTrackName, TrackState>,
    /// In-flight upstream fetches with their blocked downstreams.
    pending: HashMap<FullTrackName, PendingFetch>,
    /// Cap on cached objects per track (oldest groups evicted first).
    cache_per_track: usize,
    policy: Box<dyn RoutePolicy>,
    health: UplinkHealth,
    stats: RelayStats,
}

impl RelayCore {
    /// Creates a single-uplink relay core caching up to `cache_per_track`
    /// objects per track (0 = unlimited) — the classic single-parent chain.
    pub fn new(cache_per_track: usize) -> RelayCore {
        RelayCore::with_policy(cache_per_track, 1, Box::new(StaticParent))
    }

    /// Creates a relay core routing across `n_uplinks` upstream parents
    /// according to `policy`.
    pub fn with_policy(
        cache_per_track: usize,
        n_uplinks: usize,
        policy: Box<dyn RoutePolicy>,
    ) -> RelayCore {
        RelayCore {
            tracks: HashMap::new(),
            pending: HashMap::new(),
            cache_per_track,
            policy,
            health: UplinkHealth::new(n_uplinks),
            stats: RelayStats::default(),
        }
    }

    /// Drops all track, cache, and pending-fetch state and marks every
    /// uplink healthy again, keeping the cumulative counters. Used when
    /// the owning node is revived after a mid-run shutdown: downstream
    /// sessions and upstream connections are gone, so the bookkeeping
    /// must start over.
    pub fn reset(&mut self) {
        self.tracks.clear();
        self.pending.clear();
        self.health = UplinkHealth::new(self.health.len());
    }

    /// Number of in-flight upstream fetches (pending-fetch table size).
    pub fn pending_fetch_count(&self) -> usize {
        self.pending.len()
    }

    /// Relay effectiveness counters.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// The route policy's label (for stats tables).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current uplink health view.
    pub fn health(&self) -> &UplinkHealth {
        &self.health
    }

    /// Number of tracks with any state.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Total downstream subscriptions across tracks.
    pub fn subscriber_count(&self) -> usize {
        self.tracks.values().map(|t| t.subscribers.len()).sum()
    }

    /// Number of live upstream subscriptions.
    pub fn upstream_count(&self) -> usize {
        self.tracks
            .values()
            .filter(|t| t.upstream.is_some())
            .count()
    }

    /// Upstream aggregation factor: downstream subs per upstream sub
    /// (the relay's whole point — N downstream cost 1 upstream).
    pub fn aggregation_factor(&self) -> f64 {
        let up = self.upstream_count();
        if up == 0 {
            0.0
        } else {
            self.subscriber_count() as f64 / up as f64
        }
    }

    /// A downstream session subscribed to `track`.
    pub fn on_downstream_subscribe(
        &mut self,
        session: SessionKey,
        request_id: u64,
        track: FullTrackName,
    ) -> Vec<RelayAction> {
        self.stats.downstream_subscribes += 1;
        let st = self.tracks.entry(track.clone()).or_default();
        st.subscribers.push((session, request_id));
        let mut actions = vec![RelayAction::AcceptDownstream {
            session,
            request_id,
            largest: st.largest(),
        }];
        if st.upstream.is_none() {
            if let Some(uplink) = self.policy.route(&track, &self.health) {
                st.upstream = Some(uplink);
                self.stats.upstream_subscribes += 1;
                actions.insert(0, RelayAction::SubscribeUpstream { track, uplink });
            }
        }
        actions
    }

    /// A downstream session unsubscribed.
    pub fn on_downstream_unsubscribe(
        &mut self,
        session: SessionKey,
        request_id: u64,
    ) -> Vec<RelayAction> {
        let mut actions = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            st.subscribers
                .retain(|&(s, r)| !(s == session && r == request_id));
            if st.subscribers.is_empty() {
                if let Some(uplink) = st.upstream.take() {
                    actions.push(RelayAction::UnsubscribeUpstream {
                        track: track.clone(),
                        uplink,
                    });
                }
            }
        }
        actions
    }

    /// A whole downstream session died: drop all its subscriptions.
    pub fn on_session_closed(&mut self, session: SessionKey) -> Vec<RelayAction> {
        let mut actions = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            st.subscribers.retain(|&(s, _)| s != session);
            if st.subscribers.is_empty() {
                if let Some(uplink) = st.upstream.take() {
                    actions.push(RelayAction::UnsubscribeUpstream {
                        track: track.clone(),
                        uplink,
                    });
                }
            }
        }
        actions
    }

    /// The connection behind `uplink` closed. Marks it down and re-routes
    /// every track whose upstream subscription lived there: each gets a
    /// fresh [`RelayAction::SubscribeUpstream`] on the uplink the policy
    /// now picks (possibly the same one — that makes the node redial).
    pub fn on_uplink_closed(&mut self, uplink: UplinkId) -> Vec<RelayAction> {
        self.health.set(uplink, false);
        let mut actions = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            if st.upstream != Some(uplink) {
                continue;
            }
            if st.subscribers.is_empty() {
                st.upstream = None;
                continue;
            }
            match self.policy.route(track, &self.health) {
                Some(new) => {
                    if new != uplink {
                        self.stats.reroutes += 1;
                    }
                    self.stats.upstream_subscribes += 1;
                    st.upstream = Some(new);
                    actions.push(RelayAction::SubscribeUpstream {
                        track: track.clone(),
                        uplink: new,
                    });
                }
                None => st.upstream = None,
            }
        }
        // Pending upstream fetches that rode the dead uplink: re-issue on
        // the uplink the policy now picks (the waiter list survives), or
        // reject every waiter when no other uplink can serve the track.
        let stranded: Vec<FullTrackName> = self
            .pending
            .iter()
            .filter(|(_, p)| p.uplink == uplink)
            .map(|(t, _)| t.clone())
            .collect();
        for track in stranded {
            let new = self.policy.route(&track, &self.health);
            let p = self.pending.get_mut(&track).unwrap();
            match new {
                Some(new) if new != uplink => {
                    p.uplink = new;
                    self.stats.upstream_fetches += 1;
                    actions.push(RelayAction::FetchUpstream {
                        track,
                        uplink: new,
                        start_group: p.start_group,
                        end_group: p.end_group,
                    });
                }
                _ => {
                    let p = self.pending.remove(&track).unwrap();
                    for w in p.waiters {
                        actions.push(RelayAction::RejectFetch {
                            session: w.session,
                            request_id: w.request_id,
                        });
                    }
                }
            }
        }
        actions
    }

    /// A connection to `uplink` is live again: mark it healthy and
    /// *rebalance* — every track whose current uplink differs from what
    /// the policy now picks moves back (a recovered uplink reclaims its
    /// hash shard; a recovered failover primary reclaims everything).
    /// Each move is an `UnsubscribeUpstream` on the old uplink plus a
    /// fresh `SubscribeUpstream` on the recovered one, counted in
    /// [`RelayStats::rebalances`].
    pub fn on_uplink_up(&mut self, uplink: UplinkId) -> Vec<RelayAction> {
        self.health.set(uplink, true);
        let mut actions = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            let Some(cur) = st.upstream else { continue };
            if st.subscribers.is_empty() {
                continue;
            }
            let Some(new) = self.policy.route(track, &self.health) else {
                continue;
            };
            if new == cur {
                continue;
            }
            st.upstream = Some(new);
            self.stats.rebalances += 1;
            self.stats.upstream_subscribes += 1;
            actions.push(RelayAction::UnsubscribeUpstream {
                track: track.clone(),
                uplink: cur,
            });
            actions.push(RelayAction::SubscribeUpstream {
                track: track.clone(),
                uplink: new,
            });
        }
        actions
    }

    /// An object arrived from upstream on `track`: cache + fan out.
    /// The payload is moved through untouched, and *shared*: caching and
    /// every per-subscriber [`RelayAction::Forward`] clone the payload
    /// handle (a refcount bump), so publish cost is O(1) in subscriber
    /// count for payload bytes copied.
    pub fn on_upstream_object(
        &mut self,
        track: &FullTrackName,
        object: Object,
    ) -> Vec<RelayAction> {
        let Some(st) = self.tracks.get_mut(track) else {
            return Vec::new();
        };
        st.cache
            .insert((object.group_id, object.object_id), object.payload.clone());
        if self.cache_per_track > 0 {
            while st.cache.len() > self.cache_per_track {
                let oldest = *st.cache.keys().next().unwrap();
                st.cache.remove(&oldest);
            }
        }
        let mut actions = Vec::with_capacity(st.subscribers.len());
        for &(session, request_id) in &st.subscribers {
            self.stats.objects_forwarded += 1;
            actions.push(RelayAction::Forward {
                session,
                request_id,
                object: object.clone(),
            });
        }
        actions
    }

    /// A downstream fetch for groups `[start_group, end_group]` of `track`.
    /// Served from cache when the range is present; coalesced into an
    /// in-flight upstream fetch for the same track when one covers the
    /// range; otherwise escalated on the track's current uplink (or the
    /// policy's pick for it).
    pub fn on_downstream_fetch(
        &mut self,
        session: SessionKey,
        request_id: u64,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
    ) -> Vec<RelayAction> {
        let st = self.tracks.entry(track.clone()).or_default();
        let objects: Vec<Object> = st
            .cache
            .range((start_group, 0)..=(end_group, u64::MAX))
            .map(|(&(g, o), payload)| Object {
                group_id: g,
                object_id: o,
                payload: payload.clone(),
            })
            .collect();
        if let (Some(largest), false) = (st.largest(), objects.is_empty()) {
            self.stats.fetch_cache_hits += 1;
            return vec![RelayAction::ServeFetch {
                session,
                request_id,
                largest,
                objects,
            }];
        }
        self.stats.fetch_cache_misses += 1;
        let waiter = Waiter {
            session,
            request_id,
            start_group,
            end_group,
        };
        if let Some(p) = self.pending.get_mut(&track) {
            if p.start_group <= start_group && end_group <= p.end_group {
                // The stampede case: an upstream fetch covering this range
                // is already in flight — join its waiter list.
                p.waiters.push(waiter);
                self.stats.fetch_coalesced += 1;
                return Vec::new();
            }
        }
        let uplink = st
            .upstream
            .or_else(|| self.policy.route(&track, &self.health))
            .unwrap_or(0);
        // New upstream fetch. If a narrower one was in flight, widen the
        // recorded range to the union and keep its waiters: whichever
        // result lands first serves everyone (relay fetches are whole-track
        // in practice, so this branch is a correctness backstop).
        let entry = self.pending.entry(track.clone()).or_insert(PendingFetch {
            uplink,
            start_group,
            end_group,
            waiters: Vec::new(),
        });
        entry.start_group = entry.start_group.min(start_group);
        entry.end_group = entry.end_group.max(end_group);
        let (start_group, end_group) = (entry.start_group, entry.end_group);
        entry.waiters.push(waiter);
        self.stats.upstream_fetches += 1;
        vec![RelayAction::FetchUpstream {
            track,
            uplink,
            start_group,
            end_group,
        }]
    }

    /// The node completed an upstream fetch triggered by
    /// [`RelayAction::FetchUpstream`]: cache the objects and fan the
    /// result out to every downstream fetch blocked in the waiter list
    /// (each served exactly once).
    pub fn on_upstream_fetch_result(
        &mut self,
        track: &FullTrackName,
        objects: Vec<Object>,
    ) -> Vec<RelayAction> {
        let st = self.tracks.entry(track.clone()).or_default();
        for o in &objects {
            st.cache
                .insert((o.group_id, o.object_id), o.payload.clone());
        }
        if self.cache_per_track > 0 {
            while st.cache.len() > self.cache_per_track {
                let oldest = *st.cache.keys().next().unwrap();
                st.cache.remove(&oldest);
            }
        }
        let largest = st.largest().unwrap_or((0, 0));
        let Some(p) = self.pending.remove(track) else {
            return Vec::new();
        };
        self.stats.fetch_waiters_served += p.waiters.len() as u64;
        p.waiters
            .into_iter()
            .map(|w| RelayAction::ServeFetch {
                session: w.session,
                request_id: w.request_id,
                largest,
                // Each waiter gets only the groups it asked for — the same
                // range filter the cache-hit path applies.
                objects: objects
                    .iter()
                    .filter(|o| (w.start_group..=w.end_group).contains(&o.group_id))
                    .cloned()
                    .collect(),
            })
            .collect()
    }

    /// The upstream fetch for `track` failed (rejected or its uplink could
    /// not be dialed): reject every waiter blocked on it.
    pub fn on_upstream_fetch_failed(&mut self, track: &FullTrackName) -> Vec<RelayAction> {
        let Some(p) = self.pending.remove(track) else {
            return Vec::new();
        };
        p.waiters
            .into_iter()
            .map(|w| RelayAction::RejectFetch {
                session: w.session,
                request_id: w.request_id,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track(n: u8) -> FullTrackName {
        FullTrackName::new(vec![vec![n]], vec![n, n]).unwrap()
    }

    fn obj(group: u64, payload: &[u8]) -> Object {
        Object {
            group_id: group,
            object_id: 0,
            payload: payload.into(),
        }
    }

    #[test]
    fn first_subscriber_triggers_upstream() {
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_subscribe(1, 2, track(1));
        assert_eq!(a.len(), 2);
        assert!(matches!(
            a[0],
            RelayAction::SubscribeUpstream { uplink: 0, .. }
        ));
        assert!(matches!(
            a[1],
            RelayAction::AcceptDownstream { largest: None, .. }
        ));
    }

    #[test]
    fn aggregation_single_upstream_for_many_downstream() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        let a2 = r.on_downstream_subscribe(2, 2, track(1));
        let a3 = r.on_downstream_subscribe(3, 4, track(1));
        // Only accepts; no further upstream subscribes.
        assert!(a2
            .iter()
            .all(|a| !matches!(a, RelayAction::SubscribeUpstream { .. })));
        assert!(a3
            .iter()
            .all(|a| !matches!(a, RelayAction::SubscribeUpstream { .. })));
        assert_eq!(r.stats().upstream_subscribes, 1);
        assert_eq!(r.stats().downstream_subscribes, 3);
        assert!((r.aggregation_factor() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn objects_fan_out_to_all_subscribers() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_subscribe(2, 2, track(1));
        let acts = r.on_upstream_object(&track(1), obj(7, b"payload"));
        assert_eq!(acts.len(), 2);
        for a in &acts {
            match a {
                RelayAction::Forward { object, .. } => {
                    assert_eq!(object.group_id, 7);
                    assert_eq!(object.payload, b"payload");
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(r.stats().objects_forwarded, 2);
    }

    #[test]
    fn late_subscriber_sees_cached_largest() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_upstream_object(&track(1), obj(9, b"v9"));
        let a = r.on_downstream_subscribe(2, 2, track(1));
        assert!(a.iter().any(|a| matches!(
            a,
            RelayAction::AcceptDownstream {
                largest: Some((9, 0)),
                ..
            }
        )));
    }

    #[test]
    fn fetch_served_from_cache() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_upstream_object(&track(1), obj(5, b"v5"));
        let a = r.on_downstream_fetch(2, 8, track(1), 5, 5);
        match &a[0] {
            RelayAction::ServeFetch {
                objects, largest, ..
            } => {
                assert_eq!(objects.len(), 1);
                assert_eq!(*largest, (5, 0));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.stats().fetch_cache_hits, 1);
    }

    #[test]
    fn fetch_miss_escalates_upstream_then_serves() {
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_fetch(2, 8, track(1), 5, 5);
        assert!(matches!(a[0], RelayAction::FetchUpstream { uplink: 0, .. }));
        assert_eq!(r.stats().fetch_cache_misses, 1);
        assert_eq!(r.stats().upstream_fetches, 1);
        assert_eq!(r.pending_fetch_count(), 1);
        let a = r.on_upstream_fetch_result(&track(1), vec![obj(5, b"v5")]);
        assert_eq!(a.len(), 1, "one waiter, one ServeFetch");
        match &a[0] {
            RelayAction::ServeFetch {
                session,
                request_id,
                objects,
                ..
            } => {
                assert_eq!((*session, *request_id), (2, 8));
                assert_eq!(objects.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.pending_fetch_count(), 0);
        // Now cached for the next fetch.
        let a = r.on_downstream_fetch(3, 2, track(1), 5, 5);
        assert!(matches!(a[0], RelayAction::ServeFetch { .. }));
    }

    #[test]
    fn fetch_stampede_coalesces_to_one_upstream_fetch() {
        // N concurrent same-track joining fetches -> ONE FetchUpstream;
        // the single result fans out to every blocked downstream.
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_fetch(1, 10, track(1), 0, u64::MAX);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
        for s in 2..=8u64 {
            let a = r.on_downstream_fetch(s, 10 + s, track(1), 0, u64::MAX);
            assert!(a.is_empty(), "coalesced into the in-flight fetch");
        }
        assert_eq!(r.stats().fetch_cache_misses, 8);
        assert_eq!(r.stats().fetch_coalesced, 7);
        assert_eq!(r.stats().upstream_fetches, 1);

        let acts = r.on_upstream_fetch_result(&track(1), vec![obj(3, b"v3")]);
        assert_eq!(acts.len(), 8, "every waiter served");
        let mut served: Vec<(u64, u64)> = acts
            .iter()
            .map(|a| match a {
                RelayAction::ServeFetch {
                    session,
                    request_id,
                    objects,
                    largest,
                } => {
                    assert_eq!(objects.len(), 1);
                    assert_eq!(*largest, (3, 0));
                    (*session, *request_id)
                }
                other => panic!("{other:?}"),
            })
            .collect();
        served.sort_unstable();
        served.dedup();
        assert_eq!(served.len(), 8, "each downstream served exactly once");
        assert_eq!(r.stats().fetch_waiters_served, 8);
        // The result is cached: a late fetch is a plain hit.
        let a = r.on_downstream_fetch(99, 1, track(1), 0, u64::MAX);
        assert!(matches!(a[0], RelayAction::ServeFetch { .. }));
    }

    #[test]
    fn waiter_fanout_filters_objects_to_each_requested_range() {
        // A wide fetch opens the upstream fetch; a narrower one coalesces.
        // The fan-out must serve each waiter only the groups it asked for,
        // like the cache-hit path would.
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_fetch(1, 10, track(1), 0, 10);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
        assert!(r.on_downstream_fetch(2, 20, track(1), 2, 3).is_empty());
        let acts = r.on_upstream_fetch_result(&track(1), (0..=5).map(|g| obj(g, b"x")).collect());
        assert_eq!(acts.len(), 2);
        for a in &acts {
            match a {
                RelayAction::ServeFetch {
                    session, objects, ..
                } => {
                    let groups: Vec<u64> = objects.iter().map(|o| o.group_id).collect();
                    match session {
                        1 => assert_eq!(groups, vec![0, 1, 2, 3, 4, 5]),
                        2 => assert_eq!(groups, vec![2, 3], "narrow waiter filtered"),
                        other => panic!("unexpected session {other}"),
                    }
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn failed_upstream_fetch_rejects_all_waiters() {
        let mut r = RelayCore::new(0);
        r.on_downstream_fetch(1, 10, track(1), 0, u64::MAX);
        r.on_downstream_fetch(2, 20, track(1), 0, u64::MAX);
        let acts = r.on_upstream_fetch_failed(&track(1));
        assert_eq!(acts.len(), 2);
        assert!(acts
            .iter()
            .all(|a| matches!(a, RelayAction::RejectFetch { .. })));
        assert_eq!(r.pending_fetch_count(), 0);
        // A later fetch opens a fresh upstream fetch.
        let a = r.on_downstream_fetch(3, 30, track(1), 0, u64::MAX);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
    }

    #[test]
    fn pending_fetch_reissued_when_uplink_dies() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(Failover));
        let a = r.on_downstream_fetch(1, 10, track(1), 0, u64::MAX);
        let died = match a[0] {
            RelayAction::FetchUpstream { uplink, .. } => uplink,
            ref other => panic!("{other:?}"),
        };
        let acts = r.on_uplink_closed(died);
        // The in-flight fetch moves to the surviving uplink, waiters kept.
        let refetched = acts.iter().find_map(|a| match a {
            RelayAction::FetchUpstream { uplink, .. } => Some(*uplink),
            _ => None,
        });
        assert_eq!(refetched, Some(1 - died));
        assert_eq!(r.pending_fetch_count(), 1);
        let served = r.on_upstream_fetch_result(&track(1), vec![obj(1, b"x")]);
        assert_eq!(served.len(), 1);
    }

    #[test]
    fn pending_fetch_rejected_when_no_uplink_left() {
        let mut r = RelayCore::new(0); // StaticParent: only uplink 0.
        r.on_downstream_fetch(1, 10, track(1), 0, u64::MAX);
        let acts = r.on_uplink_closed(0);
        // StaticParent routes back to the dead uplink 0: the fetch cannot
        // move, so the waiter is rejected (the node would redial for the
        // *subscription*, but an in-flight fetch has no result coming).
        assert!(acts.iter().any(|a| matches!(
            a,
            RelayAction::RejectFetch {
                session: 1,
                request_id: 10
            }
        )));
        assert_eq!(r.pending_fetch_count(), 0);
    }

    #[test]
    fn last_unsubscribe_drops_upstream() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_subscribe(2, 4, track(1));
        assert!(r.on_downstream_unsubscribe(1, 2).is_empty());
        let a = r.on_downstream_unsubscribe(2, 4);
        assert!(matches!(a[0], RelayAction::UnsubscribeUpstream { .. }));
        assert_eq!(r.upstream_count(), 0);
    }

    #[test]
    fn session_close_drops_all_its_subscriptions() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_subscribe(1, 4, track(2));
        r.on_downstream_subscribe(2, 2, track(1));
        let a = r.on_session_closed(1);
        // track(2) loses its last subscriber; track(1) still has session 2.
        assert_eq!(a.len(), 1);
        assert!(matches!(
            &a[0],
            RelayAction::UnsubscribeUpstream { track: t, .. } if *t == track(2)
        ));
        assert_eq!(r.subscriber_count(), 1);
    }

    #[test]
    fn cache_eviction_keeps_newest_groups() {
        let mut r = RelayCore::new(2);
        r.on_downstream_subscribe(1, 2, track(1));
        for g in 1..=5 {
            r.on_upstream_object(&track(1), obj(g, b"x"));
        }
        // Only groups 4 and 5 remain.
        let a = r.on_downstream_fetch(2, 8, track(1), 4, 5);
        match &a[0] {
            RelayAction::ServeFetch { objects, .. } => {
                assert_eq!(
                    objects.iter().map(|o| o.group_id).collect::<Vec<_>>(),
                    vec![4, 5]
                );
            }
            other => panic!("{other:?}"),
        }
        let a = r.on_downstream_fetch(2, 10, track(1), 1, 3);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
    }

    #[test]
    fn payload_is_passed_through_byte_identical() {
        // The relay never interprets payloads: any bytes survive intact.
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        let weird: Vec<u8> = (0..=255).collect();
        let acts = r.on_upstream_object(&track(1), obj(1, &weird));
        match &acts[0] {
            RelayAction::Forward { object, .. } => assert_eq!(object.payload, weird),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fanout_shares_payload_storage() {
        // Zero-copy invariant: every Forward action and the cache entry
        // reference the published object's backing bytes — no
        // per-subscriber payload copies.
        let mut r = RelayCore::new(0);
        for s in 0..32 {
            r.on_downstream_subscribe(s, 2, track(1));
        }
        let object = obj(3, &[0x5A; 600]);
        let original = object.payload.clone();
        let acts = r.on_upstream_object(&track(1), object);
        assert_eq!(acts.len(), 32);
        for a in &acts {
            match a {
                RelayAction::Forward { object, .. } => {
                    assert!(object.payload.shares_storage_with(&original));
                }
                other => panic!("{other:?}"),
            }
        }
        // Cached fetch responses share it too.
        let a = r.on_downstream_fetch(99, 1, track(1), 3, 3);
        match &a[0] {
            RelayAction::ServeFetch { objects, .. } => {
                assert!(objects[0].payload.shares_storage_with(&original));
            }
            other => panic!("{other:?}"),
        }
    }

    // ---- routing ----

    fn subscribed_uplink(actions: &[RelayAction]) -> Option<UplinkId> {
        actions.iter().find_map(|a| match a {
            RelayAction::SubscribeUpstream { uplink, .. } => Some(*uplink),
            _ => None,
        })
    }

    #[test]
    fn hash_shard_spreads_tracks_across_uplinks() {
        let mut r = RelayCore::with_policy(0, 4, Box::new(HashShard));
        let mut used = [false; 4];
        for t in 0..32u8 {
            let a = r.on_downstream_subscribe(t as u64, 2, track(t));
            let u = subscribed_uplink(&a).expect("routed");
            assert!(u < 4);
            used[u] = true;
        }
        // 32 distinct tracks over 4 shards: every shard sees traffic.
        assert!(used.iter().all(|&u| u), "all shards used: {used:?}");
    }

    #[test]
    fn hash_shard_same_track_same_uplink() {
        let route = |r: &mut RelayCore, t: u8| {
            let a = r.on_downstream_subscribe(t as u64, 2, track(t));
            subscribed_uplink(&a).unwrap()
        };
        let mut r1 = RelayCore::with_policy(0, 3, Box::new(HashShard));
        let mut r2 = RelayCore::with_policy(0, 3, Box::new(HashShard));
        for t in 0..16u8 {
            assert_eq!(route(&mut r1, t), route(&mut r2, t), "track {t}");
        }
    }

    #[test]
    fn failover_moves_tracks_to_surviving_uplink() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(Failover));
        let a = r.on_downstream_subscribe(1, 2, track(1));
        assert_eq!(subscribed_uplink(&a), Some(0), "primary first");
        let a = r.on_uplink_closed(0);
        assert_eq!(a.len(), 1, "one re-subscribe per affected track");
        assert_eq!(subscribed_uplink(&a), Some(1), "failed over");
        assert_eq!(r.stats().reroutes, 1);
        // Upstream objects keep flowing to the same downstream set.
        let acts = r.on_upstream_object(&track(1), obj(3, b"x"));
        assert_eq!(acts.len(), 1);
    }

    #[test]
    fn failover_back_pressure_when_all_down() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(Failover));
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_uplink_closed(0);
        let a = r.on_uplink_closed(1);
        // Everything down: policy falls back to uplink 0 (redial).
        assert_eq!(subscribed_uplink(&a), Some(0));
        // Recovery marks it healthy — and rebalances the track onto the
        // recovered uplink (better than a dead fallback).
        let a = r.on_uplink_up(1);
        assert!(r.health().is_up(1));
        assert_eq!(subscribed_uplink(&a), Some(1));
        assert_eq!(r.stats().rebalances, 1);
    }

    #[test]
    fn recovered_uplink_reclaims_its_hash_shard() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(HashShard));
        // Subscribe tracks until both shards carry at least one.
        let mut home = [Vec::new(), Vec::new()];
        for t in 0..8u8 {
            let a = r.on_downstream_subscribe(t as u64, 2, track(t));
            home[subscribed_uplink(&a).unwrap()].push(t);
        }
        assert!(!home[0].is_empty() && !home[1].is_empty());
        // Uplink 0 dies: its tracks ring-walk to uplink 1.
        let a = r.on_uplink_closed(0);
        assert_eq!(a.len(), home[0].len());
        assert_eq!(r.stats().reroutes, home[0].len() as u64);
        // Uplink 0 recovers: exactly its home tracks move back.
        let acts = r.on_uplink_up(0);
        let resubs: Vec<&RelayAction> = acts
            .iter()
            .filter(|a| matches!(a, RelayAction::SubscribeUpstream { uplink: 0, .. }))
            .collect();
        assert_eq!(resubs.len(), home[0].len(), "shard reclaimed");
        // Every move pairs an unsubscribe on the temporary uplink.
        let unsubs = acts
            .iter()
            .filter(|a| matches!(a, RelayAction::UnsubscribeUpstream { uplink: 1, .. }))
            .count();
        assert_eq!(unsubs, home[0].len());
        assert_eq!(r.stats().rebalances, home[0].len() as u64);
        // Tracks already home stay put: recovering uplink 1 moves nothing.
        assert!(r.on_uplink_up(1).is_empty());
    }

    #[test]
    fn reset_clears_state_keeps_counters() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(HashShard));
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_fetch(2, 8, track(2), 0, u64::MAX);
        r.on_uplink_closed(0);
        let before = r.stats();
        r.reset();
        assert_eq!(r.track_count(), 0);
        assert_eq!(r.pending_fetch_count(), 0);
        assert!(r.health().is_up(0), "health restarts optimistic");
        assert_eq!(r.stats(), before, "cumulative counters survive");
    }

    #[test]
    fn static_parent_redials_same_uplink() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        let a = r.on_uplink_closed(0);
        // Single parent: re-subscribe on uplink 0 (the node reconnects).
        assert_eq!(subscribed_uplink(&a), Some(0));
        assert_eq!(r.stats().reroutes, 0, "same uplink is not a reroute");
    }

    #[test]
    fn uplink_close_skips_subscriberless_tracks() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(Failover));
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_unsubscribe(1, 2);
        // Cache/track state may remain, but nothing re-subscribes.
        assert!(r.on_uplink_closed(0).is_empty());
    }

    #[test]
    fn hash_shard_walks_ring_past_down_uplink() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(HashShard));
        // Find a track whose home shard is 0.
        let t_home0 = (0..64u8)
            .find(|&t| track_hash(&track(t)).is_multiple_of(2))
            .expect("some track hashes to shard 0");
        let a = r.on_downstream_subscribe(1, 2, track(t_home0));
        assert_eq!(subscribed_uplink(&a), Some(0));
        let a = r.on_uplink_closed(0);
        assert_eq!(subscribed_uplink(&a), Some(1), "ring walk to healthy");
    }

    proptest::proptest! {
        /// Waiter fan-out is exact: for ANY interleaving of cache-missing
        /// same-track fetches (distinct (session, request) pairs), one
        /// upstream fetch is opened and its result serves every blocked
        /// downstream exactly once — no drops, no duplicates.
        #[test]
        fn prop_waiter_fanout_serves_each_exactly_once(
            n_waiters in 1usize..40,
            track_byte in 0u8..255,
        ) {
            let mut r = RelayCore::new(0);
            let t = track(track_byte);
            let mut expected = Vec::new();
            let mut upstream_fetches = 0;
            for i in 0..n_waiters {
                let (session, request_id) = (i as u64, (i * 7 + 3) as u64);
                expected.push((session, request_id));
                let acts = r.on_downstream_fetch(session, request_id, t.clone(), 0, u64::MAX);
                upstream_fetches +=
                    acts.iter()
                        .filter(|a| matches!(a, RelayAction::FetchUpstream { .. }))
                        .count();
            }
            proptest::prop_assert_eq!(upstream_fetches, 1);
            proptest::prop_assert_eq!(r.stats().fetch_coalesced, n_waiters as u64 - 1);

            let acts = r.on_upstream_fetch_result(&t, vec![obj(1, b"v")]);
            let mut served: Vec<(u64, u64)> = acts
                .iter()
                .map(|a| match a {
                    RelayAction::ServeFetch { session, request_id, .. } => {
                        (*session, *request_id)
                    }
                    other => panic!("{other:?}"),
                })
                .collect();
            served.sort_unstable();
            expected.sort_unstable();
            proptest::prop_assert_eq!(served, expected);
            proptest::prop_assert_eq!(r.stats().fetch_waiters_served, n_waiters as u64);
            proptest::prop_assert_eq!(r.pending_fetch_count(), 0);
        }
    }

    #[test]
    fn track_hash_is_stable() {
        // Pin the hash so accidental algorithm changes (which would
        // re-shard every deployed track) fail loudly.
        let t = FullTrackName::new(vec![b"ns".to_vec()], b"name".to_vec()).unwrap();
        assert_eq!(track_hash(&t), track_hash(&t));
        let t2 = FullTrackName::new(vec![b"ns2".to_vec()], b"name".to_vec()).unwrap();
        assert_ne!(track_hash(&t), track_hash(&t2));
        // Length-delimited: ["ab","c"] and ["a","bc"] must differ.
        let ab_c = FullTrackName::new(vec![b"ab".to_vec(), b"c".to_vec()], vec![]).unwrap();
        let a_bc = FullTrackName::new(vec![b"a".to_vec(), b"bc".to_vec()], vec![]).unwrap();
        assert_ne!(track_hash(&ab_c), track_hash(&a_bc));
    }
}
