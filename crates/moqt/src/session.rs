//! The MoQT session state machine.
//!
//! A [`Session`] rides on exactly one `moqdns_quic::Connection` (which the
//! caller owns — typically inside an `Endpoint`): the session never does io
//! of its own. Drivers forward the connection's events into
//! [`Session::on_conn_event`] and call the session's verbs (subscribe,
//! fetch, publish, …) with a `&mut Connection` to write into.
//!
//! Protocol shape (draft-12 subset):
//!
//! * all control messages flow on the **first client-initiated
//!   bidirectional stream** (the control stream, paper §3);
//! * a client can send its CLIENT_SETUP in **0-RTT** data when it holds a
//!   resumption ticket — collapsing QUIC + MoQT setup into one round trip
//!   (the second optimization of paper §5.2);
//! * objects travel on unidirectional subgroup/fetch streams, one group per
//!   stream (or datagrams, for the ablation);
//! * **joining fetch** (§4.1): SUBSCRIBE with the latest-object filter plus
//!   a relative FETCH with offset 1 retrieves the current record version
//!   while future updates arrive via the subscription.

use crate::data::{
    decode_data_stream, encode_fetch_stream_into, encode_subgroup_stream_into, DataStream, Object,
    ObjectDatagram, SubgroupHeader,
};
use crate::message::{ControlMessage, FetchType, FilterType};
use crate::track::FullTrackName;
use moqdns_quic::{Connection, Dir, Event as QuicEvent, StreamId};
use moqdns_wire::BufPool;
use std::collections::{HashMap, VecDeque};

/// Session-level configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Versions offered (client) / supported (server), preference order.
    pub versions: Vec<u64>,
    /// MAX_REQUEST_ID granted to the peer.
    pub max_request_id: u64,
    /// Send requests before SERVER_SETUP arrives. Draft-12 forbids this
    /// (version negotiation must finish first → the 3-RTT cold path of
    /// paper §5.2); `true` models the future "version negotiation in
    /// ALPN" optimization that removes the extra round trip.
    pub pipeline: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            versions: vec![crate::MOQT_VERSION],
            max_request_id: 1 << 20,
            pipeline: false,
        }
    }
}

/// How an incoming FETCH names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncomingFetchKind {
    /// Standalone: explicit track + absolute range.
    StandAlone {
        /// The fetched track.
        track: FullTrackName,
        /// First group.
        start_group: u64,
        /// Last group (inclusive).
        end_group: u64,
    },
    /// Joining: relative to one of *our* granted subscriptions.
    Joining {
        /// The peer's subscription this fetch joins.
        joining_request_id: u64,
        /// Groups before the subscription start to return (1 = latest
        /// existing version, per the DNS mapping).
        offset: u64,
        /// The resolved track of that subscription.
        track: FullTrackName,
    },
    /// Federation fetch from a peer relay core, carrying the remaining
    /// hop budget (see [`crate::message::FetchType::Peer`]).
    Peer {
        /// The fetched track.
        track: FullTrackName,
        /// First group.
        start_group: u64,
        /// Last group (inclusive).
        end_group: u64,
        /// Core-to-core forwards this fetch may still take.
        hop_budget: u64,
    },
}

/// Events a session surfaces to its application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// Setup handshake finished; the session is usable.
    Ready {
        /// Negotiated MoQT version.
        version: u64,
    },
    /// The peer wants to subscribe to a track (we are the publisher).
    /// Answer with [`Session::accept_subscribe`] or
    /// [`Session::reject_subscribe`].
    IncomingSubscribe {
        /// Peer's request id.
        request_id: u64,
        /// The track.
        track: FullTrackName,
    },
    /// The peer wants past objects. Answer with [`Session::respond_fetch`]
    /// or [`Session::reject_fetch`].
    IncomingFetch {
        /// Peer's request id.
        request_id: u64,
        /// What is being fetched.
        kind: IncomingFetchKind,
    },
    /// Our SUBSCRIBE was accepted.
    SubscribeAccepted {
        /// Our request id.
        request_id: u64,
        /// Publisher's largest (group, object), if the track has content.
        largest: Option<(u64, u64)>,
    },
    /// Our SUBSCRIBE was refused (also the §4.5 fallback signal).
    SubscribeRejected {
        /// Our request id.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// Our FETCH was accepted; objects will arrive in [`SessionEvent::FetchObjects`].
    FetchAccepted {
        /// Our request id.
        request_id: u64,
        /// Publisher's largest (group, object).
        largest: (u64, u64),
    },
    /// Our FETCH was refused.
    FetchRejected {
        /// Our request id.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// A complete fetch response stream arrived.
    FetchObjects {
        /// Our fetch request id.
        request_id: u64,
        /// The returned objects.
        objects: Vec<Object>,
    },
    /// An object arrived on one of our subscriptions (a pushed update).
    SubscriptionObject {
        /// Our subscribe request id.
        request_id: u64,
        /// The object.
        object: Object,
    },
    /// The publisher ended one of our subscriptions.
    SubscriptionEnded {
        /// Our subscribe request id.
        request_id: u64,
        /// Status code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// The peer dropped one of its subscriptions to us (stop publishing).
    PeerUnsubscribed {
        /// The peer's request id.
        request_id: u64,
    },
    /// The peer asked us to move to another session.
    GoAway {
        /// Redirect URI.
        uri: String,
    },
    /// The peer violated the protocol; the connection should be closed.
    ProtocolViolation(&'static str),
}

/// Publisher-side record of a peer's subscription.
#[derive(Debug, Clone)]
struct PeerSub {
    track: FullTrackName,
    track_alias: u64,
    accepted: bool,
}

/// Subscriber-side record of our own subscription.
#[derive(Debug, Clone)]
struct MySub {
    #[allow(dead_code)]
    track: FullTrackName,
    track_alias: u64,
}

/// A MoQT session over one QUIC connection.
pub struct Session {
    is_client: bool,
    config: SessionConfig,
    control_stream: Option<StreamId>,
    control_rx: Vec<u8>,
    ready: bool,
    version: Option<u64>,
    next_request_id: u64,
    my_subs: HashMap<u64, MySub>,
    alias_to_sub: HashMap<u64, u64>,
    peer_subs: HashMap<u64, PeerSub>,
    my_fetches: HashMap<u64, ()>,
    data_rx: HashMap<StreamId, Vec<u8>>,
    events: VecDeque<SessionEvent>,
    /// Control messages queued until SERVER_SETUP (strict draft-12 mode).
    queued_control: Vec<ControlMessage>,
    /// Recycled encode buffers for control/data-stream framing.
    pool: BufPool,
}

impl Session {
    /// Creates the client side of a session.
    pub fn client(config: SessionConfig) -> Session {
        Session::new(true, config)
    }

    /// Creates the server side of a session.
    pub fn server(config: SessionConfig) -> Session {
        Session::new(false, config)
    }

    fn new(is_client: bool, config: SessionConfig) -> Session {
        Session {
            is_client,
            config,
            control_stream: None,
            control_rx: Vec::new(),
            ready: false,
            version: None,
            next_request_id: if is_client { 0 } else { 1 },
            my_subs: HashMap::new(),
            alias_to_sub: HashMap::new(),
            peer_subs: HashMap::new(),
            my_fetches: HashMap::new(),
            data_rx: HashMap::new(),
            events: VecDeque::new(),
            queued_control: Vec::new(),
            pool: BufPool::default(),
        }
    }

    /// True once SETUP completed in both directions.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Negotiated version, once ready.
    pub fn version(&self) -> Option<u64> {
        self.version
    }

    /// Number of live subscriptions we hold (subscriber side).
    pub fn subscription_count(&self) -> usize {
        self.my_subs.len()
    }

    /// Number of live subscriptions peers hold on us (publisher side).
    pub fn peer_subscription_count(&self) -> usize {
        self.peer_subs.len()
    }

    /// Rough state size in bytes (paper §5.1 overhead accounting).
    pub fn state_size_estimate(&self) -> usize {
        std::mem::size_of::<Session>()
            + self
                .my_subs
                .values()
                .map(|s| 64 + s.track.total_len())
                .sum::<usize>()
            + self
                .peer_subs
                .values()
                .map(|s| 64 + s.track.total_len())
                .sum::<usize>()
            + self.control_rx.len()
            + self.data_rx.values().map(Vec::len).sum::<usize>()
    }

    fn alloc_request_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 2;
        id
    }

    /// Starts the session. Clients open the control stream and send
    /// CLIENT_SETUP immediately — with a resumption ticket this rides 0-RTT.
    pub fn start(&mut self, conn: &mut Connection) {
        if self.is_client && self.control_stream.is_none() {
            let id = conn.open_stream(Dir::Bi).expect("control stream");
            self.control_stream = Some(id);
            let setup = ControlMessage::ClientSetup {
                versions: self.config.versions.clone(),
                max_request_id: self.config.max_request_id,
            };
            self.send_control(conn, &setup);
        }
    }

    /// Sends a request message, holding it back until the session is ready
    /// unless pipelining is enabled (paper §5.2 RTT semantics).
    fn send_request(&mut self, conn: &mut Connection, msg: ControlMessage) {
        if self.ready || self.config.pipeline {
            self.send_control(conn, &msg);
        } else {
            self.queued_control.push(msg);
        }
    }

    fn send_control(&mut self, conn: &mut Connection, msg: &ControlMessage) {
        let Some(cs) = self.control_stream else {
            self.events
                .push_back(SessionEvent::ProtocolViolation("no control stream"));
            return;
        };
        let mut w = self.pool.writer();
        let mut scratch = self.pool.writer();
        msg.encode_into(&mut w, &mut scratch);
        let bytes = w.as_slice();
        let mut off = 0;
        while off < bytes.len() {
            match conn.send_stream(cs, &bytes[off..]) {
                Ok(0) | Err(_) => break, // flow control stall: drop (tiny msgs never hit this)
                Ok(n) => off += n,
            }
        }
        self.pool.recycle_writer(scratch);
        self.pool.recycle_writer(w);
    }

    // ------------------------------------------------------------------
    // Subscriber-side verbs
    // ------------------------------------------------------------------

    /// SUBSCRIBEs to a track from the next group onward. Returns our
    /// request id.
    pub fn subscribe(&mut self, conn: &mut Connection, track: FullTrackName) -> u64 {
        let request_id = self.alloc_request_id();
        let track_alias = request_id;
        self.my_subs.insert(
            request_id,
            MySub {
                track: track.clone(),
                track_alias,
            },
        );
        self.alias_to_sub.insert(track_alias, request_id);
        let msg = ControlMessage::Subscribe {
            request_id,
            track_alias,
            track,
            filter: FilterType::LatestObject,
        };
        self.send_request(conn, msg);
        request_id
    }

    /// The paper's lookup operation (§4.1): SUBSCRIBE plus a joining FETCH
    /// with `offset` (1 = the version immediately before the subscription).
    /// Returns `(subscribe_request_id, fetch_request_id)`.
    pub fn subscribe_with_joining_fetch(
        &mut self,
        conn: &mut Connection,
        track: FullTrackName,
        offset: u64,
    ) -> (u64, u64) {
        let sub_id = self.subscribe(conn, track);
        let fetch_id = self.alloc_request_id();
        self.my_fetches.insert(fetch_id, ());
        let msg = ControlMessage::Fetch {
            request_id: fetch_id,
            fetch: FetchType::RelativeJoining {
                joining_request_id: sub_id,
                joining_start: offset,
            },
        };
        self.send_request(conn, msg);
        (sub_id, fetch_id)
    }

    /// Standalone FETCH of an absolute group range (used on reconnection to
    /// recover updates missed since a stored group id, §4.4).
    pub fn fetch(
        &mut self,
        conn: &mut Connection,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
    ) -> u64 {
        // Group ids live in varint space (≤ 2^62-1); clamp open-ended
        // ranges callers express with u64::MAX.
        let start_group = start_group.min(moqdns_wire::varint::MAX_VARINT);
        let end_group = end_group.min(moqdns_wire::varint::MAX_VARINT);
        let request_id = self.alloc_request_id();
        self.my_fetches.insert(request_id, ());
        let msg = ControlMessage::Fetch {
            request_id,
            fetch: FetchType::StandAlone {
                track,
                start_group,
                start_object: 0,
                end_group,
            },
        };
        self.send_request(conn, msg);
        request_id
    }

    /// Federation FETCH toward a peer relay core: a standalone fetch that
    /// carries the remaining hop budget so a rerouted request can never
    /// cycle through the core graph.
    pub fn fetch_peer(
        &mut self,
        conn: &mut Connection,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
        hop_budget: u64,
    ) -> u64 {
        let start_group = start_group.min(moqdns_wire::varint::MAX_VARINT);
        let end_group = end_group.min(moqdns_wire::varint::MAX_VARINT);
        let request_id = self.alloc_request_id();
        self.my_fetches.insert(request_id, ());
        let msg = ControlMessage::Fetch {
            request_id,
            fetch: FetchType::Peer {
                track,
                start_group,
                end_group,
                hop_budget,
            },
        };
        self.send_request(conn, msg);
        request_id
    }

    /// Drops one of our subscriptions (§4.4 teardown).
    pub fn unsubscribe(&mut self, conn: &mut Connection, request_id: u64) {
        if let Some(sub) = self.my_subs.remove(&request_id) {
            self.alias_to_sub.remove(&sub.track_alias);
            self.send_control(conn, &ControlMessage::Unsubscribe { request_id });
        }
    }

    // ------------------------------------------------------------------
    // Publisher-side verbs
    // ------------------------------------------------------------------

    /// Accepts a peer's subscription, advertising our largest version.
    pub fn accept_subscribe(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        largest: Option<(u64, u64)>,
    ) {
        if let Some(sub) = self.peer_subs.get_mut(&request_id) {
            sub.accepted = true;
            let msg = ControlMessage::SubscribeOk {
                request_id,
                expires_ms: 0,
                largest,
            };
            self.send_control(conn, &msg);
        }
    }

    /// Declines a peer's subscription — the §4.5 fallback path.
    pub fn reject_subscribe(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        code: u64,
        reason: &str,
    ) {
        self.peer_subs.remove(&request_id);
        let msg = ControlMessage::SubscribeError {
            request_id,
            code,
            reason: reason.to_string(),
        };
        self.send_control(conn, &msg);
    }

    /// Pushes an object to one accepted peer subscription: opens a fresh
    /// unidirectional subgroup stream, writes the object, finishes the
    /// stream (§4.1: streams, never datagrams, for reliability).
    pub fn publish(&mut self, conn: &mut Connection, request_id: u64, object: Object) -> bool {
        let Some(sub) = self.peer_subs.get(&request_id) else {
            return false;
        };
        if !sub.accepted {
            return false;
        }
        let header = SubgroupHeader {
            track_alias: sub.track_alias,
            group_id: object.group_id,
            subgroup_id: 0,
            priority: 128,
        };
        let mut w = self.pool.writer();
        encode_subgroup_stream_into(&mut w, &header, &[object]);
        let bytes = w.as_slice();
        let Ok(sid) = conn.open_stream(Dir::Uni) else {
            self.pool.recycle_writer(w);
            return false;
        };
        let mut off = 0;
        while off < bytes.len() {
            match conn.send_stream(sid, &bytes[off..]) {
                Ok(0) | Err(_) => {
                    self.pool.recycle_writer(w);
                    return false;
                }
                Ok(n) => off += n,
            }
        }
        let _ = conn.finish_stream(sid);
        self.pool.recycle_writer(w);
        true
    }

    /// Pushes an object as an unreliable datagram (ablation A2 only).
    pub fn publish_datagram(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        object: Object,
    ) -> bool {
        let Some(sub) = self.peer_subs.get(&request_id) else {
            return false;
        };
        if !sub.accepted {
            return false;
        }
        let dg = ObjectDatagram {
            track_alias: sub.track_alias,
            object,
        };
        conn.send_datagram(dg.encode()).is_ok()
    }

    /// Ends a peer's subscription from the publisher side.
    pub fn subscribe_done(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        code: u64,
        reason: &str,
    ) {
        if self.peer_subs.remove(&request_id).is_some() {
            let msg = ControlMessage::SubscribeDone {
                request_id,
                code,
                reason: reason.to_string(),
            };
            self.send_control(conn, &msg);
        }
    }

    /// Answers a peer's FETCH: FETCH_OK on the control stream plus a fetch
    /// data stream carrying `objects`.
    pub fn respond_fetch(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        largest: (u64, u64),
        objects: Vec<Object>,
    ) {
        let msg = ControlMessage::FetchOk {
            request_id,
            largest,
        };
        self.send_control(conn, &msg);
        let mut w = self.pool.writer();
        encode_fetch_stream_into(&mut w, request_id, &objects);
        let bytes = w.as_slice();
        let Ok(sid) = conn.open_stream(Dir::Uni) else {
            self.pool.recycle_writer(w);
            return;
        };
        let mut off = 0;
        while off < bytes.len() {
            match conn.send_stream(sid, &bytes[off..]) {
                Ok(0) | Err(_) => {
                    self.pool.recycle_writer(w);
                    return;
                }
                Ok(n) => off += n,
            }
        }
        let _ = conn.finish_stream(sid);
        self.pool.recycle_writer(w);
    }

    /// Declines a peer's FETCH.
    pub fn reject_fetch(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        code: u64,
        reason: &str,
    ) {
        let msg = ControlMessage::FetchError {
            request_id,
            code,
            reason: reason.to_string(),
        };
        self.send_control(conn, &msg);
    }

    // ------------------------------------------------------------------
    // Event plumbing
    // ------------------------------------------------------------------

    /// Next session event, if any.
    pub fn poll_event(&mut self) -> Option<SessionEvent> {
        self.events.pop_front()
    }

    /// Feeds a connection event into the session.
    pub fn on_conn_event(&mut self, conn: &mut Connection, ev: &QuicEvent) {
        match ev {
            QuicEvent::StreamOpened { id } => {
                if id.dir() == Dir::Bi && !self.is_client && self.control_stream.is_none() {
                    // First peer bidi stream is the control stream.
                    self.control_stream = Some(*id);
                } else if id.dir() == Dir::Uni {
                    self.data_rx.insert(*id, Vec::new());
                }
            }
            QuicEvent::StreamReadable { id } => {
                if Some(*id) == self.control_stream {
                    self.pump_control(conn);
                } else if self.data_rx.contains_key(id) {
                    self.pump_data(conn, *id);
                }
            }
            QuicEvent::DatagramReceived(d) => {
                if let Ok(dg) = ObjectDatagram::decode(d) {
                    if let Some(&sub) = self.alias_to_sub.get(&dg.track_alias) {
                        self.events.push_back(SessionEvent::SubscriptionObject {
                            request_id: sub,
                            object: dg.object,
                        });
                    }
                }
            }
            _ => {}
        }
    }

    fn pump_control(&mut self, conn: &mut Connection) {
        let Some(cs) = self.control_stream else {
            return;
        };
        loop {
            match conn.read_stream(cs, 65_536) {
                Ok((data, _fin)) if !data.is_empty() => self.control_rx.extend_from_slice(&data),
                _ => break,
            }
        }
        loop {
            match ControlMessage::decode(&self.control_rx) {
                Ok(Some((msg, used))) => {
                    self.control_rx.drain(..used);
                    self.handle_control(conn, msg);
                }
                Ok(None) => break,
                Err(_) => {
                    self.events
                        .push_back(SessionEvent::ProtocolViolation("bad control message"));
                    self.control_rx.clear();
                    break;
                }
            }
        }
    }

    fn handle_control(&mut self, conn: &mut Connection, msg: ControlMessage) {
        match msg {
            ControlMessage::ClientSetup { versions, .. } => {
                if self.is_client || self.ready {
                    self.events
                        .push_back(SessionEvent::ProtocolViolation("unexpected CLIENT_SETUP"));
                    return;
                }
                // Select the highest version both sides support.
                let ours = &self.config.versions;
                let Some(v) = versions.iter().filter(|v| ours.contains(v)).max().copied() else {
                    self.events
                        .push_back(SessionEvent::ProtocolViolation("no common version"));
                    return;
                };
                let reply = ControlMessage::ServerSetup {
                    version: v,
                    max_request_id: self.config.max_request_id,
                };
                self.send_control(conn, &reply);
                self.ready = true;
                self.version = Some(v);
                self.events.push_back(SessionEvent::Ready { version: v });
            }
            ControlMessage::ServerSetup { version, .. } => {
                if !self.is_client || self.ready {
                    self.events
                        .push_back(SessionEvent::ProtocolViolation("unexpected SERVER_SETUP"));
                    return;
                }
                self.ready = true;
                self.version = Some(version);
                let queued = std::mem::take(&mut self.queued_control);
                for msg in queued {
                    self.send_control(conn, &msg);
                }
                self.events.push_back(SessionEvent::Ready { version });
            }
            ControlMessage::Subscribe {
                request_id,
                track_alias,
                track,
                filter: _,
            } => {
                self.peer_subs.insert(
                    request_id,
                    PeerSub {
                        track: track.clone(),
                        track_alias,
                        accepted: false,
                    },
                );
                self.events
                    .push_back(SessionEvent::IncomingSubscribe { request_id, track });
            }
            ControlMessage::SubscribeOk {
                request_id,
                largest,
                ..
            } => {
                self.events.push_back(SessionEvent::SubscribeAccepted {
                    request_id,
                    largest,
                });
            }
            ControlMessage::SubscribeError {
                request_id,
                code,
                reason,
            } => {
                if let Some(sub) = self.my_subs.remove(&request_id) {
                    self.alias_to_sub.remove(&sub.track_alias);
                }
                self.events.push_back(SessionEvent::SubscribeRejected {
                    request_id,
                    code,
                    reason,
                });
            }
            ControlMessage::Unsubscribe { request_id } => {
                self.peer_subs.remove(&request_id);
                self.events
                    .push_back(SessionEvent::PeerUnsubscribed { request_id });
            }
            ControlMessage::SubscribeDone {
                request_id,
                code,
                reason,
            } => {
                if let Some(sub) = self.my_subs.remove(&request_id) {
                    self.alias_to_sub.remove(&sub.track_alias);
                }
                self.events.push_back(SessionEvent::SubscriptionEnded {
                    request_id,
                    code,
                    reason,
                });
            }
            ControlMessage::Fetch { request_id, fetch } => {
                let kind = match fetch {
                    FetchType::StandAlone {
                        track,
                        start_group,
                        end_group,
                        ..
                    } => IncomingFetchKind::StandAlone {
                        track,
                        start_group,
                        end_group,
                    },
                    FetchType::Peer {
                        track,
                        start_group,
                        end_group,
                        hop_budget,
                    } => IncomingFetchKind::Peer {
                        track,
                        start_group,
                        end_group,
                        hop_budget,
                    },
                    FetchType::RelativeJoining {
                        joining_request_id,
                        joining_start,
                    } => {
                        let Some(sub) = self.peer_subs.get(&joining_request_id) else {
                            self.reject_fetch(
                                conn,
                                request_id,
                                0x8,
                                "unknown joining subscription",
                            );
                            return;
                        };
                        IncomingFetchKind::Joining {
                            joining_request_id,
                            offset: joining_start,
                            track: sub.track.clone(),
                        }
                    }
                };
                self.events
                    .push_back(SessionEvent::IncomingFetch { request_id, kind });
            }
            ControlMessage::FetchOk {
                request_id,
                largest,
            } => {
                self.events.push_back(SessionEvent::FetchAccepted {
                    request_id,
                    largest,
                });
            }
            ControlMessage::FetchError {
                request_id,
                code,
                reason,
            } => {
                self.my_fetches.remove(&request_id);
                self.events.push_back(SessionEvent::FetchRejected {
                    request_id,
                    code,
                    reason,
                });
            }
            ControlMessage::FetchCancel { request_id: _ } => {}
            ControlMessage::Announce { request_id, .. } => {
                // Minimal handling: acknowledge (relays use this upstream).
                self.send_control(conn, &ControlMessage::AnnounceOk { request_id });
            }
            ControlMessage::AnnounceOk { .. }
            | ControlMessage::AnnounceError { .. }
            | ControlMessage::Unannounce { .. }
            | ControlMessage::MaxRequestId { .. } => {}
            ControlMessage::GoAway { uri } => {
                self.events.push_back(SessionEvent::GoAway { uri });
            }
        }
    }

    fn pump_data(&mut self, conn: &mut Connection, id: StreamId) {
        let finished = loop {
            match conn.read_stream(id, 65_536) {
                Ok((data, fin)) => {
                    if let Some(buf) = self.data_rx.get_mut(&id) {
                        buf.extend_from_slice(&data);
                    }
                    if fin {
                        break true;
                    }
                    if data.is_empty() {
                        break false;
                    }
                }
                Err(_) => break false,
            }
        };
        if !finished {
            return;
        }
        let Some(buf) = self.data_rx.remove(&id) else {
            return;
        };
        // The owned receive buffer becomes shared storage: every decoded
        // object's payload is a zero-copy sub-view of it.
        match decode_data_stream(buf) {
            Ok(DataStream::Subgroup { header, objects }) => {
                if let Some(&sub) = self.alias_to_sub.get(&header.track_alias) {
                    for object in objects {
                        self.events.push_back(SessionEvent::SubscriptionObject {
                            request_id: sub,
                            object,
                        });
                    }
                }
            }
            Ok(DataStream::Fetch {
                request_id,
                objects,
            }) => {
                if self.my_fetches.remove(&request_id).is_some() {
                    self.events.push_back(SessionEvent::FetchObjects {
                        request_id,
                        objects,
                    });
                }
            }
            Err(_) => self
                .events
                .push_back(SessionEvent::ProtocolViolation("bad data stream")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqdns_netsim::SimTime;
    use moqdns_quic::TransportConfig;
    use std::time::Duration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn track() -> FullTrackName {
        FullTrackName::new(
            vec![vec![0x01], vec![0x00, 0x01], vec![0x00, 0x01]],
            b"\x07example\x03com\x00".to_vec(),
        )
        .unwrap()
    }

    /// A test rig: two connections + two sessions shuttling datagrams.
    struct Rig {
        c_conn: Connection,
        s_conn: Connection,
        pub client: Session,
        pub server: Session,
        now: SimTime,
    }

    impl Rig {
        fn new() -> Rig {
            let alpn = moqdns_quic::alpn_list(&[crate::MOQT_ALPN]);
            let mut c_conn =
                Connection::client(1, TransportConfig::default(), alpn.clone(), None, t(0));
            let s_conn = Connection::server(1, TransportConfig::default(), alpn, 7, t(0));
            let mut client = Session::client(SessionConfig::default());
            client.start(&mut c_conn);
            let mut rig = Rig {
                c_conn,
                s_conn,
                client,
                server: Session::server(SessionConfig::default()),
                now: t(0),
            };
            rig.run();
            rig
        }

        /// Shuttles until both quiet, pumping events through the sessions.
        fn run(&mut self) {
            for _ in 0..64 {
                let mut moved = false;
                let mut c2s = Vec::new();
                while let Some(d) = self.c_conn.poll_transmit(self.now) {
                    c2s.push(d);
                }
                let mut s2c = Vec::new();
                while let Some(d) = self.s_conn.poll_transmit(self.now) {
                    s2c.push(d);
                }
                if !c2s.is_empty() || !s2c.is_empty() {
                    moved = true;
                    self.now += Duration::from_millis(10);
                    for d in c2s {
                        self.s_conn.handle_datagram(self.now, &d);
                    }
                    for d in s2c {
                        self.c_conn.handle_datagram(self.now, &d);
                    }
                }
                // Pump connection events into sessions.
                while let Some(ev) = self.c_conn.poll_event() {
                    self.client.on_conn_event(&mut self.c_conn, &ev);
                }
                while let Some(ev) = self.s_conn.poll_event() {
                    self.server.on_conn_event(&mut self.s_conn, &ev);
                }
                if !moved {
                    break;
                }
            }
        }

        fn client_events(&mut self) -> Vec<SessionEvent> {
            let mut out = Vec::new();
            while let Some(e) = self.client.poll_event() {
                out.push(e);
            }
            out
        }

        fn server_events(&mut self) -> Vec<SessionEvent> {
            let mut out = Vec::new();
            while let Some(e) = self.server.poll_event() {
                out.push(e);
            }
            out
        }
    }

    #[test]
    fn setup_negotiates_version() {
        let mut rig = Rig::new();
        assert!(rig.client.is_ready());
        assert!(rig.server.is_ready());
        assert_eq!(rig.client.version(), Some(crate::MOQT_VERSION));
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(e, SessionEvent::Ready { .. })));
        let sev = rig.server_events();
        assert!(sev.iter().any(|e| matches!(e, SessionEvent::Ready { .. })));
    }

    #[test]
    fn subscribe_accept_publish_flow() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();

        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let sev = rig.server_events();
        let req = sev
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe {
                    request_id,
                    track: tr,
                } => {
                    assert_eq!(*tr, track());
                    Some(*request_id)
                }
                _ => None,
            })
            .expect("incoming subscribe");

        rig.server
            .accept_subscribe(&mut rig.s_conn, req, Some((17, 0)));
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::SubscribeAccepted { request_id, largest: Some((17, 0)) }
            if *request_id == sub_id
        )));

        // Publish an update (a new group = new zone version).
        let ok = rig.server.publish(
            &mut rig.s_conn,
            req,
            Object {
                group_id: 18,
                object_id: 0,
                payload: b"new dns response".to_vec().into(),
            },
        );
        assert!(ok);
        rig.run();
        let cev = rig.client_events();
        let got = cev
            .iter()
            .find_map(|e| match e {
                SessionEvent::SubscriptionObject { request_id, object }
                    if *request_id == sub_id =>
                {
                    Some(object.clone())
                }
                _ => None,
            })
            .expect("pushed object");
        assert_eq!(got.group_id, 18);
        assert_eq!(got.object_id, 0);
        assert_eq!(got.payload, b"new dns response");
    }

    #[test]
    fn joining_fetch_returns_current_version() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();

        let (sub_id, fetch_id) =
            rig.client
                .subscribe_with_joining_fetch(&mut rig.c_conn, track(), 1);
        rig.run();
        let sev = rig.server_events();
        let sub_req = sev
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        let (fetch_req, kind) = sev
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingFetch { request_id, kind } => {
                    Some((*request_id, kind.clone()))
                }
                _ => None,
            })
            .unwrap();
        match kind {
            IncomingFetchKind::Joining {
                joining_request_id,
                offset,
                track: tr,
            } => {
                assert_eq!(joining_request_id, sub_req);
                assert_eq!(offset, 1);
                assert_eq!(tr, track());
            }
            other => panic!("{other:?}"),
        }

        // Server: accept subscription at version 5, answer fetch with v5.
        rig.server
            .accept_subscribe(&mut rig.s_conn, sub_req, Some((5, 0)));
        rig.server.respond_fetch(
            &mut rig.s_conn,
            fetch_req,
            (5, 0),
            vec![Object {
                group_id: 5,
                object_id: 0,
                payload: b"current record".to_vec().into(),
            }],
        );
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(
            |e| matches!(e, SessionEvent::SubscribeAccepted { request_id, .. } if *request_id == sub_id)
        ));
        assert!(cev.iter().any(
            |e| matches!(e, SessionEvent::FetchAccepted { request_id, largest: (5, 0) } if *request_id == fetch_id)
        ));
        let objs = cev
            .iter()
            .find_map(|e| match e {
                SessionEvent::FetchObjects {
                    request_id,
                    objects,
                } if *request_id == fetch_id => Some(objects.clone()),
                _ => None,
            })
            .expect("fetch objects");
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].group_id, 5);
        assert_eq!(objs[0].payload, b"current record");
    }

    #[test]
    fn subscribe_rejection_surfaces() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server
            .reject_subscribe(&mut rig.s_conn, req, 0x4, "no MoQT upstream");
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::SubscribeRejected { request_id, code: 0x4, reason }
            if *request_id == sub_id && reason == "no MoQT upstream"
        )));
        assert_eq!(rig.client.subscription_count(), 0);
    }

    #[test]
    fn unsubscribe_notifies_publisher() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server.accept_subscribe(&mut rig.s_conn, req, None);
        rig.run();
        rig.client_events();

        rig.client.unsubscribe(&mut rig.c_conn, sub_id);
        rig.run();
        let sev = rig.server_events();
        assert!(sev.iter().any(
            |e| matches!(e, SessionEvent::PeerUnsubscribed { request_id } if *request_id == req)
        ));
        assert_eq!(rig.server.peer_subscription_count(), 0);
        // Publishing to a dead subscription fails.
        assert!(!rig.server.publish(
            &mut rig.s_conn,
            req,
            Object {
                group_id: 1,
                object_id: 0,
                payload: vec![].into()
            }
        ));
    }

    #[test]
    fn subscribe_done_ends_subscription() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server.accept_subscribe(&mut rig.s_conn, req, None);
        rig.run();
        rig.client_events();
        rig.server
            .subscribe_done(&mut rig.s_conn, req, 0, "zone gone");
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::SubscriptionEnded { request_id, .. } if *request_id == sub_id
        )));
        assert_eq!(rig.client.subscription_count(), 0);
    }

    #[test]
    fn fetch_rejection_surfaces() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let fetch_id = rig.client.fetch(&mut rig.c_conn, track(), 1, 5);
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingFetch { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server
            .reject_fetch(&mut rig.s_conn, req, 0x5, "no such track");
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::FetchRejected { request_id, .. } if *request_id == fetch_id
        )));
    }

    #[test]
    fn joining_fetch_for_unknown_subscription_rejected() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        // Forge a joining fetch with a bogus joining id.
        let fetch_id = {
            let id = rig.client.alloc_request_id();
            rig.client.my_fetches.insert(id, ());
            let msg = ControlMessage::Fetch {
                request_id: id,
                fetch: FetchType::RelativeJoining {
                    joining_request_id: 999,
                    joining_start: 1,
                },
            };
            rig.client.send_control(&mut rig.c_conn, &msg);
            id
        };
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::FetchRejected { request_id, .. } if *request_id == fetch_id
        )));
    }

    #[test]
    fn datagram_objects_for_ablation() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server.accept_subscribe(&mut rig.s_conn, req, None);
        rig.run();
        rig.client_events();
        assert!(rig.server.publish_datagram(
            &mut rig.s_conn,
            req,
            Object {
                group_id: 3,
                object_id: 0,
                payload: b"dg".to_vec().into()
            }
        ));
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::SubscriptionObject { request_id, object }
            if *request_id == sub_id && object.payload == b"dg"
        )));
    }

    #[test]
    fn state_size_grows_with_subscriptions() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let base = rig.client.state_size_estimate();
        for _ in 0..10 {
            rig.client.subscribe(&mut rig.c_conn, track());
        }
        assert!(rig.client.state_size_estimate() > base);
        assert_eq!(rig.client.subscription_count(), 10);
    }
}
