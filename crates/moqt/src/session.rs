//! The MoQT session state machine.
//!
//! A [`Session`] rides on exactly one `moqdns_quic::Connection` (which the
//! caller owns — typically inside an `Endpoint`): the session never does io
//! of its own. Drivers forward the connection's events into
//! [`Session::on_conn_event`] and call the session's verbs (subscribe,
//! fetch, publish, …) with a `&mut Connection` to write into.
//!
//! # The explicit state machine
//!
//! Inbound processing is an *explicit* state machine (the rax25 idiom:
//! exhaustive input enum in, output enum out, transitions as data):
//! every wire-level occurrence is normalized into a [`SessionInput`] and
//! fed through [`Session::transition`], a pure function of
//! `(SessionState, SessionInput)` returning [`SessionOutput`]s. The match
//! is exhaustive — there is no wildcard arm over the input enum — so
//! adding an input refuses to compile until every state says what it does
//! with it.
//!
//! ```text
//!            start() [client]            SETUP done
//!   Init ─────────────────────► Handshaking ───────► Ready
//!    │  ControlStreamOpened [server] ▲                 │ GOAWAY
//!    │                               │                 ▼
//!    │                               │              Draining ── DrainTimeout ──► Closed
//!    └── any violation ──────────────┴──────────────────┴───── any violation ──► Closed
//! ```
//!
//! Legal inputs per state (everything else **poisons** the session:
//! the transition emits [`SessionEvent::ProtocolViolation`] plus a
//! [`SessionOutput::Close`] and the state latches `Closed` — never
//! today's clear-the-buffer-and-hope resync):
//!
//! | state       | legal inputs                                                        |
//! |-------------|---------------------------------------------------------------------|
//! | `Init`      | `ControlStreamOpened` (server), `DataStreamOpened`, datagrams       |
//! | `Handshaking` | `ClientSetup` (server) / `ServerSetup` (client), data streams, datagrams |
//! | `Ready`     | every request/response control message, data streams, datagrams, `GoAway` |
//! | `Draining`  | as `Ready`, but new `Subscribe`/`Fetch` are politely refused; `DrainTimeout` closes |
//! | `Closed`    | everything is inert (the poisoned/terminal state)                   |
//!
//! Malformed control bytes ([`SessionInput::MalformedControl`]), a
//! control buffer past [`SessionConfig::max_control_buffer`]
//! ([`SessionInput::ControlOverflow`]) and malformed data streams poison
//! in every live state. Malformed or unknown-alias *datagrams* never
//! poison (they are unauthenticated noise and an honest unsubscribe race
//! produces them) — they are counted in
//! [`SessionStats::dropped_datagrams`] instead.
//!
//! Protocol shape (draft-12 subset):
//!
//! * all control messages flow on the **first client-initiated
//!   bidirectional stream** (the control stream, paper §3);
//! * a client can send its CLIENT_SETUP in **0-RTT** data when it holds a
//!   resumption ticket — collapsing QUIC + MoQT setup into one round trip
//!   (the second optimization of paper §5.2);
//! * objects travel on unidirectional subgroup/fetch streams, one group per
//!   stream (or datagrams, for the ablation);
//! * **joining fetch** (§4.1): SUBSCRIBE with the latest-object filter plus
//!   a relative FETCH with offset 1 retrieves the current record version
//!   while future updates arrive via the subscription.

use crate::data::{
    decode_data_stream, encode_fetch_stream_into, encode_subgroup_stream_into, DataStream, Object,
    ObjectDatagram, SubgroupHeader,
};
use crate::message::{ControlMessage, FetchType, FilterType};
use crate::track::FullTrackName;
use moqdns_quic::{Connection, Dir, Event as QuicEvent, StreamId};
use moqdns_wire::BufPool;
use std::collections::{BTreeMap, VecDeque};

/// QUIC close code used when a session is poisoned by a violation.
pub const CLOSE_PROTOCOL_VIOLATION: u64 = 0x3;
/// QUIC close code used when a draining session's timer expires.
pub const CLOSE_DRAINED: u64 = 0x0;
/// SUBSCRIBE_ERROR / FETCH_ERROR code for requests refused while draining.
pub const ERR_DRAINING: u64 = 0x6;

/// Session-level configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Versions offered (client) / supported (server), preference order.
    pub versions: Vec<u64>,
    /// MAX_REQUEST_ID granted to the peer.
    pub max_request_id: u64,
    /// Send requests before SERVER_SETUP arrives. Draft-12 forbids this
    /// (version negotiation must finish first → the 3-RTT cold path of
    /// paper §5.2); `true` models the future "version negotiation in
    /// ALPN" optimization that removes the extra round trip.
    pub pipeline: bool,
    /// Upper bound on buffered, not-yet-decodable control-stream bytes.
    /// A peer that sends a length prefix and never completes the message
    /// would otherwise grow `control_rx` without bound; crossing this cap
    /// is a protocol violation that poisons the session.
    pub max_control_buffer: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            versions: vec![crate::MOQT_VERSION],
            max_request_id: 1 << 20,
            pipeline: false,
            max_control_buffer: 64 * 1024,
        }
    }
}

/// The session's lifecycle state (see the module docs for the diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionState {
    /// Created; the control stream does not exist yet.
    Init,
    /// Control stream open, SETUP exchange in flight.
    Handshaking,
    /// SETUP completed in both directions; all verbs usable.
    Ready,
    /// A GOAWAY was received: existing flows drain, new requests are
    /// refused, [`SessionInput::DrainTimeout`] closes.
    Draining,
    /// Terminal. Reached by connection close, drain expiry, or poisoning
    /// on a protocol violation. Every input is inert here.
    Closed,
}

/// Everything that can happen *to* a session, normalized for the
/// transition function. One variant per control message plus the
/// transport-level occurrences (streams, datagrams, decode failures) and
/// the drain timer — exhaustive by construction so
/// [`Session::transition`] must say what each state does with each input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionInput {
    /// The peer opened a bidirectional stream (only ever legal as the
    /// server adopting the client's control stream, once).
    ControlStreamOpened(StreamId),
    /// The peer opened a unidirectional (data) stream.
    DataStreamOpened(StreamId),
    /// A complete subgroup data stream arrived and decoded.
    DataSubgroup {
        /// The stream header (alias, group, …).
        header: SubgroupHeader,
        /// The objects it carried.
        objects: Vec<Object>,
    },
    /// A complete fetch data stream arrived and decoded.
    DataFetch {
        /// Our fetch request id.
        request_id: u64,
        /// The returned objects.
        objects: Vec<Object>,
    },
    /// A complete data stream failed to decode.
    MalformedData,
    /// An object datagram arrived and decoded (ablation A2 path).
    Datagram(ObjectDatagram),
    /// A datagram arrived that does not decode as an object datagram.
    MalformedDatagram,
    /// Control-stream bytes failed to decode as a control message —
    /// framing is desynchronized and cannot be trusted again.
    MalformedControl,
    /// Buffered control bytes exceeded [`SessionConfig::max_control_buffer`].
    ControlOverflow,
    /// The driver's drain deadline fired (only meaningful in `Draining`;
    /// spurious fires in other states are tolerated, the sans-io idiom).
    DrainTimeout,
    /// CLIENT_SETUP arrived.
    ClientSetup {
        /// Versions the client offers.
        versions: Vec<u64>,
        /// Request-id space granted to us.
        max_request_id: u64,
    },
    /// SERVER_SETUP arrived.
    ServerSetup {
        /// The version the server selected.
        version: u64,
        /// Request-id space granted to us.
        max_request_id: u64,
    },
    /// SUBSCRIBE arrived.
    Subscribe {
        /// Peer's request id.
        request_id: u64,
        /// Peer-chosen alias for data streams.
        track_alias: u64,
        /// The track.
        track: FullTrackName,
        /// Where to start.
        filter: FilterType,
    },
    /// SUBSCRIBE_OK arrived.
    SubscribeOk {
        /// Request being answered.
        request_id: u64,
        /// Expiry in milliseconds (0 = never).
        expires_ms: u64,
        /// Publisher's largest (group, object), if any.
        largest: Option<(u64, u64)>,
    },
    /// SUBSCRIBE_ERROR arrived.
    SubscribeError {
        /// Request being answered.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// UNSUBSCRIBE arrived.
    Unsubscribe {
        /// The subscription's request id.
        request_id: u64,
    },
    /// SUBSCRIBE_DONE arrived.
    SubscribeDone {
        /// The subscription's request id.
        request_id: u64,
        /// Status code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// FETCH arrived.
    Fetch {
        /// Peer's request id.
        request_id: u64,
        /// What is being fetched.
        fetch: FetchType,
    },
    /// FETCH_OK arrived.
    FetchOk {
        /// Request being answered.
        request_id: u64,
        /// Largest (group, object) available.
        largest: (u64, u64),
    },
    /// FETCH_ERROR arrived.
    FetchError {
        /// Request being answered.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// FETCH_CANCEL arrived.
    FetchCancel {
        /// The fetch's request id.
        request_id: u64,
    },
    /// ANNOUNCE arrived.
    Announce {
        /// Request id.
        request_id: u64,
        /// The namespace tuple.
        namespace: Vec<Vec<u8>>,
    },
    /// ANNOUNCE_OK arrived.
    AnnounceOk {
        /// Request being answered.
        request_id: u64,
    },
    /// ANNOUNCE_ERROR arrived.
    AnnounceError {
        /// Request being answered.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// UNANNOUNCE arrived.
    Unannounce {
        /// The announcement's namespace.
        namespace: Vec<Vec<u8>>,
    },
    /// MAX_REQUEST_ID arrived.
    MaxRequestId {
        /// New maximum.
        max: u64,
    },
    /// GOAWAY arrived.
    GoAway {
        /// Redirect URI (may be empty).
        uri: String,
    },
}

impl From<ControlMessage> for SessionInput {
    fn from(msg: ControlMessage) -> SessionInput {
        match msg {
            ControlMessage::ClientSetup {
                versions,
                max_request_id,
            } => SessionInput::ClientSetup {
                versions,
                max_request_id,
            },
            ControlMessage::ServerSetup {
                version,
                max_request_id,
            } => SessionInput::ServerSetup {
                version,
                max_request_id,
            },
            ControlMessage::Subscribe {
                request_id,
                track_alias,
                track,
                filter,
            } => SessionInput::Subscribe {
                request_id,
                track_alias,
                track,
                filter,
            },
            ControlMessage::SubscribeOk {
                request_id,
                expires_ms,
                largest,
            } => SessionInput::SubscribeOk {
                request_id,
                expires_ms,
                largest,
            },
            ControlMessage::SubscribeError {
                request_id,
                code,
                reason,
            } => SessionInput::SubscribeError {
                request_id,
                code,
                reason,
            },
            ControlMessage::Unsubscribe { request_id } => SessionInput::Unsubscribe { request_id },
            ControlMessage::SubscribeDone {
                request_id,
                code,
                reason,
            } => SessionInput::SubscribeDone {
                request_id,
                code,
                reason,
            },
            ControlMessage::Fetch { request_id, fetch } => {
                SessionInput::Fetch { request_id, fetch }
            }
            ControlMessage::FetchOk {
                request_id,
                largest,
            } => SessionInput::FetchOk {
                request_id,
                largest,
            },
            ControlMessage::FetchError {
                request_id,
                code,
                reason,
            } => SessionInput::FetchError {
                request_id,
                code,
                reason,
            },
            ControlMessage::FetchCancel { request_id } => SessionInput::FetchCancel { request_id },
            ControlMessage::Announce {
                request_id,
                namespace,
            } => SessionInput::Announce {
                request_id,
                namespace,
            },
            ControlMessage::AnnounceOk { request_id } => SessionInput::AnnounceOk { request_id },
            ControlMessage::AnnounceError {
                request_id,
                code,
                reason,
            } => SessionInput::AnnounceError {
                request_id,
                code,
                reason,
            },
            ControlMessage::Unannounce { namespace } => SessionInput::Unannounce { namespace },
            ControlMessage::MaxRequestId { max } => SessionInput::MaxRequestId { max },
            ControlMessage::GoAway { uri } => SessionInput::GoAway { uri },
        }
    }
}

/// What a transition wants done. The driver ([`Session::on_conn_event`])
/// applies these against the connection; tests can inspect them directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutput {
    /// Surface an event to the application.
    Event(SessionEvent),
    /// Send a control message on the control stream.
    Send(ControlMessage),
    /// Close the connection (the session is already `Closed`).
    Close {
        /// QUIC application close code.
        code: u64,
        /// Reason phrase.
        reason: &'static str,
    },
}

/// Hardening counters a session keeps about its peer's behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Protocol violations observed (each one poisons the session).
    pub violations: u64,
    /// Datagrams dropped: malformed, or carrying an unknown track alias.
    pub dropped_datagrams: u64,
}

impl SessionStats {
    /// Field-wise sum (aggregation across a stack's sessions).
    pub fn add(&mut self, other: SessionStats) {
        self.violations += other.violations;
        self.dropped_datagrams += other.dropped_datagrams;
    }
}

/// How an incoming FETCH names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncomingFetchKind {
    /// Standalone: explicit track + absolute range.
    StandAlone {
        /// The fetched track.
        track: FullTrackName,
        /// First group.
        start_group: u64,
        /// Last group (inclusive).
        end_group: u64,
    },
    /// Joining: relative to one of *our* granted subscriptions.
    Joining {
        /// The peer's subscription this fetch joins.
        joining_request_id: u64,
        /// Groups before the subscription start to return (1 = latest
        /// existing version, per the DNS mapping).
        offset: u64,
        /// The resolved track of that subscription.
        track: FullTrackName,
    },
    /// Federation fetch from a peer relay core, carrying the remaining
    /// hop budget (see [`crate::message::FetchType::Peer`]).
    Peer {
        /// The fetched track.
        track: FullTrackName,
        /// First group.
        start_group: u64,
        /// Last group (inclusive).
        end_group: u64,
        /// Core-to-core forwards this fetch may still take.
        hop_budget: u64,
    },
}

/// Events a session surfaces to its application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// Setup handshake finished; the session is usable.
    Ready {
        /// Negotiated MoQT version.
        version: u64,
    },
    /// The peer wants to subscribe to a track (we are the publisher).
    /// Answer with [`Session::accept_subscribe`] or
    /// [`Session::reject_subscribe`].
    IncomingSubscribe {
        /// Peer's request id.
        request_id: u64,
        /// The track.
        track: FullTrackName,
    },
    /// The peer wants past objects. Answer with [`Session::respond_fetch`]
    /// or [`Session::reject_fetch`].
    IncomingFetch {
        /// Peer's request id.
        request_id: u64,
        /// What is being fetched.
        kind: IncomingFetchKind,
    },
    /// Our SUBSCRIBE was accepted.
    SubscribeAccepted {
        /// Our request id.
        request_id: u64,
        /// Publisher's largest (group, object), if the track has content.
        largest: Option<(u64, u64)>,
    },
    /// Our SUBSCRIBE was refused (also the §4.5 fallback signal).
    SubscribeRejected {
        /// Our request id.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// Our FETCH was accepted; objects will arrive in [`SessionEvent::FetchObjects`].
    FetchAccepted {
        /// Our request id.
        request_id: u64,
        /// Publisher's largest (group, object).
        largest: (u64, u64),
    },
    /// Our FETCH was refused.
    FetchRejected {
        /// Our request id.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// A complete fetch response stream arrived.
    FetchObjects {
        /// Our fetch request id.
        request_id: u64,
        /// The returned objects.
        objects: Vec<Object>,
    },
    /// An object arrived on one of our subscriptions (a pushed update).
    SubscriptionObject {
        /// Our subscribe request id.
        request_id: u64,
        /// The object.
        object: Object,
    },
    /// The publisher ended one of our subscriptions.
    SubscriptionEnded {
        /// Our subscribe request id.
        request_id: u64,
        /// Status code.
        code: u64,
        /// Reason phrase.
        reason: String,
    },
    /// The peer dropped one of its subscriptions to us (stop publishing).
    PeerUnsubscribed {
        /// The peer's request id.
        request_id: u64,
    },
    /// The peer asked us to move to another session.
    GoAway {
        /// Redirect URI.
        uri: String,
    },
    /// The peer violated the protocol; the session is poisoned into
    /// [`SessionState::Closed`] and the connection close is already on
    /// its way out.
    ProtocolViolation(&'static str),
}

/// Publisher-side record of a peer's subscription.
#[derive(Debug, Clone)]
struct PeerSub {
    track: FullTrackName,
    track_alias: u64,
    accepted: bool,
}

/// Subscriber-side record of our own subscription.
#[derive(Debug, Clone)]
struct MySub {
    #[allow(dead_code)]
    track: FullTrackName,
    track_alias: u64,
}

/// A MoQT session over one QUIC connection.
pub struct Session {
    is_client: bool,
    config: SessionConfig,
    state: SessionState,
    control_stream: Option<StreamId>,
    control_rx: Vec<u8>,
    version: Option<u64>,
    next_request_id: u64,
    my_subs: BTreeMap<u64, MySub>,
    alias_to_sub: BTreeMap<u64, u64>,
    peer_subs: BTreeMap<u64, PeerSub>,
    my_fetches: BTreeMap<u64, ()>,
    data_rx: BTreeMap<StreamId, Vec<u8>>,
    events: VecDeque<SessionEvent>,
    /// Control messages queued until SERVER_SETUP (strict draft-12 mode).
    queued_control: Vec<ControlMessage>,
    stats: SessionStats,
    /// Recycled encode buffers for control/data-stream framing.
    pool: BufPool,
}

impl Session {
    /// Creates the client side of a session.
    pub fn client(config: SessionConfig) -> Session {
        Session::new(true, config)
    }

    /// Creates the server side of a session.
    pub fn server(config: SessionConfig) -> Session {
        Session::new(false, config)
    }

    fn new(is_client: bool, config: SessionConfig) -> Session {
        Session {
            is_client,
            config,
            state: SessionState::Init,
            control_stream: None,
            control_rx: Vec::new(),
            version: None,
            next_request_id: if is_client { 0 } else { 1 },
            my_subs: BTreeMap::new(),
            alias_to_sub: BTreeMap::new(),
            peer_subs: BTreeMap::new(),
            my_fetches: BTreeMap::new(),
            data_rx: BTreeMap::new(),
            events: VecDeque::new(),
            queued_control: Vec::new(),
            stats: SessionStats::default(),
            pool: BufPool::default(),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// True once SETUP completed in both directions (and the session has
    /// not been closed or poisoned). A draining session is still usable.
    pub fn is_ready(&self) -> bool {
        matches!(self.state, SessionState::Ready | SessionState::Draining)
    }

    /// Hardening counters (violations, dropped datagrams).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Negotiated version, once ready.
    pub fn version(&self) -> Option<u64> {
        self.version
    }

    /// Number of live subscriptions we hold (subscriber side).
    pub fn subscription_count(&self) -> usize {
        self.my_subs.len()
    }

    /// Number of live subscriptions peers hold on us (publisher side).
    pub fn peer_subscription_count(&self) -> usize {
        self.peer_subs.len()
    }

    /// Rough state size in bytes (paper §5.1 overhead accounting).
    pub fn state_size_estimate(&self) -> usize {
        std::mem::size_of::<Session>()
            + self
                .my_subs
                .values()
                .map(|s| 64 + s.track.total_len())
                .sum::<usize>()
            + self
                .peer_subs
                .values()
                .map(|s| 64 + s.track.total_len())
                .sum::<usize>()
            + self.control_rx.len()
            + self.data_rx.values().map(Vec::len).sum::<usize>()
    }

    fn alloc_request_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 2;
        id
    }

    /// Starts the session. Clients open the control stream and send
    /// CLIENT_SETUP immediately — with a resumption ticket this rides 0-RTT.
    pub fn start(&mut self, conn: &mut Connection) {
        if self.is_client && self.state == SessionState::Init && self.control_stream.is_none() {
            let id = conn.open_stream(Dir::Bi).expect("control stream");
            self.control_stream = Some(id);
            self.state = SessionState::Handshaking;
            let setup = ControlMessage::ClientSetup {
                versions: self.config.versions.clone(),
                max_request_id: self.config.max_request_id,
            };
            self.send_control(conn, &setup);
        }
    }

    /// Sends a request message, holding it back until the session is ready
    /// unless pipelining is enabled (paper §5.2 RTT semantics). A closed
    /// (or poisoned) session drops requests on the floor.
    fn send_request(&mut self, conn: &mut Connection, msg: ControlMessage) {
        match self.state {
            SessionState::Ready | SessionState::Draining => self.send_control(conn, &msg),
            SessionState::Init | SessionState::Handshaking => {
                if self.config.pipeline {
                    self.send_control(conn, &msg);
                } else {
                    self.queued_control.push(msg);
                }
            }
            SessionState::Closed => {}
        }
    }

    fn send_control(&mut self, conn: &mut Connection, msg: &ControlMessage) {
        let Some(cs) = self.control_stream else {
            self.events
                .push_back(SessionEvent::ProtocolViolation("no control stream"));
            return;
        };
        let mut w = self.pool.writer();
        let mut scratch = self.pool.writer();
        msg.encode_into(&mut w, &mut scratch);
        let bytes = w.as_slice();
        let mut off = 0;
        while off < bytes.len() {
            match conn.send_stream(cs, &bytes[off..]) {
                Ok(0) | Err(_) => break, // flow control stall: drop (tiny msgs never hit this)
                Ok(n) => off += n,
            }
        }
        self.pool.recycle_writer(scratch);
        self.pool.recycle_writer(w);
    }

    /// Adversarial-drill hook: writes raw bytes straight onto the control
    /// stream, bypassing message framing entirely. Honest code never calls
    /// this — the byzantine netsim nodes use it to feed peers garbage and
    /// verify they poison the session rather than resynchronize.
    pub fn inject_raw_control(&mut self, conn: &mut Connection, bytes: &[u8]) {
        let Some(cs) = self.control_stream else {
            return;
        };
        let mut off = 0;
        while off < bytes.len() {
            match conn.send_stream(cs, &bytes[off..]) {
                Ok(0) | Err(_) => break,
                Ok(n) => off += n,
            }
        }
    }

    // ------------------------------------------------------------------
    // Subscriber-side verbs
    // ------------------------------------------------------------------

    /// SUBSCRIBEs to a track from the next group onward. Returns our
    /// request id.
    pub fn subscribe(&mut self, conn: &mut Connection, track: FullTrackName) -> u64 {
        let request_id = self.alloc_request_id();
        let track_alias = request_id;
        self.my_subs.insert(
            request_id,
            MySub {
                track: track.clone(),
                track_alias,
            },
        );
        self.alias_to_sub.insert(track_alias, request_id);
        let msg = ControlMessage::Subscribe {
            request_id,
            track_alias,
            track,
            filter: FilterType::LatestObject,
        };
        self.send_request(conn, msg);
        request_id
    }

    /// The paper's lookup operation (§4.1): SUBSCRIBE plus a joining FETCH
    /// with `offset` (1 = the version immediately before the subscription).
    /// Returns `(subscribe_request_id, fetch_request_id)`.
    pub fn subscribe_with_joining_fetch(
        &mut self,
        conn: &mut Connection,
        track: FullTrackName,
        offset: u64,
    ) -> (u64, u64) {
        let sub_id = self.subscribe(conn, track);
        let fetch_id = self.alloc_request_id();
        self.my_fetches.insert(fetch_id, ());
        let msg = ControlMessage::Fetch {
            request_id: fetch_id,
            fetch: FetchType::RelativeJoining {
                joining_request_id: sub_id,
                joining_start: offset,
            },
        };
        self.send_request(conn, msg);
        (sub_id, fetch_id)
    }

    /// Standalone FETCH of an absolute group range (used on reconnection to
    /// recover updates missed since a stored group id, §4.4).
    pub fn fetch(
        &mut self,
        conn: &mut Connection,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
    ) -> u64 {
        // Group ids live in varint space (≤ 2^62-1); clamp open-ended
        // ranges callers express with u64::MAX.
        let start_group = start_group.min(moqdns_wire::varint::MAX_VARINT);
        let end_group = end_group.min(moqdns_wire::varint::MAX_VARINT);
        let request_id = self.alloc_request_id();
        self.my_fetches.insert(request_id, ());
        let msg = ControlMessage::Fetch {
            request_id,
            fetch: FetchType::StandAlone {
                track,
                start_group,
                start_object: 0,
                end_group,
            },
        };
        self.send_request(conn, msg);
        request_id
    }

    /// Federation FETCH toward a peer relay core: a standalone fetch that
    /// carries the remaining hop budget so a rerouted request can never
    /// cycle through the core graph.
    pub fn fetch_peer(
        &mut self,
        conn: &mut Connection,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
        hop_budget: u64,
    ) -> u64 {
        let start_group = start_group.min(moqdns_wire::varint::MAX_VARINT);
        let end_group = end_group.min(moqdns_wire::varint::MAX_VARINT);
        let request_id = self.alloc_request_id();
        self.my_fetches.insert(request_id, ());
        let msg = ControlMessage::Fetch {
            request_id,
            fetch: FetchType::Peer {
                track,
                start_group,
                end_group,
                hop_budget,
            },
        };
        self.send_request(conn, msg);
        request_id
    }

    /// Drops one of our subscriptions (§4.4 teardown).
    pub fn unsubscribe(&mut self, conn: &mut Connection, request_id: u64) {
        if let Some(sub) = self.my_subs.remove(&request_id) {
            self.alias_to_sub.remove(&sub.track_alias);
            self.send_control(conn, &ControlMessage::Unsubscribe { request_id });
        }
    }

    // ------------------------------------------------------------------
    // Publisher-side verbs
    // ------------------------------------------------------------------

    /// Accepts a peer's subscription, advertising our largest version.
    pub fn accept_subscribe(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        largest: Option<(u64, u64)>,
    ) {
        if let Some(sub) = self.peer_subs.get_mut(&request_id) {
            sub.accepted = true;
            let msg = ControlMessage::SubscribeOk {
                request_id,
                expires_ms: 0,
                largest,
            };
            self.send_control(conn, &msg);
        }
    }

    /// Declines a peer's subscription — the §4.5 fallback path.
    pub fn reject_subscribe(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        code: u64,
        reason: &str,
    ) {
        self.peer_subs.remove(&request_id);
        let msg = ControlMessage::SubscribeError {
            request_id,
            code,
            reason: reason.to_string(),
        };
        self.send_control(conn, &msg);
    }

    /// Pushes an object to one accepted peer subscription: opens a fresh
    /// unidirectional subgroup stream, writes the object, finishes the
    /// stream (§4.1: streams, never datagrams, for reliability).
    pub fn publish(&mut self, conn: &mut Connection, request_id: u64, object: Object) -> bool {
        let Some(sub) = self.peer_subs.get(&request_id) else {
            return false;
        };
        if !sub.accepted {
            return false;
        }
        let header = SubgroupHeader {
            track_alias: sub.track_alias,
            group_id: object.group_id,
            subgroup_id: 0,
            priority: 128,
        };
        let mut w = self.pool.writer();
        encode_subgroup_stream_into(&mut w, &header, &[object]);
        let bytes = w.as_slice();
        let Ok(sid) = conn.open_stream(Dir::Uni) else {
            self.pool.recycle_writer(w);
            return false;
        };
        let mut off = 0;
        while off < bytes.len() {
            match conn.send_stream(sid, &bytes[off..]) {
                Ok(0) | Err(_) => {
                    self.pool.recycle_writer(w);
                    return false;
                }
                Ok(n) => off += n,
            }
        }
        let _ = conn.finish_stream(sid);
        self.pool.recycle_writer(w);
        true
    }

    /// Pushes an object as an unreliable datagram (ablation A2 only).
    pub fn publish_datagram(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        object: Object,
    ) -> bool {
        let Some(sub) = self.peer_subs.get(&request_id) else {
            return false;
        };
        if !sub.accepted {
            return false;
        }
        let dg = ObjectDatagram {
            track_alias: sub.track_alias,
            object,
        };
        conn.send_datagram(dg.encode()).is_ok()
    }

    /// Ends a peer's subscription from the publisher side.
    pub fn subscribe_done(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        code: u64,
        reason: &str,
    ) {
        if self.peer_subs.remove(&request_id).is_some() {
            let msg = ControlMessage::SubscribeDone {
                request_id,
                code,
                reason: reason.to_string(),
            };
            self.send_control(conn, &msg);
        }
    }

    /// Answers a peer's FETCH: FETCH_OK on the control stream plus a fetch
    /// data stream carrying `objects`.
    pub fn respond_fetch(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        largest: (u64, u64),
        objects: Vec<Object>,
    ) {
        let msg = ControlMessage::FetchOk {
            request_id,
            largest,
        };
        self.send_control(conn, &msg);
        let mut w = self.pool.writer();
        encode_fetch_stream_into(&mut w, request_id, &objects);
        let bytes = w.as_slice();
        let Ok(sid) = conn.open_stream(Dir::Uni) else {
            self.pool.recycle_writer(w);
            return;
        };
        let mut off = 0;
        while off < bytes.len() {
            match conn.send_stream(sid, &bytes[off..]) {
                Ok(0) | Err(_) => {
                    self.pool.recycle_writer(w);
                    return;
                }
                Ok(n) => off += n,
            }
        }
        let _ = conn.finish_stream(sid);
        self.pool.recycle_writer(w);
    }

    /// Declines a peer's FETCH.
    pub fn reject_fetch(
        &mut self,
        conn: &mut Connection,
        request_id: u64,
        code: u64,
        reason: &str,
    ) {
        let msg = ControlMessage::FetchError {
            request_id,
            code,
            reason: reason.to_string(),
        };
        self.send_control(conn, &msg);
    }

    // ------------------------------------------------------------------
    // Event plumbing
    // ------------------------------------------------------------------

    /// Next session event, if any.
    pub fn poll_event(&mut self) -> Option<SessionEvent> {
        self.events.pop_front()
    }

    /// Feeds a connection event into the session: io-level pumping plus
    /// normalization into [`SessionInput`]s for [`Session::transition`].
    pub fn on_conn_event(&mut self, conn: &mut Connection, ev: &QuicEvent) {
        if self.state == SessionState::Closed {
            return;
        }
        match ev {
            QuicEvent::StreamOpened { id } => {
                let input = if id.dir() == Dir::Bi {
                    SessionInput::ControlStreamOpened(*id)
                } else {
                    SessionInput::DataStreamOpened(*id)
                };
                let outs = self.transition(input);
                self.apply(conn, outs);
            }
            QuicEvent::StreamReadable { id } => {
                if Some(*id) == self.control_stream {
                    self.pump_control(conn);
                } else if self.data_rx.contains_key(id) {
                    self.pump_data(conn, *id);
                }
            }
            QuicEvent::DatagramReceived(d) => {
                let input = match ObjectDatagram::decode(d) {
                    Ok(dg) => SessionInput::Datagram(dg),
                    Err(_) => SessionInput::MalformedDatagram,
                };
                let outs = self.transition(input);
                self.apply(conn, outs);
            }
            QuicEvent::Closed { .. } => {
                self.state = SessionState::Closed;
            }
            QuicEvent::Connected { .. } | QuicEvent::TicketIssued(_) => {}
        }
    }

    /// Applies a transition's outputs against the connection.
    fn apply(&mut self, conn: &mut Connection, outputs: Vec<SessionOutput>) {
        for out in outputs {
            match out {
                SessionOutput::Event(e) => self.events.push_back(e),
                SessionOutput::Send(msg) => self.send_control(conn, &msg),
                SessionOutput::Close { code, reason } => conn.close(code, reason),
            }
        }
    }

    fn pump_control(&mut self, conn: &mut Connection) {
        let Some(cs) = self.control_stream else {
            return;
        };
        loop {
            if self.state == SessionState::Closed {
                return;
            }
            match conn.read_stream(cs, 65_536) {
                Ok((data, _fin)) if !data.is_empty() => {
                    if self.control_rx.len() + data.len() > self.config.max_control_buffer {
                        let outs = self.transition(SessionInput::ControlOverflow);
                        self.apply(conn, outs);
                        return;
                    }
                    self.control_rx.extend_from_slice(&data);
                }
                _ => break,
            }
        }
        loop {
            if self.state == SessionState::Closed {
                return;
            }
            match ControlMessage::decode(&self.control_rx) {
                Ok(Some((msg, used))) => {
                    self.control_rx.drain(..used);
                    let outs = self.transition(SessionInput::from(msg));
                    self.apply(conn, outs);
                }
                Ok(None) => break,
                Err(_) => {
                    // Desynchronized framing can never be trusted again:
                    // poison, don't resynchronize by luck.
                    let outs = self.transition(SessionInput::MalformedControl);
                    self.apply(conn, outs);
                    return;
                }
            }
        }
    }

    fn pump_data(&mut self, conn: &mut Connection, id: StreamId) {
        let finished = loop {
            match conn.read_stream(id, 65_536) {
                Ok((data, fin)) => {
                    if let Some(buf) = self.data_rx.get_mut(&id) {
                        buf.extend_from_slice(&data);
                    }
                    if fin {
                        break true;
                    }
                    if data.is_empty() {
                        break false;
                    }
                }
                Err(_) => break false,
            }
        };
        if !finished {
            return;
        }
        let Some(buf) = self.data_rx.remove(&id) else {
            return;
        };
        // The owned receive buffer becomes shared storage: every decoded
        // object's payload is a zero-copy sub-view of it.
        let input = match decode_data_stream(buf) {
            Ok(DataStream::Subgroup { header, objects }) => {
                SessionInput::DataSubgroup { header, objects }
            }
            Ok(DataStream::Fetch {
                request_id,
                objects,
            }) => SessionInput::DataFetch {
                request_id,
                objects,
            },
            Err(_) => SessionInput::MalformedData,
        };
        let outs = self.transition(input);
        self.apply(conn, outs);
    }

    // ------------------------------------------------------------------
    // The transition function
    // ------------------------------------------------------------------

    /// Poisons the session: the state latches `Closed`, the violation is
    /// counted, and the outputs carry both the application event and the
    /// connection close.
    fn poison(&mut self, reason: &'static str) -> Vec<SessionOutput> {
        self.state = SessionState::Closed;
        self.stats.violations += 1;
        vec![
            SessionOutput::Event(SessionEvent::ProtocolViolation(reason)),
            SessionOutput::Close {
                code: CLOSE_PROTOCOL_VIOLATION,
                reason,
            },
        ]
    }

    /// The pure transition function: `(state, input) -> outputs`, with
    /// state updated in place. Every `(SessionState, SessionInput)` pair
    /// is handled explicitly — each per-state handler matches the input
    /// enum exhaustively, with no wildcard arm — so illegal inputs are
    /// deterministic [`SessionEvent::ProtocolViolation`]s that poison the
    /// session rather than silently falling through.
    pub fn transition(&mut self, input: SessionInput) -> Vec<SessionOutput> {
        match self.state {
            SessionState::Init => self.on_input_init(input),
            SessionState::Handshaking => self.on_input_handshaking(input),
            SessionState::Ready => self.on_input_live(input, false),
            SessionState::Draining => self.on_input_live(input, true),
            SessionState::Closed => Session::on_input_closed(input),
        }
    }

    fn on_input_init(&mut self, input: SessionInput) -> Vec<SessionOutput> {
        match input {
            SessionInput::ControlStreamOpened(id) => {
                if self.is_client {
                    // Servers never open bidirectional streams in MoQT.
                    return self.poison("unexpected peer bidi stream");
                }
                self.control_stream = Some(id);
                self.state = SessionState::Handshaking;
                Vec::new()
            }
            SessionInput::DataStreamOpened(id) => {
                self.data_rx.insert(id, Vec::new());
                Vec::new()
            }
            SessionInput::DataSubgroup { .. }
            | SessionInput::DataFetch { .. }
            | SessionInput::MalformedData => self.poison("data stream before handshake"),
            SessionInput::Datagram(_) | SessionInput::MalformedDatagram => {
                self.stats.dropped_datagrams += 1;
                Vec::new()
            }
            SessionInput::MalformedControl => self.poison("bad control message"),
            SessionInput::ControlOverflow => self.poison("control buffer overflow"),
            SessionInput::DrainTimeout => Vec::new(),
            SessionInput::ClientSetup { .. }
            | SessionInput::ServerSetup { .. }
            | SessionInput::Subscribe { .. }
            | SessionInput::SubscribeOk { .. }
            | SessionInput::SubscribeError { .. }
            | SessionInput::Unsubscribe { .. }
            | SessionInput::SubscribeDone { .. }
            | SessionInput::Fetch { .. }
            | SessionInput::FetchOk { .. }
            | SessionInput::FetchError { .. }
            | SessionInput::FetchCancel { .. }
            | SessionInput::Announce { .. }
            | SessionInput::AnnounceOk { .. }
            | SessionInput::AnnounceError { .. }
            | SessionInput::Unannounce { .. }
            | SessionInput::MaxRequestId { .. }
            | SessionInput::GoAway { .. } => self.poison("control message before handshake"),
        }
    }

    fn on_input_handshaking(&mut self, input: SessionInput) -> Vec<SessionOutput> {
        match input {
            SessionInput::ControlStreamOpened(_) => self.poison("duplicate control stream"),
            SessionInput::DataStreamOpened(id) => {
                self.data_rx.insert(id, Vec::new());
                Vec::new()
            }
            // Packet reordering can complete a data stream before the
            // SETUP answer is processed: deliver rather than punish.
            SessionInput::DataSubgroup { header, objects } => {
                self.deliver_subgroup(header, objects)
            }
            SessionInput::DataFetch {
                request_id,
                objects,
            } => self.deliver_fetch(request_id, objects),
            SessionInput::MalformedData => self.poison("bad data stream"),
            SessionInput::Datagram(dg) => self.deliver_datagram(dg),
            SessionInput::MalformedDatagram => {
                self.stats.dropped_datagrams += 1;
                Vec::new()
            }
            SessionInput::MalformedControl => self.poison("bad control message"),
            SessionInput::ControlOverflow => self.poison("control buffer overflow"),
            SessionInput::DrainTimeout => Vec::new(),
            SessionInput::ClientSetup {
                versions,
                max_request_id: _,
            } => {
                if self.is_client {
                    return self.poison("unexpected CLIENT_SETUP");
                }
                // Select the highest version both sides support.
                let ours = &self.config.versions;
                let Some(v) = versions.iter().filter(|v| ours.contains(v)).max().copied() else {
                    return self.poison("no common version");
                };
                self.state = SessionState::Ready;
                self.version = Some(v);
                vec![
                    SessionOutput::Send(ControlMessage::ServerSetup {
                        version: v,
                        max_request_id: self.config.max_request_id,
                    }),
                    SessionOutput::Event(SessionEvent::Ready { version: v }),
                ]
            }
            SessionInput::ServerSetup {
                version,
                max_request_id: _,
            } => {
                if !self.is_client {
                    return self.poison("unexpected SERVER_SETUP");
                }
                if !self.config.versions.contains(&version) {
                    return self.poison("server selected unoffered version");
                }
                self.state = SessionState::Ready;
                self.version = Some(version);
                let mut outs = Vec::new();
                for msg in std::mem::take(&mut self.queued_control) {
                    outs.push(SessionOutput::Send(msg));
                }
                outs.push(SessionOutput::Event(SessionEvent::Ready { version }));
                outs
            }
            SessionInput::Subscribe { .. }
            | SessionInput::SubscribeOk { .. }
            | SessionInput::SubscribeError { .. }
            | SessionInput::Unsubscribe { .. }
            | SessionInput::SubscribeDone { .. }
            | SessionInput::Fetch { .. }
            | SessionInput::FetchOk { .. }
            | SessionInput::FetchError { .. }
            | SessionInput::FetchCancel { .. }
            | SessionInput::Announce { .. }
            | SessionInput::AnnounceOk { .. }
            | SessionInput::AnnounceError { .. }
            | SessionInput::Unannounce { .. }
            | SessionInput::MaxRequestId { .. }
            | SessionInput::GoAway { .. } => self.poison("request before SETUP completed"),
        }
    }

    /// `Ready` and `Draining` share almost all behavior; `draining`
    /// selects the differences (new requests refused, second GOAWAY is a
    /// violation, the drain timer closes).
    fn on_input_live(&mut self, input: SessionInput, draining: bool) -> Vec<SessionOutput> {
        match input {
            SessionInput::ControlStreamOpened(_) => self.poison("duplicate control stream"),
            SessionInput::DataStreamOpened(id) => {
                self.data_rx.insert(id, Vec::new());
                Vec::new()
            }
            SessionInput::DataSubgroup { header, objects } => {
                self.deliver_subgroup(header, objects)
            }
            SessionInput::DataFetch {
                request_id,
                objects,
            } => self.deliver_fetch(request_id, objects),
            SessionInput::MalformedData => self.poison("bad data stream"),
            SessionInput::Datagram(dg) => self.deliver_datagram(dg),
            SessionInput::MalformedDatagram => {
                self.stats.dropped_datagrams += 1;
                Vec::new()
            }
            SessionInput::MalformedControl => self.poison("bad control message"),
            SessionInput::ControlOverflow => self.poison("control buffer overflow"),
            SessionInput::DrainTimeout => {
                if draining {
                    self.state = SessionState::Closed;
                    vec![SessionOutput::Close {
                        code: CLOSE_DRAINED,
                        reason: "drained",
                    }]
                } else {
                    // Spurious wakeup after re-arming: tolerated.
                    Vec::new()
                }
            }
            SessionInput::ClientSetup { .. } | SessionInput::ServerSetup { .. } => {
                self.poison("duplicate SETUP")
            }
            SessionInput::Subscribe {
                request_id,
                track_alias,
                track,
                filter: _,
            } => {
                if draining {
                    return vec![SessionOutput::Send(ControlMessage::SubscribeError {
                        request_id,
                        code: ERR_DRAINING,
                        reason: "draining".to_string(),
                    })];
                }
                if self.peer_subs.contains_key(&request_id) {
                    return self.poison("duplicate subscribe request id");
                }
                self.peer_subs.insert(
                    request_id,
                    PeerSub {
                        track: track.clone(),
                        track_alias,
                        accepted: false,
                    },
                );
                vec![SessionOutput::Event(SessionEvent::IncomingSubscribe {
                    request_id,
                    track,
                })]
            }
            SessionInput::SubscribeOk {
                request_id,
                expires_ms: _,
                largest,
            } => vec![SessionOutput::Event(SessionEvent::SubscribeAccepted {
                request_id,
                largest,
            })],
            SessionInput::SubscribeError {
                request_id,
                code,
                reason,
            } => {
                if let Some(sub) = self.my_subs.remove(&request_id) {
                    self.alias_to_sub.remove(&sub.track_alias);
                }
                vec![SessionOutput::Event(SessionEvent::SubscribeRejected {
                    request_id,
                    code,
                    reason,
                })]
            }
            SessionInput::Unsubscribe { request_id } => {
                self.peer_subs.remove(&request_id);
                vec![SessionOutput::Event(SessionEvent::PeerUnsubscribed {
                    request_id,
                })]
            }
            SessionInput::SubscribeDone {
                request_id,
                code,
                reason,
            } => {
                if let Some(sub) = self.my_subs.remove(&request_id) {
                    self.alias_to_sub.remove(&sub.track_alias);
                }
                vec![SessionOutput::Event(SessionEvent::SubscriptionEnded {
                    request_id,
                    code,
                    reason,
                })]
            }
            SessionInput::Fetch { request_id, fetch } => {
                if draining {
                    return vec![SessionOutput::Send(ControlMessage::FetchError {
                        request_id,
                        code: ERR_DRAINING,
                        reason: "draining".to_string(),
                    })];
                }
                let kind = match fetch {
                    FetchType::StandAlone {
                        track,
                        start_group,
                        end_group,
                        ..
                    } => IncomingFetchKind::StandAlone {
                        track,
                        start_group,
                        end_group,
                    },
                    FetchType::Peer {
                        track,
                        start_group,
                        end_group,
                        hop_budget,
                    } => IncomingFetchKind::Peer {
                        track,
                        start_group,
                        end_group,
                        hop_budget,
                    },
                    FetchType::RelativeJoining {
                        joining_request_id,
                        joining_start,
                    } => {
                        let Some(sub) = self.peer_subs.get(&joining_request_id) else {
                            return vec![SessionOutput::Send(ControlMessage::FetchError {
                                request_id,
                                code: 0x8,
                                reason: "unknown joining subscription".to_string(),
                            })];
                        };
                        IncomingFetchKind::Joining {
                            joining_request_id,
                            offset: joining_start,
                            track: sub.track.clone(),
                        }
                    }
                };
                vec![SessionOutput::Event(SessionEvent::IncomingFetch {
                    request_id,
                    kind,
                })]
            }
            SessionInput::FetchOk {
                request_id,
                largest,
            } => vec![SessionOutput::Event(SessionEvent::FetchAccepted {
                request_id,
                largest,
            })],
            SessionInput::FetchError {
                request_id,
                code,
                reason,
            } => {
                self.my_fetches.remove(&request_id);
                vec![SessionOutput::Event(SessionEvent::FetchRejected {
                    request_id,
                    code,
                    reason,
                })]
            }
            SessionInput::FetchCancel { request_id: _ } => Vec::new(),
            SessionInput::Announce { request_id, .. } => {
                // Minimal handling: acknowledge (relays use this upstream).
                vec![SessionOutput::Send(ControlMessage::AnnounceOk {
                    request_id,
                })]
            }
            SessionInput::AnnounceOk { .. }
            | SessionInput::AnnounceError { .. }
            | SessionInput::Unannounce { .. }
            | SessionInput::MaxRequestId { .. } => Vec::new(),
            SessionInput::GoAway { uri } => {
                if draining {
                    return self.poison("duplicate GOAWAY");
                }
                self.state = SessionState::Draining;
                vec![SessionOutput::Event(SessionEvent::GoAway { uri })]
            }
        }
    }

    /// `Closed` is terminal and inert: nothing transitions, nothing is
    /// emitted. Listed exhaustively so a new input must decide its
    /// closed-state behavior explicitly.
    fn on_input_closed(input: SessionInput) -> Vec<SessionOutput> {
        match input {
            SessionInput::ControlStreamOpened(_)
            | SessionInput::DataStreamOpened(_)
            | SessionInput::DataSubgroup { .. }
            | SessionInput::DataFetch { .. }
            | SessionInput::MalformedData
            | SessionInput::Datagram(_)
            | SessionInput::MalformedDatagram
            | SessionInput::MalformedControl
            | SessionInput::ControlOverflow
            | SessionInput::DrainTimeout
            | SessionInput::ClientSetup { .. }
            | SessionInput::ServerSetup { .. }
            | SessionInput::Subscribe { .. }
            | SessionInput::SubscribeOk { .. }
            | SessionInput::SubscribeError { .. }
            | SessionInput::Unsubscribe { .. }
            | SessionInput::SubscribeDone { .. }
            | SessionInput::Fetch { .. }
            | SessionInput::FetchOk { .. }
            | SessionInput::FetchError { .. }
            | SessionInput::FetchCancel { .. }
            | SessionInput::Announce { .. }
            | SessionInput::AnnounceOk { .. }
            | SessionInput::AnnounceError { .. }
            | SessionInput::Unannounce { .. }
            | SessionInput::MaxRequestId { .. }
            | SessionInput::GoAway { .. } => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Shared delivery helpers (Handshaking / Ready / Draining)
    // ------------------------------------------------------------------

    fn deliver_subgroup(
        &mut self,
        header: SubgroupHeader,
        objects: Vec<Object>,
    ) -> Vec<SessionOutput> {
        // An unknown alias on a *stream* is the honest unsubscribe race
        // (objects in flight when the UNSUBSCRIBE crossed them): ignore.
        let Some(&sub) = self.alias_to_sub.get(&header.track_alias) else {
            return Vec::new();
        };
        objects
            .into_iter()
            .map(|object| {
                SessionOutput::Event(SessionEvent::SubscriptionObject {
                    request_id: sub,
                    object,
                })
            })
            .collect()
    }

    fn deliver_fetch(&mut self, request_id: u64, objects: Vec<Object>) -> Vec<SessionOutput> {
        if self.my_fetches.remove(&request_id).is_none() {
            return Vec::new();
        }
        vec![SessionOutput::Event(SessionEvent::FetchObjects {
            request_id,
            objects,
        })]
    }

    fn deliver_datagram(&mut self, dg: ObjectDatagram) -> Vec<SessionOutput> {
        let Some(&sub) = self.alias_to_sub.get(&dg.track_alias) else {
            self.stats.dropped_datagrams += 1;
            return Vec::new();
        };
        vec![SessionOutput::Event(SessionEvent::SubscriptionObject {
            request_id: sub,
            object: dg.object,
        })]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqdns_netsim::SimTime;
    use moqdns_quic::TransportConfig;
    use std::time::Duration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn track() -> FullTrackName {
        FullTrackName::new(
            vec![vec![0x01], vec![0x00, 0x01], vec![0x00, 0x01]],
            b"\x07example\x03com\x00".to_vec(),
        )
        .unwrap()
    }

    /// A test rig: two connections + two sessions shuttling datagrams.
    struct Rig {
        c_conn: Connection,
        s_conn: Connection,
        pub client: Session,
        pub server: Session,
        now: SimTime,
    }

    impl Rig {
        fn new() -> Rig {
            let alpn = moqdns_quic::alpn_list(&[crate::MOQT_ALPN]);
            let mut c_conn =
                Connection::client(1, TransportConfig::default(), alpn.clone(), None, t(0));
            let s_conn = Connection::server(1, TransportConfig::default(), alpn, 7, t(0));
            let mut client = Session::client(SessionConfig::default());
            client.start(&mut c_conn);
            let mut rig = Rig {
                c_conn,
                s_conn,
                client,
                server: Session::server(SessionConfig::default()),
                now: t(0),
            };
            rig.run();
            rig
        }

        /// Shuttles until both quiet, pumping events through the sessions.
        fn run(&mut self) {
            for _ in 0..64 {
                let mut moved = false;
                let mut c2s = Vec::new();
                while let Some(d) = self.c_conn.poll_transmit(self.now) {
                    c2s.push(d);
                }
                let mut s2c = Vec::new();
                while let Some(d) = self.s_conn.poll_transmit(self.now) {
                    s2c.push(d);
                }
                if !c2s.is_empty() || !s2c.is_empty() {
                    moved = true;
                    self.now += Duration::from_millis(10);
                    for d in c2s {
                        self.s_conn.handle_datagram(self.now, &d);
                    }
                    for d in s2c {
                        self.c_conn.handle_datagram(self.now, &d);
                    }
                }
                // Pump connection events into sessions.
                while let Some(ev) = self.c_conn.poll_event() {
                    self.client.on_conn_event(&mut self.c_conn, &ev);
                }
                while let Some(ev) = self.s_conn.poll_event() {
                    self.server.on_conn_event(&mut self.s_conn, &ev);
                }
                if !moved {
                    break;
                }
            }
        }

        fn client_events(&mut self) -> Vec<SessionEvent> {
            let mut out = Vec::new();
            while let Some(e) = self.client.poll_event() {
                out.push(e);
            }
            out
        }

        fn server_events(&mut self) -> Vec<SessionEvent> {
            let mut out = Vec::new();
            while let Some(e) = self.server.poll_event() {
                out.push(e);
            }
            out
        }
    }

    #[test]
    fn setup_negotiates_version() {
        let mut rig = Rig::new();
        assert!(rig.client.is_ready());
        assert!(rig.server.is_ready());
        assert_eq!(rig.client.state(), SessionState::Ready);
        assert_eq!(rig.server.state(), SessionState::Ready);
        assert_eq!(rig.client.version(), Some(crate::MOQT_VERSION));
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(e, SessionEvent::Ready { .. })));
        let sev = rig.server_events();
        assert!(sev.iter().any(|e| matches!(e, SessionEvent::Ready { .. })));
    }

    #[test]
    fn subscribe_accept_publish_flow() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();

        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let sev = rig.server_events();
        let req = sev
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe {
                    request_id,
                    track: tr,
                } => {
                    assert_eq!(*tr, track());
                    Some(*request_id)
                }
                _ => None,
            })
            .expect("incoming subscribe");

        rig.server
            .accept_subscribe(&mut rig.s_conn, req, Some((17, 0)));
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::SubscribeAccepted { request_id, largest: Some((17, 0)) }
            if *request_id == sub_id
        )));

        // Publish an update (a new group = new zone version).
        let ok = rig.server.publish(
            &mut rig.s_conn,
            req,
            Object {
                group_id: 18,
                object_id: 0,
                payload: b"new dns response".to_vec().into(),
            },
        );
        assert!(ok);
        rig.run();
        let cev = rig.client_events();
        let got = cev
            .iter()
            .find_map(|e| match e {
                SessionEvent::SubscriptionObject { request_id, object }
                    if *request_id == sub_id =>
                {
                    Some(object.clone())
                }
                _ => None,
            })
            .expect("pushed object");
        assert_eq!(got.group_id, 18);
        assert_eq!(got.object_id, 0);
        assert_eq!(got.payload, b"new dns response");
    }

    #[test]
    fn joining_fetch_returns_current_version() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();

        let (sub_id, fetch_id) =
            rig.client
                .subscribe_with_joining_fetch(&mut rig.c_conn, track(), 1);
        rig.run();
        let sev = rig.server_events();
        let sub_req = sev
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        let (fetch_req, kind) = sev
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingFetch { request_id, kind } => {
                    Some((*request_id, kind.clone()))
                }
                _ => None,
            })
            .unwrap();
        match kind {
            IncomingFetchKind::Joining {
                joining_request_id,
                offset,
                track: tr,
            } => {
                assert_eq!(joining_request_id, sub_req);
                assert_eq!(offset, 1);
                assert_eq!(tr, track());
            }
            other => panic!("{other:?}"),
        }

        // Server: accept subscription at version 5, answer fetch with v5.
        rig.server
            .accept_subscribe(&mut rig.s_conn, sub_req, Some((5, 0)));
        rig.server.respond_fetch(
            &mut rig.s_conn,
            fetch_req,
            (5, 0),
            vec![Object {
                group_id: 5,
                object_id: 0,
                payload: b"current record".to_vec().into(),
            }],
        );
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(
            |e| matches!(e, SessionEvent::SubscribeAccepted { request_id, .. } if *request_id == sub_id)
        ));
        assert!(cev.iter().any(
            |e| matches!(e, SessionEvent::FetchAccepted { request_id, largest: (5, 0) } if *request_id == fetch_id)
        ));
        let objs = cev
            .iter()
            .find_map(|e| match e {
                SessionEvent::FetchObjects {
                    request_id,
                    objects,
                } if *request_id == fetch_id => Some(objects.clone()),
                _ => None,
            })
            .expect("fetch objects");
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].group_id, 5);
        assert_eq!(objs[0].payload, b"current record");
    }

    #[test]
    fn subscribe_rejection_surfaces() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server
            .reject_subscribe(&mut rig.s_conn, req, 0x4, "no MoQT upstream");
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::SubscribeRejected { request_id, code: 0x4, reason }
            if *request_id == sub_id && reason == "no MoQT upstream"
        )));
        assert_eq!(rig.client.subscription_count(), 0);
    }

    #[test]
    fn unsubscribe_notifies_publisher() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server.accept_subscribe(&mut rig.s_conn, req, None);
        rig.run();
        rig.client_events();

        rig.client.unsubscribe(&mut rig.c_conn, sub_id);
        rig.run();
        let sev = rig.server_events();
        assert!(sev.iter().any(
            |e| matches!(e, SessionEvent::PeerUnsubscribed { request_id } if *request_id == req)
        ));
        assert_eq!(rig.server.peer_subscription_count(), 0);
        // Publishing to a dead subscription fails.
        assert!(!rig.server.publish(
            &mut rig.s_conn,
            req,
            Object {
                group_id: 1,
                object_id: 0,
                payload: vec![].into()
            }
        ));
    }

    #[test]
    fn subscribe_done_ends_subscription() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server.accept_subscribe(&mut rig.s_conn, req, None);
        rig.run();
        rig.client_events();
        rig.server
            .subscribe_done(&mut rig.s_conn, req, 0, "zone gone");
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::SubscriptionEnded { request_id, .. } if *request_id == sub_id
        )));
        assert_eq!(rig.client.subscription_count(), 0);
    }

    #[test]
    fn fetch_rejection_surfaces() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let fetch_id = rig.client.fetch(&mut rig.c_conn, track(), 1, 5);
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingFetch { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server
            .reject_fetch(&mut rig.s_conn, req, 0x5, "no such track");
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::FetchRejected { request_id, .. } if *request_id == fetch_id
        )));
    }

    #[test]
    fn joining_fetch_for_unknown_subscription_rejected() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        // Forge a joining fetch with a bogus joining id.
        let fetch_id = {
            let id = rig.client.alloc_request_id();
            rig.client.my_fetches.insert(id, ());
            let msg = ControlMessage::Fetch {
                request_id: id,
                fetch: FetchType::RelativeJoining {
                    joining_request_id: 999,
                    joining_start: 1,
                },
            };
            rig.client.send_control(&mut rig.c_conn, &msg);
            id
        };
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::FetchRejected { request_id, .. } if *request_id == fetch_id
        )));
    }

    #[test]
    fn datagram_objects_for_ablation() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let sub_id = rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        let req = rig
            .server_events()
            .iter()
            .find_map(|e| match e {
                SessionEvent::IncomingSubscribe { request_id, .. } => Some(*request_id),
                _ => None,
            })
            .unwrap();
        rig.server.accept_subscribe(&mut rig.s_conn, req, None);
        rig.run();
        rig.client_events();
        assert!(rig.server.publish_datagram(
            &mut rig.s_conn,
            req,
            Object {
                group_id: 3,
                object_id: 0,
                payload: b"dg".to_vec().into()
            }
        ));
        rig.run();
        let cev = rig.client_events();
        assert!(cev.iter().any(|e| matches!(
            e,
            SessionEvent::SubscriptionObject { request_id, object }
            if *request_id == sub_id && object.payload == b"dg"
        )));
    }

    #[test]
    fn state_size_grows_with_subscriptions() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        let base = rig.client.state_size_estimate();
        for _ in 0..10 {
            rig.client.subscribe(&mut rig.c_conn, track());
        }
        assert!(rig.client.state_size_estimate() > base);
        assert_eq!(rig.client.subscription_count(), 10);
    }

    // ------------------------------------------------------------------
    // Hardening: poisoning, buffer bounds, dropped-datagram accounting
    // ------------------------------------------------------------------

    #[test]
    fn garbage_control_bytes_poison_session() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        // Raw garbage on the control stream: an unknown message type.
        rig.client.inject_raw_control(&mut rig.c_conn, &[0xff; 32]);
        rig.run();
        let sev = rig.server_events();
        assert!(sev
            .iter()
            .any(|e| matches!(e, SessionEvent::ProtocolViolation(_))));
        assert_eq!(rig.server.state(), SessionState::Closed);
        assert!(!rig.server.is_ready());
        assert_eq!(rig.server.stats().violations, 1);
        // A poisoned session stays closed: further legal traffic is inert.
        rig.client.subscribe(&mut rig.c_conn, track());
        rig.run();
        assert!(rig.server_events().is_empty());
        assert_eq!(rig.server.state(), SessionState::Closed);
    }

    #[test]
    fn control_buffer_overflow_poisons_session() {
        let cfg = SessionConfig {
            max_control_buffer: 64,
            ..Default::default()
        };
        let alpn = moqdns_quic::alpn_list(&[crate::MOQT_ALPN]);
        let mut c_conn =
            Connection::client(1, TransportConfig::default(), alpn.clone(), None, t(0));
        let s_conn = Connection::server(1, TransportConfig::default(), alpn, 7, t(0));
        let mut client = Session::client(SessionConfig::default());
        client.start(&mut c_conn);
        let mut rig = Rig {
            c_conn,
            s_conn,
            client,
            server: Session::server(cfg),
            now: t(0),
        };
        rig.run();
        rig.client_events();
        rig.server_events();
        assert!(rig.server.is_ready());
        // A length prefix promising a large message that never completes:
        // type 0x03 (SUBSCRIBE), claimed length 4096, then padding bytes
        // that keep the message incomplete while the buffer grows.
        let mut junk = vec![0x03, 0x50, 0x00]; // varint type + 2-byte varint len 4096
        junk.extend_from_slice(&[0xaa; 200]);
        rig.client.inject_raw_control(&mut rig.c_conn, &junk);
        rig.run();
        let sev = rig.server_events();
        assert!(sev.iter().any(|e| matches!(
            e,
            SessionEvent::ProtocolViolation("control buffer overflow")
        )));
        assert_eq!(rig.server.state(), SessionState::Closed);
    }

    #[test]
    fn unknown_alias_datagram_counted_not_fatal() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        // The server pushes a datagram for an alias the client never
        // subscribed: counted, dropped, session stays live.
        let dg = ObjectDatagram {
            track_alias: 999,
            object: Object {
                group_id: 1,
                object_id: 0,
                payload: b"spoof".to_vec().into(),
            },
        };
        rig.s_conn.send_datagram(dg.encode()).unwrap();
        rig.run();
        assert!(rig.client_events().is_empty());
        assert_eq!(rig.client.stats().dropped_datagrams, 1);
        assert_eq!(rig.client.state(), SessionState::Ready);
        // Malformed datagram bytes count too.
        rig.s_conn.send_datagram(vec![0xff, 0x01]).unwrap();
        rig.run();
        assert_eq!(rig.client.stats().dropped_datagrams, 2);
        assert_eq!(rig.client.state(), SessionState::Ready);
    }

    #[test]
    fn goaway_drains_then_drain_timeout_closes() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        // Server asks the client to move.
        rig.server
            .send_control(&mut rig.s_conn, &ControlMessage::GoAway { uri: "x".into() });
        rig.run();
        let cev = rig.client_events();
        assert!(cev
            .iter()
            .any(|e| matches!(e, SessionEvent::GoAway { uri } if uri == "x")));
        assert_eq!(rig.client.state(), SessionState::Draining);
        // Draining still counts as usable.
        assert!(rig.client.is_ready());
        // New incoming subscribes are refused while draining: the server
        // subscribes to the client (role reversal is legal in MoQT).
        let sub_id = rig.server.subscribe(&mut rig.s_conn, track());
        rig.run();
        let sev = rig.server_events();
        assert!(sev.iter().any(|e| matches!(
            e,
            SessionEvent::SubscribeRejected { request_id, code, .. }
            if *request_id == sub_id && *code == ERR_DRAINING
        )));
        // The drain timer closes the session.
        let outs = rig.client.transition(SessionInput::DrainTimeout);
        assert_eq!(
            outs,
            vec![SessionOutput::Close {
                code: CLOSE_DRAINED,
                reason: "drained"
            }]
        );
        assert_eq!(rig.client.state(), SessionState::Closed);
    }

    #[test]
    fn request_before_setup_poisons() {
        // A server session that receives SUBSCRIBE before CLIENT_SETUP.
        let mut server = Session::server(SessionConfig::default());
        let outs = server.transition(SessionInput::ControlStreamOpened(StreamId::new(
            true,
            Dir::Bi,
            0,
        )));
        assert!(outs.is_empty());
        assert_eq!(server.state(), SessionState::Handshaking);
        let outs = server.transition(SessionInput::Subscribe {
            request_id: 0,
            track_alias: 0,
            track: track(),
            filter: FilterType::LatestObject,
        });
        assert!(outs
            .iter()
            .any(|o| matches!(o, SessionOutput::Event(SessionEvent::ProtocolViolation(_)))));
        assert!(outs
            .iter()
            .any(|o| matches!(o, SessionOutput::Close { .. })));
        assert_eq!(server.state(), SessionState::Closed);
    }

    #[test]
    fn duplicate_subscribe_request_id_poisons() {
        let mut rig = Rig::new();
        rig.client_events();
        rig.server_events();
        // Two SUBSCRIBEs forged with the same request id.
        for _ in 0..2 {
            let msg = ControlMessage::Subscribe {
                request_id: 42,
                track_alias: 42,
                track: track(),
                filter: FilterType::LatestObject,
            };
            rig.client.send_control(&mut rig.c_conn, &msg);
        }
        rig.run();
        let sev = rig.server_events();
        assert!(sev.iter().any(|e| matches!(
            e,
            SessionEvent::ProtocolViolation("duplicate subscribe request id")
        )));
        assert_eq!(rig.server.state(), SessionState::Closed);
    }
}
