//! Full track names: namespace tuple + track name.
//!
//! MoQT identifies a track by a *namespace* — "a tuple of sequences of
//! bytes" — and a *track name* — "a single sequence of bytes"; the combined
//! length is capped at 4096 bytes (paper §3). The DNS mapping puts the
//! request's OPCODE/RD/CD byte, QTYPE and QCLASS into the first three
//! namespace elements and the QNAME wire form into the track name (§4.3),
//! leaving 4091 bytes of QNAME budget.

use moqdns_wire::{varint, Reader, WireError, WireResult, Writer};
use std::fmt;

/// Maximum combined length of namespace elements and track name.
pub const MAX_FULL_NAME_LEN: usize = 4096;
/// Maximum number of namespace tuple elements (draft-12 §2.4.1).
pub const MAX_NAMESPACE_ELEMENTS: usize = 32;

/// A complete track identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FullTrackName {
    /// Namespace tuple elements.
    pub namespace: Vec<Vec<u8>>,
    /// Track name.
    pub name: Vec<u8>,
}

impl FullTrackName {
    /// Builds and validates a full track name.
    pub fn new(namespace: Vec<Vec<u8>>, name: Vec<u8>) -> WireResult<FullTrackName> {
        let t = FullTrackName { namespace, name };
        t.validate()?;
        Ok(t)
    }

    /// Validates the element count and combined length limits.
    pub fn validate(&self) -> WireResult<()> {
        if self.namespace.is_empty() || self.namespace.len() > MAX_NAMESPACE_ELEMENTS {
            return Err(WireError::Invalid {
                what: "namespace element count",
            });
        }
        if self.total_len() > MAX_FULL_NAME_LEN {
            return Err(WireError::ValueTooLarge {
                what: "full track name",
            });
        }
        Ok(())
    }

    /// Combined byte length of all namespace elements plus the name.
    pub fn total_len(&self) -> usize {
        self.namespace.iter().map(Vec::len).sum::<usize>() + self.name.len()
    }

    /// Encodes (tuple count, elements, name) with varint length prefixes.
    pub fn encode(&self, w: &mut Writer) {
        varint::put_varint(w, self.namespace.len() as u64);
        for e in &self.namespace {
            varint::put_varint(w, e.len() as u64);
            w.put_slice(e);
        }
        varint::put_varint(w, self.name.len() as u64);
        w.put_slice(&self.name);
    }

    /// Decodes and validates a full track name.
    pub fn decode(r: &mut Reader<'_>) -> WireResult<FullTrackName> {
        let n = varint::get_varint(r)? as usize;
        if n == 0 || n > MAX_NAMESPACE_ELEMENTS {
            return Err(WireError::Invalid {
                what: "namespace element count",
            });
        }
        let mut namespace = Vec::with_capacity(n);
        for _ in 0..n {
            let len = varint::get_varint(r)? as usize;
            namespace.push(r.get_vec(len)?);
        }
        let len = varint::get_varint(r)? as usize;
        let name = r.get_vec(len)?;
        let t = FullTrackName { namespace, name };
        t.validate()?;
        Ok(t)
    }
}

impl fmt::Display for FullTrackName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.namespace.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            for b in e {
                write!(f, "{b:02x}")?;
            }
        }
        write!(f, ":")?;
        for b in &self.name {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(t: &FullTrackName) -> FullTrackName {
        let mut w = Writer::new();
        t.encode(&mut w);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let out = FullTrackName::decode(&mut r).unwrap();
        assert!(r.is_empty());
        out
    }

    #[test]
    fn roundtrip() {
        let t = FullTrackName::new(
            vec![vec![0x01], vec![0x00, 0x01], vec![0x00, 0x01]],
            b"\x07example\x03com\x00".to_vec(),
        )
        .unwrap();
        assert_eq!(rt(&t), t);
    }

    #[test]
    fn enforces_4096_limit() {
        // 3 namespace bytes + 4093 name bytes = 4096: legal.
        let ok = FullTrackName::new(vec![vec![1], vec![2], vec![3]], vec![0; 4093]);
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().total_len(), MAX_FULL_NAME_LEN);
        // One more byte: rejected.
        let too_big = FullTrackName::new(vec![vec![1], vec![2], vec![3]], vec![0; 4094]);
        assert!(too_big.is_err());
    }

    #[test]
    fn rejects_empty_namespace() {
        assert!(FullTrackName::new(vec![], b"x".to_vec()).is_err());
    }

    #[test]
    fn rejects_too_many_elements() {
        let ns = vec![vec![0u8]; MAX_NAMESPACE_ELEMENTS + 1];
        assert!(FullTrackName::new(ns, vec![]).is_err());
    }

    #[test]
    fn decode_rejects_oversize() {
        let mut w = Writer::new();
        varint::put_varint(&mut w, 1);
        varint::put_varint(&mut w, 5000);
        w.put_slice(&vec![0; 5000]);
        varint::put_varint(&mut w, 0);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert!(FullTrackName::decode(&mut r).is_err());
    }

    #[test]
    fn display_is_stable() {
        let t = FullTrackName::new(vec![vec![0xAB]], vec![0x01, 0x02]).unwrap();
        assert_eq!(t.to_string(), "ab:0102");
    }
}
