//! Model-based interleaving test of the session state machine.
//!
//! Random sequences of [`SessionInput`]s — legal handshakes, mid-stream
//! garbage, duplicate request ids, inputs in states where they are
//! violations — are fed straight into [`Session::transition`] and checked
//! against the machine's contract:
//!
//! 1. **no panic** on any interleaving;
//! 2. **`Closed` is absorbing and inert** — once closed, every further
//!    input produces no outputs and no state change;
//! 3. **poison closes** — a transition that emits
//!    [`SessionOutput::Close`] leaves the session in `Closed`;
//! 4. **violations are counted** — every `ProtocolViolation` event is
//!    reflected in [`SessionStats::violations`], and each one poisons the
//!    session (so the counter can never race past the close).
//!
//! The wire decoders get their own fuzz (in `message.rs` / `data.rs`);
//! this test drives the layer above them, where the ISSUE-6 hardening
//! lives.

use moqdns_moqt::data::{Object, ObjectDatagram, SubgroupHeader};
use moqdns_moqt::message::{FetchType, FilterType};
use moqdns_moqt::session::{
    Session, SessionConfig, SessionEvent, SessionInput, SessionOutput, SessionState,
};
use moqdns_moqt::track::FullTrackName;
use moqdns_quic::streams::{Dir, StreamId};
use proptest::prelude::*;

/// Deterministically maps an opcode byte to a `SessionInput`, covering
/// every variant (the low nibble picks the variant, the high nibble and
/// position perturb ids so sequences contain duplicates *and* fresh ids).
fn input_for(op: u8, i: usize) -> SessionInput {
    let id = (op >> 4) as u64 % 4; // small id space → plenty of duplicates
    let track = FullTrackName::new(vec![b"model.example".to_vec()], b"r".to_vec())
        .expect("static track name");
    match op % 22 {
        0 => SessionInput::ControlStreamOpened(StreamId::new(true, Dir::Bi, id)),
        1 => SessionInput::DataStreamOpened(StreamId::new(false, Dir::Uni, i as u64)),
        2 => SessionInput::DataSubgroup {
            header: SubgroupHeader {
                track_alias: id,
                group_id: i as u64,
                subgroup_id: 0,
                priority: 0,
            },
            objects: vec![Object {
                group_id: i as u64,
                object_id: 0,
                payload: vec![0xab; 8].into(),
            }],
        },
        3 => SessionInput::DataFetch {
            request_id: id,
            objects: Vec::new(),
        },
        4 => SessionInput::MalformedData,
        5 => SessionInput::Datagram(ObjectDatagram {
            track_alias: id,
            object: Object {
                group_id: i as u64,
                object_id: 0,
                payload: vec![0xcd; 4].into(),
            },
        }),
        6 => SessionInput::MalformedDatagram,
        7 => SessionInput::MalformedControl,
        8 => SessionInput::ControlOverflow,
        9 => SessionInput::DrainTimeout,
        10 => SessionInput::ClientSetup {
            versions: vec![0xff00000d + id],
            max_request_id: 64,
        },
        11 => SessionInput::ServerSetup {
            version: 0xff00000d,
            max_request_id: 64,
        },
        12 => SessionInput::Subscribe {
            request_id: id * 2,
            track_alias: id,
            track,
            filter: FilterType::LatestObject,
        },
        13 => SessionInput::SubscribeOk {
            request_id: id * 2 + 1,
            expires_ms: 0,
            largest: None,
        },
        14 => SessionInput::SubscribeError {
            request_id: id * 2 + 1,
            code: 1,
            reason: "model".into(),
        },
        15 => SessionInput::Unsubscribe { request_id: id * 2 },
        16 => SessionInput::Fetch {
            request_id: id * 2,
            fetch: FetchType::StandAlone {
                track,
                start_group: 0,
                start_object: 0,
                end_group: 0,
            },
        },
        17 => SessionInput::FetchOk {
            request_id: id * 2 + 1,
            largest: (0, 0),
        },
        18 => SessionInput::FetchError {
            request_id: id * 2 + 1,
            code: 1,
            reason: "model".into(),
        },
        19 => SessionInput::FetchCancel { request_id: id * 2 },
        20 => SessionInput::MaxRequestId { max: 1 << 16 },
        _ => SessionInput::GoAway { uri: String::new() },
    }
}

/// Runs one input script against a session and checks the contract.
fn check_machine(mut sess: Session, script: &[u8]) {
    let mut violations_seen = 0u64;
    for (i, &op) in script.iter().enumerate() {
        let was_closed = sess.state() == SessionState::Closed;
        let outputs = sess.transition(input_for(op, i));

        if was_closed {
            // Contract 2: Closed is absorbing and inert.
            prop_assert!(
                outputs.is_empty(),
                "closed session produced outputs: {outputs:?}"
            );
            prop_assert_eq!(sess.state(), SessionState::Closed);
            continue;
        }
        let mut closed_by_output = false;
        for out in &outputs {
            match out {
                SessionOutput::Close { .. } => closed_by_output = true,
                SessionOutput::Event(SessionEvent::ProtocolViolation(_)) => {
                    violations_seen += 1;
                }
                _ => {}
            }
        }
        // Contract 3: a Close output means the machine is in Closed.
        if closed_by_output {
            prop_assert_eq!(sess.state(), SessionState::Closed);
        }
        // Contract 4: the hardening counter tracks emitted violations
        // exactly, and every violation poisoned the session.
        prop_assert_eq!(sess.stats().violations, violations_seen);
        if violations_seen > 0 {
            prop_assert_eq!(sess.state(), SessionState::Closed);
        }
    }
}

proptest! {
    #[test]
    fn prop_server_machine_contract(script in proptest::collection::vec(any::<u8>(), 0..64)) {
        check_machine(Session::server(SessionConfig::default()), &script);
    }

    #[test]
    fn prop_client_machine_contract(script in proptest::collection::vec(any::<u8>(), 0..64)) {
        check_machine(Session::client(SessionConfig::default()), &script);
    }

    /// A legal handshake followed by garbage: the session must reach
    /// `Ready` and then poison on the first malformed control input, no
    /// matter what preceded it in the legal phase.
    #[test]
    fn prop_garbage_after_handshake_poisons(script in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut sess = Session::server(SessionConfig::default());
        sess.transition(SessionInput::ControlStreamOpened(StreamId::new(true, Dir::Bi, 0)));
        sess.transition(SessionInput::ClientSetup {
            versions: vec![moqdns_moqt::MOQT_VERSION],
            max_request_id: 64,
        });
        prop_assert_eq!(sess.state(), SessionState::Ready);
        let before = sess.stats().violations;
        for (i, &op) in script.iter().enumerate() {
            sess.transition(input_for(op, i));
        }
        let outs = sess.transition(SessionInput::MalformedControl);
        prop_assert_eq!(sess.state(), SessionState::Closed);
        // Either this input poisoned it (a Close goes out) or the script
        // already had — in which case Closed was inert and emitted nothing.
        if sess.stats().violations > before {
            prop_assert!(sess.stats().violations >= 1);
        } else {
            prop_assert!(outs.is_empty());
        }
    }
}
