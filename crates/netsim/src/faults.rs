//! Declarative, seeded fault plans: the chaos plane.
//!
//! A [`FaultPlan`] is an ordered list of `(time, action)` pairs built
//! once by a [`FaultPlanBuilder`] and then *applied* to a running world
//! by [`run_plan`]. Supported actions:
//!
//! * **link flaps** — a window during which a link drops every datagram
//!   (`loss = 1.0`, delay unchanged), then restores the original config;
//! * **region partitions** — cut every listed cross-region link for a
//!   window (a flap over a set of links sharing one window);
//! * **loss bursts** — degrade a link to a given loss probability for a
//!   window instead of cutting it outright;
//! * **node crash / restart** — delegated to a host callback, because
//!   only the application layer knows how to shut down and revive its
//!   concrete node types (e.g. `RelayNode::shutdown` / `revive`).
//!
//! ## Determinism contract
//!
//! Faults are applied at **barrier points**: [`run_plan`] drives the
//! host with `run_until(event.at)` — which executes every simulation
//! event at or before that instant on every shard — and only then
//! mutates link state or invokes the node callback. Link configs are
//! read at *transmit* time on the sending shard, so a change at the
//! barrier affects exactly the transmits scheduled after it, in both
//! single-threaded and sharded runs. Combined with the per-link
//! deterministic loss/jitter draws (see `Simulator`), a plan replays
//! bit-identically for any worker count — pinned by the parity test
//! below and end-to-end by `moqdns-bench`'s parallel parity suite.
//!
//! Flap windows keep each link's **delay** unchanged (only `loss` moves
//! to 1.0), so [`ParSim`]'s lookahead bound — the minimum cross-shard
//! link delay — is never invalidated mid-run.
//!
//! Window boundaries can be jittered deterministically from the plan
//! seed ([`FaultPlanBuilder::window_jitter`]): each boundary shifts by
//! `splitmix64(seed, event-seq) % span`, so "roughly every 5 s" chaos
//! schedules stay reproducible.

use crate::link::LinkConfig;
use crate::node::NodeId;
use crate::par::ParSim;
use crate::sim::{splitmix64, Simulator};
use crate::time::SimTime;
use std::time::Duration;

/// A node-lifecycle fault, delegated to the [`run_plan`] callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// Abruptly kill the node: it loses all volatile state and stops
    /// responding (application layer: `shutdown()`).
    Crash,
    /// Bring a crashed node back cold (application layer: `revive()` /
    /// `reset()` + re-dial).
    Restart,
}

/// One fault to apply at an instant.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Set both directions of `a <-> b` to `cfg`.
    SetLink {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Config to install (both directions).
        cfg: LinkConfig,
    },
    /// Set only the directed link `src -> dst` to `cfg`.
    SetLinkDirected {
        /// Transmitting side.
        src: NodeId,
        /// Receiving side.
        dst: NodeId,
        /// Config to install.
        cfg: LinkConfig,
    },
    /// Crash or restart `node` via the host callback.
    Node {
        /// The affected node.
        node: NodeId,
        /// What happens to it.
        fault: NodeFault,
    },
}

/// A fault scheduled at a simulation instant.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// When the fault applies (a barrier point).
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// An immutable, time-ordered fault schedule. Build with
/// [`FaultPlanBuilder`]; apply with [`run_plan`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The scheduled events in ascending time order (ties keep build
    /// order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Builder for [`FaultPlan`]: compose flaps, partitions, loss bursts and
/// crash/restart events, each optionally jittered from the plan seed.
#[derive(Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    jitter: Duration,
    events: Vec<FaultEvent>,
}

impl FaultPlanBuilder {
    /// A builder whose window jitter (if enabled) derives from `seed`.
    pub fn new(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            jitter: Duration::ZERO,
            events: Vec::new(),
        }
    }

    /// Jitters every subsequent window boundary forward by a
    /// deterministic amount in `[0, span)` drawn from the plan seed and
    /// the event's position. Call with `Duration::ZERO` to disable
    /// again.
    pub fn window_jitter(mut self, span: Duration) -> FaultPlanBuilder {
        self.jitter = span;
        self
    }

    fn jittered(&self, at: SimTime) -> SimTime {
        if self.jitter.is_zero() {
            return at;
        }
        let span = self.jitter.as_nanos() as u64;
        let draw =
            splitmix64(self.seed ^ (self.events.len() as u64).wrapping_mul(0xD134_2543_DE82_EF95));
        at + Duration::from_nanos(draw % span)
    }

    fn push(&mut self, at: SimTime, action: FaultAction) {
        let at = self.jittered(at);
        self.events.push(FaultEvent { at, action });
    }

    /// Cuts `a <-> b` (loss 1.0, delay and rate unchanged) from `from`
    /// until `until`, then restores `up`.
    pub fn flap(
        mut self,
        a: NodeId,
        b: NodeId,
        up: LinkConfig,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlanBuilder {
        assert!(until > from, "flap window must not be empty");
        self.push(
            from,
            FaultAction::SetLink {
                a,
                b,
                cfg: up.loss(1.0),
            },
        );
        self.push(until, FaultAction::SetLink { a, b, cfg: up });
        self
    }

    /// Degrades `a <-> b` to loss probability `loss` for the window,
    /// then restores `up`.
    pub fn loss_burst(
        mut self,
        a: NodeId,
        b: NodeId,
        up: LinkConfig,
        loss: f64,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlanBuilder {
        assert!(until > from, "loss-burst window must not be empty");
        self.push(
            from,
            FaultAction::SetLink {
                a,
                b,
                cfg: up.loss(loss),
            },
        );
        self.push(until, FaultAction::SetLink { a, b, cfg: up });
        self
    }

    /// Partitions: cuts every listed link `(a, b, up-config)` at `from`
    /// and restores each at `until`. Used to isolate a region by listing
    /// all of its cross-region links.
    pub fn partition(
        mut self,
        links: &[(NodeId, NodeId, LinkConfig)],
        from: SimTime,
        until: SimTime,
    ) -> FaultPlanBuilder {
        assert!(until > from, "partition window must not be empty");
        for &(a, b, up) in links {
            self.push(
                from,
                FaultAction::SetLink {
                    a,
                    b,
                    cfg: up.loss(1.0),
                },
            );
        }
        for &(a, b, up) in links {
            self.push(until, FaultAction::SetLink { a, b, cfg: up });
        }
        self
    }

    /// Crashes `node` at `at` (host callback decides what that means).
    pub fn crash(mut self, node: NodeId, at: SimTime) -> FaultPlanBuilder {
        self.push(
            at,
            FaultAction::Node {
                node,
                fault: NodeFault::Crash,
            },
        );
        self
    }

    /// Restarts `node` at `at`.
    pub fn restart(mut self, node: NodeId, at: SimTime) -> FaultPlanBuilder {
        self.push(
            at,
            FaultAction::Node {
                node,
                fault: NodeFault::Restart,
            },
        );
        self
    }

    /// Finalizes the plan: stable-sorts by time (ties keep build order,
    /// so "cut then restore at the same instant" keeps its meaning).
    pub fn build(mut self) -> FaultPlan {
        self.events.sort_by_key(|e| e.at);
        FaultPlan {
            events: self.events,
        }
    }
}

/// The surface [`run_plan`] drives: both [`Simulator`] and [`ParSim`]
/// implement it, so one plan runs unchanged single-threaded and
/// sharded.
pub trait FaultHost {
    /// Current simulation time.
    fn now(&self) -> SimTime;
    /// Executes every event at or before `deadline` (a barrier on
    /// sharded hosts).
    fn run_until(&mut self, deadline: SimTime);
    /// Replaces both directions of `a <-> b`.
    fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig);
    /// Replaces the directed link `src -> dst`.
    fn set_link_directed(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig);
}

impl FaultHost for Simulator {
    fn now(&self) -> SimTime {
        Simulator::now(self)
    }
    fn run_until(&mut self, deadline: SimTime) {
        Simulator::run_until(self, deadline);
    }
    fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        Simulator::set_link(self, a, b, cfg);
    }
    fn set_link_directed(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        Simulator::set_link_directed(self, src, dst, cfg);
    }
}

impl FaultHost for ParSim {
    fn now(&self) -> SimTime {
        ParSim::now(self)
    }
    fn run_until(&mut self, deadline: SimTime) {
        ParSim::run_until(self, deadline);
    }
    fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        ParSim::set_link(self, a, b, cfg);
    }
    fn set_link_directed(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        ParSim::set_link_directed(self, src, dst, cfg);
    }
}

/// Drives `host` to `end`, applying each fault of `plan` at its barrier
/// point on the way. Node faults are handed to `on_node`, which crashes
/// or revives the concrete node type (the host is passed back so the
/// callback can use `with_node`). Fault events scheduled after `end`
/// are skipped.
pub fn run_plan<H: FaultHost>(
    host: &mut H,
    plan: &FaultPlan,
    end: SimTime,
    mut on_node: impl FnMut(&mut H, NodeId, NodeFault),
) {
    for ev in plan.events.iter().take_while(|e| e.at <= end) {
        let at = ev.at.max(host.now());
        host.run_until(at);
        match ev.action {
            FaultAction::SetLink { a, b, cfg } => host.set_link(a, b, cfg),
            FaultAction::SetLinkDirected { src, dst, cfg } => host.set_link_directed(src, dst, cfg),
            FaultAction::Node { node, fault } => on_node(host, node, fault),
        }
    }
    host.run_until(end);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Addr, Ctx, Node};
    use crate::Payload;
    use std::any::Any;

    /// Sends one sequenced datagram to a peer every 10 ms and records
    /// what it hears.
    #[derive(Default)]
    struct Ticker {
        peer: Option<Addr>,
        next_seq: u64,
        heard: Vec<(SimTime, u64)>,
    }

    impl Node for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if self.peer.is_some() {
                ctx.set_timer(Duration::from_millis(10), 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if let Some(peer) = self.peer {
                ctx.send(1, peer, self.next_seq.to_be_bytes().to_vec());
                self.next_seq += 1;
                ctx.set_timer(Duration::from_millis(10), 1);
            }
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, _from: Addr, _port: u16, payload: Payload) {
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload);
            self.heard.push((ctx.now(), u64::from_be_bytes(b)));
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    fn up() -> LinkConfig {
        LinkConfig::with_delay(Duration::from_millis(5))
    }

    fn build_world(host: &mut dyn HostSetup) -> (NodeId, NodeId) {
        let b = host.add(1, "sink", Box::<Ticker>::default());
        let a = host.add(
            0,
            "ticker",
            Box::new(Ticker {
                peer: Some(Addr::new(b, 1)),
                ..Ticker::default()
            }),
        );
        host.link(a, b, up());
        (a, b)
    }

    /// Setup-side abstraction so the same world builds on both hosts
    /// (node ids differ in construction order; keep it symmetric).
    trait HostSetup {
        fn add(&mut self, shard: usize, name: &str, node: Box<dyn Node>) -> NodeId;
        fn link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig);
    }
    impl HostSetup for Simulator {
        fn add(&mut self, _shard: usize, name: &str, node: Box<dyn Node>) -> NodeId {
            self.add_node(name, node)
        }
        fn link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
            self.set_link(a, b, cfg);
        }
    }
    impl HostSetup for ParSim {
        fn add(&mut self, shard: usize, name: &str, node: Box<dyn Node>) -> NodeId {
            let shard = shard.min(self.workers() - 1);
            self.add_node(shard, name, node)
        }
        fn link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
            self.set_link(a, b, cfg);
        }
    }

    fn plan() -> FaultPlan {
        FaultPlanBuilder::new(9)
            .flap(
                NodeId::from_index(0),
                NodeId::from_index(1),
                up(),
                SimTime::from_millis(100),
                SimTime::from_millis(200),
            )
            .build()
    }

    #[test]
    fn flap_window_drops_then_recovers() {
        let mut sim = Simulator::new(7);
        let (_a, b) = build_world(&mut sim);
        run_plan(&mut sim, &plan(), SimTime::from_millis(400), |_, _, _| {
            panic!("no node faults in this plan")
        });
        let heard = &sim.node_ref::<Ticker>(b).heard;
        assert!(!heard.is_empty());
        // Nothing lands inside the cut window. The flap applies at the
        // barrier *after* events at 100 ms, so the send fired at exactly
        // 100 ms still uses the up config and lands at 105 ms; the first
        // dropped send is 110 ms, the first post-recovery one 200 ms
        // (landing 205 ms).
        for (t, _) in heard {
            assert!(
                t.as_millis() <= 105 || t.as_millis() >= 205,
                "delivery at {t:?} inside the flap window"
            );
        }
        // Sequences resume after the window: the post-flap tail is
        // contiguous (no duplicates, no reordering).
        let tail: Vec<u64> = heard
            .iter()
            .filter(|(t, _)| t.as_millis() > 105)
            .map(|&(_, s)| s)
            .collect();
        assert!(!tail.is_empty(), "link never recovered");
        for w in tail.windows(2) {
            assert_eq!(w[1], w[0] + 1, "gap or duplicate after recovery");
        }
    }

    #[test]
    fn plan_parity_across_shardings() {
        // The same seeded world under the same plan produces identical
        // delivery digests single-threaded and for every worker count.
        let single = {
            let mut sim = Simulator::new(11);
            sim.enable_delivery_digest();
            build_world(&mut sim);
            run_plan(&mut sim, &plan(), SimTime::from_millis(400), |_, _, _| {});
            sim.delivery_digest()
        };
        for workers in [1usize, 2] {
            let mut par = ParSim::new(11, workers);
            par.enable_delivery_digest();
            build_world(&mut par);
            run_plan(&mut par, &plan(), SimTime::from_millis(400), |_, _, _| {});
            assert_eq!(
                par.delivery_digest(),
                single,
                "digest diverged at {workers} workers with an active plan"
            );
        }
    }

    #[test]
    fn window_jitter_is_deterministic_and_bounded() {
        let build = |seed| {
            FaultPlanBuilder::new(seed)
                .window_jitter(Duration::from_millis(50))
                .flap(
                    NodeId::from_index(0),
                    NodeId::from_index(1),
                    up(),
                    SimTime::from_millis(100),
                    SimTime::from_millis(200),
                )
                .build()
        };
        let p1 = build(1);
        let p2 = build(1);
        for (a, b) in p1.events().iter().zip(p2.events()) {
            assert_eq!(a.at, b.at, "same seed must give the same schedule");
        }
        for (e, base) in p1.events().iter().zip([100u64, 200]) {
            let shift = e.at.as_millis() - base;
            assert!(shift < 50, "jitter {shift} ms exceeds the 50 ms span");
        }
        // A different seed moves at least one boundary.
        let p3 = build(2);
        assert!(
            p1.events()
                .iter()
                .zip(p3.events())
                .any(|(a, b)| a.at != b.at),
            "jitter ignored the seed"
        );
    }

    #[test]
    fn partition_and_node_faults_schedule_in_order() {
        let n = |i| NodeId::from_index(i);
        let plan = FaultPlanBuilder::new(0)
            .partition(
                &[(n(0), n(2), up()), (n(1), n(2), up())],
                SimTime::from_secs(2),
                SimTime::from_secs(4),
            )
            .crash(n(3), SimTime::from_secs(1))
            .restart(n(3), SimTime::from_secs(3))
            .build();
        assert_eq!(plan.len(), 6);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, vec![1000, 2000, 2000, 3000, 4000, 4000]);
        assert!(matches!(
            plan.events()[0].action,
            FaultAction::Node {
                fault: NodeFault::Crash,
                ..
            }
        ));
    }
}
