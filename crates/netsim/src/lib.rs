//! # moqdns-netsim
//!
//! A deterministic discrete-event network simulator.
//!
//! Every protocol component in this workspace (QUIC-like transport, MoQT,
//! DNS) is a sans-io state machine; this crate supplies the virtual world
//! they run in for experiments and integration tests:
//!
//! * virtual time ([`SimTime`]) as nanoseconds since simulation start — no
//!   wall-clock reads anywhere, so runs are exactly reproducible from a seed;
//! * an event scheduler — a hierarchical bucketed **timing wheel**
//!   (near-term ~1 ms buckets plus an overflow heap for far-future
//!   timers) with timers and arbitrary scheduled closures. Its
//!   determinism contract: events fire in strictly ascending
//!   `(time, key)` order, the key composing `(schedule-time, source,
//!   per-source seq)` — a pure function of the scheduling source's own
//!   history, so one source's events keep FIFO order and a sharded run
//!   composes exactly the keys a global scheduler would
//!   (property-tested in `sched`, pinned end-to-end by the parity tests);
//! * a parallel driver ([`ParSim`]): one simulator shard per region
//!   running on its own thread under conservative-lookahead
//!   (Chandy–Misra) synchronization. The **lookahead bound** is the
//!   minimum cross-shard link delay; shards run lock-free inside each
//!   half-open window `[T, T + L)` and exchange cross-shard datagrams at
//!   the barrier, each carrying its sender-composed scheduler key so it
//!   lands exactly where a global scheduler would have put it — the
//!   merged event history is bit-identical to a single-threaded run. See
//!   the [`par`] module docs for the full determinism contract;
//! * nodes ([`Node`]) exchanging datagrams over configurable links
//!   ([`LinkConfig`]: propagation delay, jitter, random loss, serialization
//!   rate, MTU). Datagram payloads are shared [`Payload`] handles: a
//!   fan-out of one buffer to N receivers clones a refcount, never the
//!   bytes;
//! * per-directed-pair traffic accounting ([`TrafficStats`]) used by the
//!   update-traffic experiments;
//! * a declarative chaos plane ([`faults`]): seeded [`FaultPlan`]s of
//!   link flaps, region partitions, loss bursts, and node
//!   crash/restart events, applied at barrier points so the same plan
//!   replays bit-identically single-threaded and under any sharding;
//! * declarative tiered topologies ([`topo`]): k-ary relay trees and
//!   multi-parent meshes with per-tier link configs, built once and
//!   reused by every experiment binary.
//!
//! The design follows the event-driven idiom of stacks like smoltcp: nodes
//! are polled with events (`on_datagram`, `on_timer`) and react by calling
//! back into their [`Ctx`] to transmit or arm timers.
//!
//! Hostile participants are ordinary [`Node`] implementations too: the
//! adversarial fleet in `moqdns-core::adversary` (a byzantine client that
//! injects malformed control frames, a slow-loris subscriber that joins
//! and never drains, a fetch-bomb client that stampedes a cold relay)
//! rides on the same `on_datagram`/`on_timer` surface as the honest
//! stubs, so attack drills compose with any topology built here.
//!
//! The same node types also run against **real sockets**: the [`live`]
//! bridge ([`LiveSim`]) maps wall-clock time onto [`SimTime`], injects
//! datagrams read from a UDP socket as cross-shard arrivals, and parks
//! node sends bound for remote peers in an outbound queue the io driver
//! flushes to the wire — the machinery `moqdns-relayd` is built on.

pub mod faults;
pub mod link;
pub mod live;
pub mod node;
pub mod par;
mod sched;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topo;

pub use faults::{
    run_plan, FaultAction, FaultEvent, FaultHost, FaultPlan, FaultPlanBuilder, NodeFault,
};
pub use link::LinkConfig;
pub use live::{LiveSim, OutboundDatagram};
pub use node::{Addr, Ctx, Node, NodeId};
pub use par::ParSim;
pub use sim::{splitmix64, Simulator};
pub use stats::{LinkStats, TrafficStats, TrafficStatsMut};
pub use time::SimTime;
pub use topo::{TopoBuilder, TopoHost, Topology};

/// Re-export of [`moqdns_wire::Payload`]: the shared, zero-copy datagram
/// payload handle every [`Node`] receives and sends.
pub use moqdns_wire::Payload;
