//! Link models: delay, jitter, loss, serialization rate, MTU.

use std::time::Duration;

/// Configuration of a directed link between two simulated nodes.
///
/// The delivery time of a datagram of `len` bytes sent at time `t` is
///
/// ```text
/// t + serialization(len) + delay + U(0, jitter)
/// ```
///
/// where `serialization(len) = len * 8 / rate_bps` and the link also keeps a
/// FIFO "busy until" horizon so that back-to-back datagrams queue behind each
/// other (a simple store-and-forward model). Datagrams may additionally be
/// dropped at random (`loss`) or deterministically when exceeding `mtu`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub delay: Duration,
    /// Maximum additional uniformly-distributed random delay.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that a datagram is silently dropped.
    pub loss: f64,
    /// Serialization rate in bits per second; `0` means infinitely fast.
    pub rate_bps: u64,
    /// Maximum datagram size in bytes; `0` means unlimited. Oversized
    /// datagrams are dropped (QUIC never fragments).
    pub mtu: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // A well-behaved wide-area path: 25 ms one way (50 ms RTT), lossless.
        LinkConfig {
            delay: Duration::from_millis(25),
            jitter: Duration::ZERO,
            loss: 0.0,
            rate_bps: 0,
            mtu: 0,
        }
    }
}

impl LinkConfig {
    /// A link with only a fixed one-way delay.
    pub fn with_delay(delay: Duration) -> LinkConfig {
        LinkConfig {
            delay,
            ..LinkConfig::default()
        }
    }

    /// An instantaneous, lossless link (useful in unit tests).
    pub fn instant() -> LinkConfig {
        LinkConfig {
            delay: Duration::ZERO,
            ..LinkConfig::default()
        }
    }

    /// Sets the loss probability (clamped to `[0, 1]`).
    pub fn loss(mut self, p: f64) -> LinkConfig {
        self.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the jitter bound.
    pub fn jitter(mut self, j: Duration) -> LinkConfig {
        self.jitter = j;
        self
    }

    /// Sets the serialization rate in bits per second.
    pub fn rate_bps(mut self, r: u64) -> LinkConfig {
        self.rate_bps = r;
        self
    }

    /// Sets the MTU in bytes.
    pub fn mtu(mut self, m: usize) -> LinkConfig {
        self.mtu = m;
        self
    }

    /// Serialization time for a datagram of `len` bytes.
    pub fn serialization(&self, len: usize) -> Duration {
        if self.rate_bps == 0 {
            Duration::ZERO
        } else {
            // bits / (bits/sec) expressed in nanoseconds to avoid float error.
            let bits = len as u128 * 8;
            let ns = bits * 1_000_000_000 / self.rate_bps as u128;
            Duration::from_nanos(ns as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_zero_rate_is_instant() {
        let l = LinkConfig::default();
        assert_eq!(l.serialization(1500), Duration::ZERO);
    }

    #[test]
    fn serialization_math() {
        // 1 Mbps, 125 bytes = 1000 bits = 1 ms.
        let l = LinkConfig::default().rate_bps(1_000_000);
        assert_eq!(l.serialization(125), Duration::from_millis(1));
        // 8 Gbps, 1000 bytes = 8000 bits = 1 us.
        let l = LinkConfig::default().rate_bps(8_000_000_000);
        assert_eq!(l.serialization(1000), Duration::from_micros(1));
    }

    #[test]
    fn loss_is_clamped() {
        assert_eq!(LinkConfig::default().loss(1.7).loss, 1.0);
        assert_eq!(LinkConfig::default().loss(-0.5).loss, 0.0);
    }

    #[test]
    fn builders_compose() {
        let l = LinkConfig::with_delay(Duration::from_millis(100))
            .jitter(Duration::from_millis(5))
            .rate_bps(10_000_000)
            .mtu(1200)
            .loss(0.01);
        assert_eq!(l.delay, Duration::from_millis(100));
        assert_eq!(l.jitter, Duration::from_millis(5));
        assert_eq!(l.rate_bps, 10_000_000);
        assert_eq!(l.mtu, 1200);
        assert!((l.loss - 0.01).abs() < 1e-12);
    }
}
