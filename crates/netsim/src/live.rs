//! Live bridge: run simulator [`Node`]s against **real io** instead of a
//! virtual world.
//!
//! Every protocol node in this workspace is a sans-io state machine driven
//! through [`Node::on_datagram`] / [`Node::on_timer`] and a
//! [`Ctx`](crate::Ctx). The
//! simulator supplies that world virtually; this module supplies it from
//! the wall clock and real sockets, reusing the shard plumbing the
//! parallel simulator added: a [`LiveSim`] is a single simulator shard
//! whose *remote* peers are foreign node slots owned by a shard that does
//! not exist locally. Sends to a remote therefore park in the cross-shard
//! outbox instead of being delivered — the io driver drains them to a UDP
//! socket — and datagrams read from a socket are injected as cross-shard
//! arrivals. Timers ride the ordinary timing wheel, fired by advancing the
//! clock to wall time with [`LiveSim::run_until`].
//!
//! The upshot: `moqdns-relayd` runs the *same* `RelayNode` / `AuthServer`
//! types that every simulated invariant was proven on — byte-identical
//! state machines, only the io layer swapped. The mapping contract is:
//!
//! * [`SimTime`] is nanoseconds since an epoch the driver chooses (process
//!   start); the driver calls [`LiveSim::run_until`] with "now" before
//!   touching nodes so `ctx.now()` tracks the wall clock;
//! * one foreign [`NodeId`] per remote socket address, allocated with
//!   [`LiveSim::add_remote`]; the driver owns the `NodeId ↔ SocketAddr`
//!   table (the sim deals only in node ids);
//! * local links default to zero delay/loss — real latency comes from the
//!   real network, not a model.

use crate::link::LinkConfig;
use crate::node::{Addr, Node, NodeId};
use crate::sim::{CrossMsg, Simulator};
use crate::time::SimTime;
use moqdns_wire::Payload;
use std::time::Duration;

/// The shard id assigned to remote (foreign) slots. Any value other than
/// the local shard's 0 works: it only has to make `transmit` classify the
/// destination as non-local so the datagram parks in the outbox.
const REMOTE_SHARD: u16 = 1;

/// A datagram leaving the local nodes for a remote peer, drained via
/// [`LiveSim::take_outbound`]. The driver maps `to.node` back to a real
/// socket address and writes `payload` to the wire.
#[derive(Debug, Clone)]
pub struct OutboundDatagram {
    /// Local source (node + virtual port).
    pub from: Addr,
    /// Remote destination (a [`LiveSim::add_remote`] id + virtual port).
    pub to: Addr,
    /// The bytes to put on the wire (shared handle; zero-copy).
    pub payload: Payload,
}

/// A single-shard simulator bridged to real io.
///
/// Hosts any number of local [`Node`]s (usually one: the daemon) plus
/// foreign slots standing in for remote socket addresses. See the module
/// docs for the driver contract.
pub struct LiveSim {
    sim: Simulator,
    /// Total slots handed out (local + remote), mirroring the sim's node
    /// table so remote ids can be computed without touching private state.
    slots: u32,
    /// Uniquifier for injected-event scheduler keys.
    inject_seq: u32,
}

impl LiveSim {
    /// Creates an empty live bridge. `seed` feeds the embedded RNG (used
    /// only if a node asks for randomness; io order comes from the wire).
    pub fn new(seed: u64) -> LiveSim {
        let mut sim = Simulator::new(seed);
        // Local hops are free: the wire supplies the real delay.
        sim.set_default_link(LinkConfig::with_delay(Duration::ZERO));
        LiveSim {
            sim,
            slots: 0,
            inject_seq: 0,
        }
    }

    /// Adds a local protocol node (owned shard 0, dispatched in-process).
    pub fn add_node(&mut self, name: impl Into<String>, node: Box<dyn Node>) -> NodeId {
        let id = self.sim.add_node(name, node);
        self.sim.push_owner(0);
        self.slots += 1;
        id
    }

    /// Allocates a remote slot: a node id owned by a shard that is not
    /// running here, so local sends to it park in the outbox instead of
    /// dispatching. One per remote socket address.
    pub fn add_remote(&mut self) -> NodeId {
        self.sim.add_foreign_slot();
        self.sim.push_owner(REMOTE_SHARD);
        let id = NodeId::from_index(self.slots as usize);
        self.slots += 1;
        id
    }

    /// Current bridge time (nanoseconds since the driver's epoch).
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// When the next scheduled event (timer, queued local delivery) fires,
    /// if any — the driver derives its socket read timeout from this.
    pub fn next_event_at(&mut self) -> Option<SimTime> {
        self.sim.next_event_at()
    }

    /// Advances the clock to `now`, firing every timer and local delivery
    /// scheduled up to then. Returns the number of events executed.
    pub fn run_until(&mut self, now: SimTime) -> u64 {
        self.sim.run_until(now)
    }

    /// Injects a datagram received from the wire, delivered to `to.node`
    /// at the current clock (the driver should [`LiveSim::run_until`] the
    /// wall time first, then inject, then run again).
    pub fn inject(&mut self, from: Addr, to: Addr, payload: Payload) {
        let arrival = self.sim.now();
        // Key shape mirrors the scheduler contract ((time, source, seq));
        // remote sources never schedule locally, so a bridge-owned seq
        // cannot collide with node-composed keys.
        let seq = self.inject_seq;
        self.inject_seq = self.inject_seq.wrapping_add(1);
        let key = ((arrival.as_nanos() as u128) << 64)
            | ((from.node.index() as u128) << 32)
            | seq as u128;
        self.sim.inject(CrossMsg {
            from,
            to,
            payload,
            arrival,
            key,
        });
    }

    /// Drains every datagram local nodes sent toward remote slots since
    /// the last call. The driver writes these to the real socket(s).
    pub fn take_outbound(&mut self) -> Vec<OutboundDatagram> {
        let mut out = Vec::new();
        self.take_outbound_into(&mut out);
        out
    }

    /// Like [`LiveSim::take_outbound`], but appends into a caller-owned
    /// vector so a hot io loop can reuse one allocation per burst.
    /// Returns the number of datagrams appended.
    pub fn take_outbound_into(&mut self, out: &mut Vec<OutboundDatagram>) -> usize {
        let before = out.len();
        out.extend(self.sim.drain_outbox().map(|m| OutboundDatagram {
            from: m.from,
            to: m.to,
            payload: m.payload,
        }));
        out.len() - before
    }

    /// Direct access to a local node (see [`Simulator::with_node`]): call
    /// verbs on the daemon between io events. Advance the clock with
    /// [`LiveSim::run_until`] first so `ctx.now()` is current.
    pub fn with_node<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut crate::node::Ctx<'_>) -> R,
    ) -> R {
        self.sim.with_node(id, f)
    }

    /// Immutable access to a local node's concrete state.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        self.sim.node_ref(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Ctx;
    use std::any::Any;

    /// Echoes every datagram back to its sender and counts timer fires.
    struct Echo {
        timer_fires: u32,
        heard: Vec<(Addr, Payload)>,
    }

    impl Node for Echo {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Payload) {
            self.heard.push((from, payload.clone()));
            ctx.send(to_port, from, payload);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {
            self.timer_fires += 1;
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn remote_sends_park_in_outbound() {
        let mut live = LiveSim::new(1);
        let echo = live.add_node(
            "echo",
            Box::new(Echo {
                timer_fires: 0,
                heard: Vec::new(),
            }),
        );
        let remote = live.add_remote();
        live.run_until(SimTime::from_millis(1));

        // A wire datagram arrives from the remote; the echo's reply must
        // surface in the outbound queue instead of dispatching locally.
        live.inject(
            Addr::new(remote, 7),
            Addr::new(echo, 7),
            Payload::from(&b"ping"[..]),
        );
        live.run_until(SimTime::from_millis(2));
        let out = live.take_outbound();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to.node, remote);
        assert_eq!(&out[0].payload[..], b"ping");
        assert_eq!(live.node_ref::<Echo>(echo).heard.len(), 1);
    }

    #[test]
    fn timers_fire_as_the_clock_advances() {
        let mut live = LiveSim::new(2);
        let echo = live.add_node(
            "echo",
            Box::new(Echo {
                timer_fires: 0,
                heard: Vec::new(),
            }),
        );
        live.run_until(SimTime::from_millis(1));
        live.with_node::<Echo, _>(echo, |_, ctx| {
            ctx.set_timer(Duration::from_millis(5), 42);
        });
        let next = live.next_event_at().expect("timer scheduled");
        assert_eq!(next, SimTime::from_millis(6));
        live.run_until(SimTime::from_millis(4));
        assert_eq!(live.node_ref::<Echo>(echo).timer_fires, 0);
        live.run_until(SimTime::from_millis(10));
        assert_eq!(live.node_ref::<Echo>(echo).timer_fires, 1);
    }

    #[test]
    fn remote_ids_are_dense_with_local_ids() {
        let mut live = LiveSim::new(3);
        let a = live.add_node(
            "a",
            Box::new(Echo {
                timer_fires: 0,
                heard: Vec::new(),
            }),
        );
        let r1 = live.add_remote();
        let r2 = live.add_remote();
        assert_eq!(a.index(), 0);
        assert_eq!(r1.index(), 1);
        assert_eq!(r2.index(), 2);
    }
}
