//! Node trait, addressing, and the per-event context handle.

use crate::sim::SimCore;
use crate::time::SimTime;
use moqdns_wire::Payload;
use std::any::Any;
use std::fmt;
use std::time::Duration;

/// Identifier of a node in the simulation (index into the node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a `NodeId` from its raw index. Ids are dense indices handed
    /// out by [`Simulator::add_node`](crate::Simulator::add_node); this
    /// exists so higher layers can derive ids from synthetic IP addresses.
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A network address: node plus a 16-bit port.
///
/// Ports let one node host several independent endpoints (e.g. a resolver
/// that speaks classic DNS on port 53 and MoQT-over-QUIC on port 853).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// Destination node.
    pub node: NodeId,
    /// Port on that node.
    pub port: u16,
}

impl Addr {
    /// Convenience constructor.
    pub fn new(node: NodeId, port: u16) -> Addr {
        Addr { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:{}", self.node.0, self.port)
    }
}

/// A simulated host. Implementations are event-driven state machines.
///
/// The simulator owns the node and calls it back with datagrams and timers;
/// the node reacts through the supplied [`Ctx`]. Nodes must also expose
/// themselves as `Any` so experiments can reach their concrete state between
/// or after events (see [`Simulator::with_node`](crate::Simulator::with_node)),
/// and be `Send` so the parallel simulator can run a region's nodes on a
/// worker thread.
pub trait Node: Any + Send {
    /// Called once when the simulation starts running.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A datagram arrived, addressed to `to_port` on this node. The
    /// payload is a shared handle ([`Payload`]) — when one send fans out
    /// to several receivers, every receiver sees the same backing bytes
    /// with zero per-receiver copies. Parse in place; `to_vec` only when
    /// an owned buffer is genuinely required.
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Payload);

    /// A timer armed via [`Ctx::set_timer`] fired. `token` is the caller's
    /// value; spurious wakeups after re-arming are possible and must be
    /// tolerated (check your own deadlines — the sans-io idiom).
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Upcast for experiment access to concrete node state.
    fn as_any(&mut self) -> &mut dyn Any;
    /// Shared upcast.
    fn as_any_ref(&self) -> &dyn Any;
}

/// Handle given to a node while it processes an event.
///
/// All interaction with the world goes through this: sending datagrams,
/// arming timers, reading the clock, drawing randomness.
pub struct Ctx<'a> {
    pub(crate) core: &'a mut SimCore,
    pub(crate) node: NodeId,
}

impl<'a> Ctx<'a> {
    /// The node this context belongs to.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Sends a datagram from `from_port` on this node to `to`.
    ///
    /// Delivery (or loss) is governed by the link configuration between the
    /// two nodes; see [`LinkConfig`](crate::LinkConfig). Accepts anything
    /// convertible into a [`Payload`]; passing a `Payload` (e.g. one that
    /// arrived via [`Node::on_datagram`] or came out of an encode pool)
    /// forwards the bytes without copying them.
    pub fn send(&mut self, from_port: u16, to: Addr, payload: impl Into<Payload>) {
        let from = Addr::new(self.node, from_port);
        self.core.transmit(from, to, payload.into());
    }

    /// Arms a timer to fire on this node after `after`, delivering `token`
    /// to [`Node::on_timer`]. Returns an id usable with [`Ctx::cancel_timer`].
    pub fn set_timer(&mut self, after: Duration, token: u64) -> u64 {
        self.core.set_timer(self.node, after, token)
    }

    /// Cancels a previously armed timer. Cancelling an already-fired timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, timer_id: u64) {
        self.core.cancel_timer(timer_id);
    }

    /// Draws a uniformly distributed `u64` from the simulation RNG.
    pub fn random_u64(&mut self) -> u64 {
        self.core.random_u64()
    }

    /// Draws a uniform float in `[0, 1)` from the simulation RNG.
    pub fn random_f64(&mut self) -> f64 {
        self.core.random_f64()
    }

    /// Records a trace line attributed to this node (no-op unless tracing
    /// was enabled on the simulator).
    pub fn trace(&mut self, msg: impl Into<String>) {
        let node = self.node;
        self.core.trace(node, msg.into());
    }
}
