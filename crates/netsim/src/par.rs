//! Parallel, shard-per-region simulation with conservative lookahead.
//!
//! [`ParSim`] runs one [`Simulator`] *shard* per worker: each shard owns
//! its region's nodes, links, seeded RNG, and timing wheel, and runs on
//! its own thread inside each synchronization window.
//!
//! ## Lookahead / barrier determinism contract
//!
//! The synchronization is classic conservative (Chandy–Misra style)
//! parallel discrete-event simulation, with barriers instead of null
//! messages:
//!
//! * The **lookahead bound** `L` is the minimum propagation delay over
//!   all cross-shard links (tracked as links are registered; every
//!   cross-shard link must have positive delay). A datagram sent at time
//!   `t` toward another shard cannot arrive before `t + L`.
//! * Time advances in **windows** `[T, T + L)`: every shard executes all
//!   of its events strictly before the window end *without any
//!   communication* — safe, because no event another shard executes in
//!   the same window can affect it earlier than `T + L`.
//! * At the **barrier** ending a window, shards exchange the datagrams
//!   parked in their outboxes; each is injected into the destination
//!   shard's wheel carrying the key its *sender* composed —
//!   `(schedule-time, source node, per-source seq)` — so it sorts exactly
//!   where a single global scheduler would have placed it (see the `sim`
//!   module docs for the key contract next to the timing-wheel contract).
//! * A `run_until(deadline)` finishes with one inclusive pass over the
//!   events *at* the deadline plus a final exchange; cross-shard sends
//!   made at the deadline arrive strictly later (delay ≥ L > 0) and wait
//!   for the next call.
//!
//! Because the scheduler key is a pure function of each source's local
//! history (never of global execution order), the merged event history
//! of a sharded run is **bit-identical** to the single-threaded run of
//! the same world: per-node delivery traces, times, and payload bytes
//! all match. The tests below pin this on delivery traces and digests;
//! the parity tests in `moqdns-bench` pin it end-to-end on the standing
//! multi-region worlds (digests and gate metrics) for 1, 2, and N
//! workers.

use crate::link::LinkConfig;
use crate::node::{Ctx, Node, NodeId};
use crate::sim::Simulator;
use crate::stats::{TrafficStats, TrafficStatsMut};
use crate::time::SimTime;
use std::time::Duration;

/// A parallel simulator: one shard (worker) per region, synchronized at
/// conservative-lookahead barriers. The API mirrors [`Simulator`] except
/// that node creation names the owning shard.
pub struct ParSim {
    shards: Vec<Simulator>,
    /// Global node id → owning shard.
    owner: Vec<u16>,
    /// Global node names (shard-local tables only name their own nodes).
    names: Vec<String>,
    /// Minimum cross-shard link delay registered so far.
    lookahead: Duration,
    now: SimTime,
}

impl ParSim {
    /// Creates a parallel simulator with `workers` shards. Shard 0 uses
    /// `seed` verbatim (a 1-worker `ParSim` replays the exact event
    /// stream of `Simulator::new(seed)`); further shards derive their
    /// own independent streams from it.
    pub fn new(seed: u64, workers: usize) -> ParSim {
        assert!(workers >= 1, "need at least one worker");
        assert!(workers <= u16::MAX as usize, "shard index is 16 bits");
        let shards = (0..workers)
            .map(|i| {
                let shard_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut shard = Simulator::new_shard(shard_seed, i as u16);
                // Per-link loss/jitter draws use the *base* seed on every
                // shard: link randomness is a function of the world, not
                // of which shard happens to run the transmit.
                shard.set_link_seed(seed);
                shard
            })
            .collect();
        ParSim {
            shards,
            owner: Vec::new(),
            names: Vec::new(),
            lookahead: Duration::MAX,
            now: SimTime::ZERO,
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Adds a node owned by `shard`; its `on_start` runs at the current
    /// simulation time when that shard's event loop next executes.
    pub fn add_node(
        &mut self,
        shard: usize,
        name: impl Into<String>,
        node: Box<dyn Node>,
    ) -> NodeId {
        assert!(shard < self.shards.len(), "no such shard: {shard}");
        let name = name.into();
        let id = NodeId::from_index(self.names.len());
        let mut node = Some(node);
        for (si, sim) in self.shards.iter_mut().enumerate() {
            if si == shard {
                let got = sim.add_node(name.clone(), node.take().unwrap());
                debug_assert_eq!(got, id, "shard node tables out of lockstep");
            } else {
                sim.add_foreign_slot();
            }
            sim.push_owner(shard as u16);
        }
        self.owner.push(shard as u16);
        self.names.push(name);
        id
    }

    /// The shard owning `id`.
    pub fn owner_of(&self, id: NodeId) -> usize {
        self.owner[id.index()] as usize
    }

    /// Human-readable node name (for traces and experiment output).
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Sets the link configuration used for pairs without an override
    /// (applied to every shard).
    pub fn set_default_link(&mut self, cfg: LinkConfig) {
        for s in &mut self.shards {
            s.set_default_link(cfg);
        }
    }

    /// Sets the directed link `src -> dst` (stored on the shard owning
    /// `src`, which runs the transmit). A cross-shard link's delay feeds
    /// the lookahead bound and must be positive.
    pub fn set_link_directed(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        let so = self.owner[src.index()];
        let dst_shard = self.owner[dst.index()];
        if so != dst_shard {
            assert!(
                cfg.delay > Duration::ZERO,
                "cross-shard link {src} -> {dst} needs positive delay: \
                 the lookahead bound is the minimum cross-shard latency"
            );
            self.lookahead = self.lookahead.min(cfg.delay);
        }
        self.shards[so as usize].set_link_directed(src, dst, cfg);
    }

    /// Sets both directions between `a` and `b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.set_link_directed(a, b, cfg);
        self.set_link_directed(b, a, cfg);
    }

    /// Current simulated time (the barrier front; every shard has
    /// executed everything before it).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently scheduled across all shards.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.pending_events()).sum()
    }

    /// Traffic counters merged across shards.
    pub fn stats(&self) -> TrafficStats<'_> {
        TrafficStats {
            cores: self.shards.iter().map(|s| s.core_ref()).collect(),
        }
    }

    /// Mutable traffic counters (e.g. to reset after warm-up).
    pub fn stats_mut(&mut self) -> TrafficStatsMut<'_> {
        TrafficStatsMut {
            cores: self.shards.iter_mut().map(|s| s.core_mut()).collect(),
        }
    }

    /// Enables the order-independent delivery digest on every shard.
    pub fn enable_delivery_digest(&mut self) {
        for s in &mut self.shards {
            s.enable_delivery_digest();
        }
    }

    /// The combined delivery digest: the wrapping sum over all shards,
    /// i.e. over all deliveries — directly comparable to a
    /// single-threaded [`Simulator::delivery_digest`] of the same world.
    pub fn delivery_digest(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.delivery_digest()))
    }

    /// Runs `f` with mutable access to the concrete node `T` at `id`
    /// (routed to its owning shard) plus a [`Ctx`]. Datagrams the call
    /// sends toward other shards are exchanged immediately afterwards.
    pub fn with_node<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let s = self.owner[id.index()] as usize;
        let r = self.shards[s].with_node(id, f);
        self.exchange();
        r
    }

    /// Immutable access to the concrete node `T` at `id`.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        self.shards[self.owner[id.index()] as usize].node_ref(id)
    }

    /// Runs events until `deadline`, advancing in lookahead windows with
    /// barrier exchanges, one worker thread per shard per window (shards
    /// with nothing to do in a window skip the thread). Returns the
    /// number of events executed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        assert!(deadline >= self.now, "deadline is in the past");
        let mut total = 0;

        if self.shards.len() == 1 {
            // Degenerate parallel run: the single shard needs no windows
            // (and no lookahead), making it the exact event stream of a
            // single-threaded run — the anchor of the parity tests.
            total += self.shards[0].run_until(deadline);
            self.now = deadline;
            self.exchange();
            return total;
        }

        let lookahead = self.lookahead;
        assert!(
            lookahead > Duration::ZERO && lookahead < Duration::MAX,
            "parallel run requires a registered cross-shard link (its \
             minimum delay is the lookahead bound)"
        );

        while self.now < deadline {
            let end = (self.now + lookahead).min(deadline);
            total += self.run_shards_window(end);
            self.now = end;
            self.exchange();
        }

        // Inclusive tail: events exactly at the deadline (the windows
        // above are half-open). Any cross-shard sends they make arrive
        // at ≥ deadline + L and wait in the destination wheel.
        let mut counts = vec![0u64; self.shards.len()];
        std::thread::scope(|scope| {
            for (sim, cnt) in self.shards.iter_mut().zip(counts.iter_mut()) {
                if sim.has_event_at_or_before(deadline) {
                    scope.spawn(move || *cnt = sim.run_until(deadline));
                } else {
                    sim.run_until(deadline); // just advances the clock
                }
            }
        });
        total += counts.iter().sum::<u64>();
        self.exchange();
        total
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: Duration) -> u64 {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    /// One half-open window `[now, end)`: every shard with work runs on
    /// its own thread; idle shards just advance their clocks.
    fn run_shards_window(&mut self, end: SimTime) -> u64 {
        let mut counts = vec![0u64; self.shards.len()];
        std::thread::scope(|scope| {
            for (sim, cnt) in self.shards.iter_mut().zip(counts.iter_mut()) {
                if sim.has_event_before(end) {
                    scope.spawn(move || *cnt = sim.run_window(end));
                } else {
                    sim.run_window(end); // just advances the clock
                }
            }
        });
        counts.iter().sum()
    }

    /// Barrier exchange: drain every shard's outbox, then inject each
    /// datagram into its destination shard's wheel. Injection order is
    /// irrelevant — the sender-composed keys are globally unique and the
    /// wheel orders purely by `(at, key)`.
    fn exchange(&mut self) {
        let mut all = Vec::new();
        for sim in &mut self.shards {
            let mut box_ = sim.take_outbox();
            all.append(&mut box_);
        }
        for msg in all {
            let dest = self.owner[msg.to.node.index()] as usize;
            self.shards[dest].inject(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Addr;
    use moqdns_wire::Payload;
    use std::any::Any;

    /// Ping-pong node: replies to every datagram, records arrival times.
    struct Pinger {
        peer: Option<Addr>,
        serve: bool,
        heard: Vec<(SimTime, Addr, usize)>,
        rounds: u32,
    }

    impl Pinger {
        fn client(peer: Addr, rounds: u32) -> Box<Pinger> {
            Box::new(Pinger {
                peer: Some(peer),
                serve: false,
                heard: Vec::new(),
                rounds,
            })
        }
        fn server() -> Box<Pinger> {
            Box::new(Pinger {
                peer: None,
                serve: true,
                heard: Vec::new(),
                rounds: 0,
            })
        }
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(peer) = self.peer {
                ctx.send(1, peer, vec![self.rounds as u8]);
            }
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _port: u16, p: Payload) {
            self.heard.push((ctx.now(), from, p.len()));
            if self.serve {
                ctx.send(1, from, p); // echo
            } else if self.rounds > 1 {
                self.rounds -= 1;
                ctx.send(1, from, vec![self.rounds as u8]);
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    /// Builds the same 2-region world single-threaded and sharded:
    /// a server per region, clients in each region ping the *other*
    /// region's server across a 10 ms link.
    fn trace_single(regions: usize, clients: usize, horizon: SimTime) -> (Vec<Vec<SimTime>>, u64) {
        let mut sim = Simulator::new(42);
        sim.enable_delivery_digest();
        let link = LinkConfig::with_delay(Duration::from_millis(10));
        let servers: Vec<NodeId> = (0..regions)
            .map(|r| sim.add_node(format!("srv{r}"), Pinger::server()))
            .collect();
        let mut cl = Vec::new();
        for r in 0..regions {
            for c in 0..clients {
                let target = Addr::new(servers[(r + 1) % regions], 1);
                let id = sim.add_node(format!("cl{r}-{c}"), Pinger::client(target, 3));
                sim.set_link(id, servers[(r + 1) % regions], link);
                cl.push(id);
            }
        }
        sim.run_until(horizon);
        let traces = cl
            .iter()
            .map(|&c| {
                sim.node_ref::<Pinger>(c)
                    .heard
                    .iter()
                    .map(|(t, ..)| *t)
                    .collect()
            })
            .collect();
        (traces, sim.delivery_digest())
    }

    fn trace_par(
        regions: usize,
        clients: usize,
        workers: usize,
        horizon: SimTime,
    ) -> (Vec<Vec<SimTime>>, u64) {
        let mut sim = ParSim::new(42, workers);
        sim.enable_delivery_digest();
        let link = LinkConfig::with_delay(Duration::from_millis(10));
        let servers: Vec<NodeId> = (0..regions)
            .map(|r| sim.add_node(r % workers, format!("srv{r}"), Pinger::server()))
            .collect();
        let mut cl = Vec::new();
        for r in 0..regions {
            for c in 0..clients {
                let target = Addr::new(servers[(r + 1) % regions], 1);
                let id = sim.add_node(r % workers, format!("cl{r}-{c}"), Pinger::client(target, 3));
                sim.set_link(id, servers[(r + 1) % regions], link);
                cl.push(id);
            }
        }
        sim.run_until(horizon);
        let traces = cl
            .iter()
            .map(|&c| {
                sim.node_ref::<Pinger>(c)
                    .heard
                    .iter()
                    .map(|(t, ..)| *t)
                    .collect()
            })
            .collect();
        (traces, sim.delivery_digest())
    }

    #[test]
    fn parallel_matches_single_threaded_traces() {
        let horizon = SimTime::from_secs(2);
        let single = trace_single(4, 3, horizon);
        for workers in [1, 2, 4] {
            let par = trace_par(4, 3, workers, horizon);
            assert_eq!(single.0, par.0, "delivery traces diverged at W={workers}");
            assert_eq!(single.1, par.1, "digest diverged at W={workers}");
        }
    }

    #[test]
    fn one_worker_is_bit_identical() {
        // W=1 takes the degenerate path: no windows, exact event stream.
        let horizon = SimTime::from_secs(1);
        assert_eq!(trace_single(2, 2, horizon), trace_par(2, 2, 1, horizon));
    }

    #[test]
    fn stats_merge_across_shards() {
        let horizon = SimTime::from_secs(1);
        let build = |workers: usize| {
            let mut sim = ParSim::new(7, workers);
            let link = LinkConfig::with_delay(Duration::from_millis(10));
            let srv = sim.add_node(0, "srv", Pinger::server());
            let cl = sim.add_node(workers - 1, "cl", Pinger::client(Addr::new(srv, 1), 2));
            sim.set_link(cl, srv, link);
            sim.run_until(horizon);
            (sim, srv, cl)
        };
        let (par, srv, cl) = build(2);
        let (single, srv1, cl1) = build(1);
        let p = par.stats().between(cl, srv);
        let s = single.stats().between(cl1, srv1);
        assert_eq!(p, s, "cross-shard pair stats must merge to the single view");
        assert!(p.delivered >= 2);
        assert_eq!(
            par.stats().total_datagrams(),
            single.stats().total_datagrams()
        );
    }

    #[test]
    fn cross_shard_timers_and_with_node_flush() {
        // with_node on a sharded sim must flush cross-shard sends made
        // during the call so they are not stranded in an outbox.
        let mut sim = ParSim::new(1, 2);
        let link = LinkConfig::with_delay(Duration::from_millis(20));
        let srv = sim.add_node(0, "srv", Pinger::server());
        let cl = sim.add_node(1, "cl", Pinger::client(Addr::new(srv, 1), 1));
        sim.set_link(cl, srv, link);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.node_ref::<Pinger>(cl).heard.len(), 1);

        sim.with_node::<Pinger, _>(cl, |_, ctx| {
            ctx.send(1, Addr::new(srv, 1), vec![9]);
        });
        sim.run_for(Duration::from_millis(100));
        assert_eq!(sim.node_ref::<Pinger>(srv).heard.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive delay")]
    fn zero_delay_cross_shard_link_is_rejected() {
        let mut sim = ParSim::new(1, 2);
        let a = sim.add_node(0, "a", Pinger::server());
        let b = sim.add_node(1, "b", Pinger::server());
        sim.set_link(a, b, LinkConfig::instant());
    }
}
