//! The event scheduler: a hierarchical bucketed timing wheel.
//!
//! The simulator used to keep every pending event in one global
//! `BinaryHeap`, paying `O(log n)` per push/pop with `n` spanning *all*
//! outstanding events — at metro scale that heap holds tens of thousands
//! of keep-alive timers that sit between every pair of back-to-back
//! datagram deliveries. The wheel splits the timeline instead:
//!
//! * **near-term buckets** — a power-of-two ring of [`WHEEL_BUCKETS`]
//!   buckets, each covering a quantum of `1 << WHEEL_SHIFT` nanoseconds
//!   (~1 ms). Events inside the wheel's window are pushed onto their
//!   bucket in O(1);
//! * **an active-quantum heap** — the bucket currently being drained
//!   lives in a tiny `BinaryHeap` ordered by `(at, seq)`, so events that
//!   land *in the quantum being executed* (e.g. an instant-link reply)
//!   still interleave exactly where a global heap would put them;
//! * **an overflow heap** — events beyond the window (idle timeouts,
//!   keep-alives, probes) wait in a conventional heap and migrate into
//!   buckets as the window advances past them.
//!
//! ## Determinism contract
//!
//! Pop order is **exactly** ascending `(at, seq)` — bit-identical to the
//! global binary heap it replaced. `seq` is the caller's composed
//! tiebreaker (ascending within one scheduling source, unique across
//! sources), so ties at one instant fire in composed-key order. The
//! property test below drives a wheel and a reference heap through
//! randomized interleaved push/pop schedules and asserts identical
//! sequences; the committed CI scenario baselines pin the same contract
//! end-to-end (identical event order ⇒ identical traffic counts).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the bucket quantum in nanoseconds (~1.05 ms).
const WHEEL_SHIFT: u32 = 20;
/// Buckets in the ring; the window spans `BUCKETS << SHIFT` ns (~274 ms).
const WHEEL_BUCKETS: usize = 256;

/// One scheduled entry: fire time, FIFO tiebreaker, payload.
///
/// `seq` is 128 bits so the simulator can compose it from
/// `(schedule-time, source, per-source seq)`: a pure function of the
/// scheduling source's own history, so a parallel run composes exactly
/// the keys a single-threaded run would — ties at one instant order by
/// when they were scheduled, then by which node scheduled them, with one
/// source's events keeping FIFO order (see the `sim` module docs).
pub(crate) struct Entry<T> {
    /// Absolute fire time.
    pub at: SimTime,
    /// Composed tiebreaker; ties at `at` fire in `seq` order.
    pub seq: u128,
    /// The scheduled payload.
    pub item: T,
}

// Order by (at, seq) only — the payload does not participate.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A bucketed timing wheel with an overflow heap. See the module docs
/// for the layout and the determinism contract.
pub(crate) struct TimingWheel<T> {
    /// Ring of near-term buckets, indexed by `quantum & (BUCKETS - 1)`.
    buckets: Vec<Vec<Entry<T>>>,
    /// Quantum index currently being drained; bucket contents for it live
    /// in `current`. Only quanta in `(active, active + BUCKETS)` may hold
    /// ring entries.
    active_quantum: u64,
    /// Events of the active quantum, ordered by `(at, seq)`.
    current: BinaryHeap<Reverse<Entry<T>>>,
    /// Events beyond the wheel window.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    len: usize,
}

fn quantum_of(at: SimTime) -> u64 {
    at.as_nanos() >> WHEEL_SHIFT
}

impl<T> TimingWheel<T> {
    pub fn new() -> TimingWheel<T> {
        TimingWheel {
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            active_quantum: 0,
            current: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Schedules an entry. `at` must be `>=` the time of the last popped
    /// entry (the simulator never schedules into the past) and `seq`
    /// strictly greater than any previously pushed.
    pub fn push(&mut self, at: SimTime, seq: u128, item: T) {
        let q = quantum_of(at);
        let e = Entry { at, seq, item };
        self.len += 1;
        if q <= self.active_quantum {
            self.current.push(Reverse(e));
        } else if q < self.active_quantum + WHEEL_BUCKETS as u64 {
            self.buckets[(q as usize) & (WHEEL_BUCKETS - 1)].push(e);
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    /// The fire time of the next entry, advancing the wheel's internal
    /// cursor to it if necessary (no entry is consumed).
    pub fn next_at(&mut self) -> Option<SimTime> {
        self.ensure_current();
        self.current.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the earliest entry by `(at, seq)`.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        self.ensure_current();
        let Reverse(e) = self.current.pop()?;
        self.len -= 1;
        Some(e)
    }

    /// Loads the next non-empty quantum into `current` when the active
    /// one is drained: scans the ring window for the nearest occupied
    /// bucket, takes the overflow head into account, and migrates
    /// overflow entries that now fall inside the (re-anchored) window.
    fn ensure_current(&mut self) {
        if !self.current.is_empty() || self.len == 0 {
            return;
        }
        // Nearest occupied bucket strictly after the active quantum.
        let mut next_bucket: Option<u64> = None;
        for dq in 1..WHEEL_BUCKETS as u64 {
            let q = self.active_quantum + dq;
            if !self.buckets[(q as usize) & (WHEEL_BUCKETS - 1)].is_empty() {
                next_bucket = Some(q);
                break;
            }
        }
        let next_overflow = self.overflow.peek().map(|Reverse(e)| quantum_of(e.at));
        let q = match (next_bucket, next_overflow) {
            (Some(b), Some(o)) => b.min(o),
            (Some(b), None) => b,
            (None, Some(o)) => o,
            (None, None) => unreachable!("len > 0 but no bucket or overflow entry"),
        };
        self.active_quantum = q;
        // The bucket for q (if the jump stayed within the old window).
        for e in std::mem::take(&mut self.buckets[(q as usize) & (WHEEL_BUCKETS - 1)]) {
            debug_assert_eq!(quantum_of(e.at), q, "bucket held a foreign quantum");
            self.current.push(Reverse(e));
        }
        // Re-window the overflow heap: everything now inside the window
        // moves to its bucket (or straight into `current` for quantum q).
        while let Some(Reverse(e)) = self.overflow.peek() {
            let eq = quantum_of(e.at);
            if eq >= q + WHEEL_BUCKETS as u64 {
                break;
            }
            let Reverse(e) = self.overflow.pop().unwrap();
            if eq == q {
                self.current.push(Reverse(e));
            } else {
                self.buckets[(eq as usize) & (WHEEL_BUCKETS - 1)].push(e);
            }
        }
        debug_assert!(!self.current.is_empty(), "advanced to an empty quantum");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::time::Duration;

    /// Reference model: the global `(at, seq)` binary heap the wheel
    /// replaced.
    struct HeapModel {
        heap: BinaryHeap<Reverse<Entry<u128>>>,
    }

    impl HeapModel {
        fn new() -> HeapModel {
            HeapModel {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, at: SimTime, seq: u128) {
            self.heap.push(Reverse(Entry { at, seq, item: seq }));
        }
        fn pop(&mut self) -> Option<(SimTime, u128)> {
            self.heap.pop().map(|Reverse(e)| (e.at, e.seq))
        }
    }

    #[test]
    fn drains_in_at_seq_order() {
        let mut w = TimingWheel::new();
        // Same instant: FIFO by seq. Different instants: by time, even
        // when pushed out of order and far apart (bucket vs overflow).
        w.push(SimTime::from_millis(500), 0, "far");
        w.push(SimTime::from_millis(1), 1, "near-a");
        w.push(SimTime::from_millis(1), 2, "near-b");
        w.push(SimTime::from_secs(30), 3, "overflow");
        w.push(SimTime::ZERO, 4, "now");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|e| e.item)).collect();
        assert_eq!(order, ["now", "near-a", "near-b", "far", "overflow"]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn same_quantum_pushes_during_drain_interleave() {
        // An event executing at time t may schedule new events at t (an
        // instant link): they must fire after already-queued events at t
        // (higher seq) but before anything later.
        let mut w = TimingWheel::new();
        w.push(SimTime::from_nanos(10), 0, 0u64);
        w.push(SimTime::from_nanos(10), 1, 1u64);
        assert_eq!(w.pop().unwrap().item, 0);
        w.push(SimTime::from_nanos(10), 2, 2u64); // "reply" at the same t
        w.push(SimTime::from_nanos(11), 3, 3u64);
        let order: Vec<u64> = std::iter::from_fn(|| w.pop().map(|e| e.item)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn next_at_does_not_consume() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_secs(2), 0, ());
        assert_eq!(w.next_at(), Some(SimTime::from_secs(2)));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop().unwrap().at, SimTime::from_secs(2));
        assert_eq!(w.next_at(), None);
    }

    proptest! {
        /// The wheel and the reference heap pop identical `(at, seq)`
        /// sequences under randomized interleaved pushes and pops,
        /// including delays that straddle bucket/overflow boundaries.
        #[test]
        fn prop_wheel_matches_global_heap(
            // (delay_ns from current virtual time, pops after each push)
            script in proptest::collection::vec(
                (0u64..3_000_000_000, 0usize..3), 1..200),
        ) {
            let mut wheel = TimingWheel::new();
            let mut model = HeapModel::new();
            let mut now = SimTime::ZERO;
            for (seq, (delay, pops)) in script.into_iter().enumerate() {
                let seq = seq as u128;
                let at = now + Duration::from_nanos(delay);
                wheel.push(at, seq, seq);
                model.push(at, seq);
                for _ in 0..pops {
                    let got = wheel.pop().map(|e| (e.at, e.seq));
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                    if let Some((at, _)) = got {
                        now = at; // the simulator clock follows pops
                    }
                }
            }
            // Drain the rest in lockstep.
            loop {
                let got = wheel.pop().map(|e| (e.at, e.seq));
                let want = model.pop();
                prop_assert_eq!(got, want);
                if got.is_none() { break; }
            }
        }
    }
}
