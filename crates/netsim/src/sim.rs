//! The event loop: scheduler, link emulation, node dispatch.
//!
//! ## Scheduler determinism contract
//!
//! Events execute in strictly ascending `(at, key)` order, where `key` is
//! the composed tiebreaker `(schedule-time, source, per-source seq)`: two
//! events due at the same instant fire in the order their causes ran —
//! first by when they were scheduled, then by the node that scheduled
//! them (the *source*; driver-scheduled closures sort last), then by that
//! source's own scheduling order. The composition is a pure function of
//! each source's local history, never of global execution order — which
//! is exactly what makes a parallel run ([`crate::par::ParSim`])
//! bit-identical to a single-threaded one: any shard can compose the same
//! key the global scheduler would have, without seeing other shards'
//! events. Within one source the key is monotone in push order, so
//! single-source streams keep plain FIFO semantics. The scheduler is a
//! bucketed timing wheel (the crate-internal `sched` module) whose pop
//! order is property-tested against a reference binary heap — identical
//! seeds keep producing identical runs, datagram for datagram.

use crate::link::LinkConfig;
use crate::node::{Addr, Ctx, Node, NodeId};
use crate::sched::TimingWheel;
use crate::stats::{LinkStats, TrafficStats, TrafficStatsMut};
use crate::time::SimTime;
use moqdns_wire::Payload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Duration;

/// SplitMix64 finalizer: a strong, cheap, allocation-free 64-bit mixer.
/// The simulator derives every per-link loss/jitter draw from it (see
/// `SimCore::link_draw`); other deterministic schedules in the
/// workspace (probe-backoff jitter, fault-plan window jitter) reuse it so
/// "random-looking but replayable" always means the same thing.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Sentinel adjacency slot for deliveries whose transmit happened on a
/// different shard (the sender's row is not in this core's tables).
const FOREIGN_SLOT: (u32, u32) = (u32::MAX, u32::MAX);

/// Key-source id for driver-scheduled events ([`Simulator::schedule_at`])
/// — sorts after every node source at the same schedule time.
const DRIVER_SRC: u32 = u32::MAX;

/// What a scheduled event does when it fires.
enum EventKind {
    /// Deliver a datagram to `to.node`. `slot` is the `(row, index)` of
    /// the sender's adjacency entry, recorded at transmit time so the
    /// delivered-side counters need no lookup — or [`FOREIGN_SLOT`] for
    /// cross-shard injections.
    Deliver {
        from: Addr,
        to: Addr,
        payload: Payload,
        slot: (u32, u32),
    },
    /// Fire a timer on a node.
    Timer {
        node: NodeId,
        token: u64,
        timer_id: u64,
    },
    /// Run an arbitrary closure against the whole simulator (used by
    /// experiment scripts: "at t=5s, update the zone").
    Call(Box<dyn FnOnce(&mut Simulator) + Send>),
}

/// One directed out-edge in a node's adjacency table: the link override
/// (if any), the FIFO serialization horizon, and the traffic counters,
/// folded into one entry so a transmit touches exactly one slot.
struct LinkEntry {
    dst: u32,
    /// `None` = fall back to the simulator's default link config (the
    /// default may still be changed after this entry was created).
    cfg: Option<LinkConfig>,
    busy_until: SimTime,
    stats: LinkStats,
    /// Count of loss/jitter draws taken on this directed pair. Each draw
    /// is `splitmix64(link_seed, src, dst, draw_seq)` — a pure function
    /// of the pair's own transmit history, so lossy links are
    /// bit-identical across any sharding (the same anchor as the event
    /// key: source-local history only).
    draw_seq: u64,
}

/// A datagram crossing a shard boundary, parked in the sender's outbox
/// until the next barrier. It carries the key composed by the *sender*
/// (schedule time, source node, per-source seq) so injected events slot
/// into the destination wheel exactly where a global scheduler would have
/// put them.
pub(crate) struct CrossMsg {
    pub(crate) from: Addr,
    pub(crate) to: Addr,
    pub(crate) payload: Payload,
    pub(crate) arrival: SimTime,
    pub(crate) key: u128,
}

/// A generation-tagged timer slot. Slots are reused through a free list;
/// the generation in the timer id keeps a recycled slot from being
/// cancelled (or fired) by a stale handle.
struct TimerSlot {
    gen: u32,
    armed: bool,
}

/// Everything the simulator owns except the nodes themselves. Nodes receive
/// `&mut SimCore` through [`Ctx`] while they are temporarily detached from
/// the node table, which is what makes mutable re-entrancy safe.
pub(crate) struct SimCore {
    pub(crate) now: SimTime,
    queue: TimingWheel<EventKind>,
    /// This core's shard index (0 in a single-threaded run).
    shard: u16,
    /// Per-source scheduling sequence numbers (index = node id; the key
    /// is `(schedule-time, source, seq)` — see the module docs). Grown in
    /// lockstep with node creation, including foreign slots.
    node_seq: Vec<u32>,
    /// Sequence for driver-scheduled closures (source [`DRIVER_SRC`]).
    driver_seq: u32,
    rng: StdRng,
    /// Seed for the per-link loss/jitter draw streams. Always the *base*
    /// world seed — [`crate::par::ParSim`] sets it identically on every
    /// shard even though each shard's `rng` stream is distinct — so link
    /// randomness never depends on which shard runs the transmit.
    link_seed: u64,
    default_link: LinkConfig,
    /// Flat per-node adjacency (indexed by source node id; NodeIds are
    /// dense). Entries are sorted by `dst` for binary search.
    links: Vec<Vec<LinkEntry>>,
    /// Timer slots (index = low 32 bits of a timer id).
    timers: Vec<TimerSlot>,
    timer_free: Vec<u32>,
    /// Delivered-side counters for cross-shard pairs (the sender's row
    /// lives on another shard). Empty in a single-threaded run.
    foreign_delivered: HashMap<(u32, u32), LinkStats>,
    /// Global node → shard map (empty = single-shard, everything local).
    owner: Vec<u16>,
    /// Datagrams bound for other shards, drained at barriers.
    outbox: Vec<CrossMsg>,
    /// Order-independent delivery digest (opt-in; see
    /// [`Simulator::enable_delivery_digest`]).
    digest_enabled: bool,
    digest: u64,
    tracing: bool,
    trace_log: Vec<(SimTime, NodeId, String)>,
}

impl SimCore {
    fn new(seed: u64, shard: u16) -> SimCore {
        SimCore {
            now: SimTime::ZERO,
            queue: TimingWheel::new(),
            shard,
            node_seq: Vec::new(),
            driver_seq: 0,
            rng: StdRng::seed_from_u64(seed),
            link_seed: seed,
            default_link: LinkConfig::default(),
            links: Vec::new(),
            timers: Vec::new(),
            timer_free: Vec::new(),
            foreign_delivered: HashMap::new(),
            owner: Vec::new(),
            outbox: Vec::new(),
            digest_enabled: false,
            digest: 0,
            tracing: false,
            trace_log: Vec::new(),
        }
    }

    /// Composes the next event key for an event caused by `src`:
    /// `(schedule-time, source, per-source seq)`. Monotone in push order
    /// within one source, globally unique, and — because it depends only
    /// on the source's own history — identical whether the run is
    /// single-threaded or sharded (the parallel determinism anchor).
    fn next_key(&mut self, src: u32) -> u128 {
        let seq = if src == DRIVER_SRC {
            let s = self.driver_seq;
            self.driver_seq += 1;
            s
        } else {
            let slot = &mut self.node_seq[src as usize];
            let s = *slot;
            *slot = s
                .checked_add(1)
                .expect("per-source event seq overflowed 32 bits");
            s
        };
        ((self.now.as_nanos() as u128) << 64) | ((src as u128) << 32) | seq as u128
    }

    fn push(&mut self, src: u32, at: SimTime, kind: EventKind) {
        let key = self.next_key(src);
        self.queue.push(at, key, kind);
    }

    /// The adjacency slot for `src -> dst`, created on first use.
    /// Returns `(row, index)` so callers can re-index without another
    /// search across an intervening borrow.
    fn link_slot(&mut self, src: NodeId, dst: NodeId) -> (usize, usize) {
        let s = src.index();
        if self.links.len() <= s {
            self.links.resize_with(s + 1, Vec::new);
        }
        let row = &mut self.links[s];
        let d = dst.0;
        let i = match row.binary_search_by_key(&d, |e| e.dst) {
            Ok(i) => i,
            Err(i) => {
                row.insert(
                    i,
                    LinkEntry {
                        dst: d,
                        cfg: None,
                        busy_until: SimTime::ZERO,
                        stats: LinkStats::default(),
                        draw_seq: 0,
                    },
                );
                i
            }
        };
        (s, i)
    }

    pub(crate) fn set_link_directed(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        let (s, i) = self.link_slot(src, dst);
        self.links[s][i].cfg = Some(cfg);
    }

    /// Next deterministic loss/jitter draw for the adjacency entry at
    /// `(row, idx)`: `splitmix64` over `(link_seed, src, dst, draw_seq)`.
    /// A pure function of the directed pair's own draw history — never of
    /// the shard's RNG, other links' traffic, or global execution order —
    /// so lossy-link outcomes are bit-identical single-threaded and under
    /// any `--par` sharding, and node-level RNG consumption cannot shift
    /// them.
    fn link_draw(&mut self, row: usize, idx: usize) -> u64 {
        let e = &mut self.links[row][idx];
        let seq = e.draw_seq;
        e.draw_seq += 1;
        let pair = ((row as u64) << 32) | e.dst as u64;
        splitmix64(
            self.link_seed
                .wrapping_add(splitmix64(pair))
                .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    pub(crate) fn transmit(&mut self, from: Addr, to: Addr, payload: Payload) {
        let default_link = self.default_link;
        let len = payload.len();

        let (s, i) = self.link_slot(from.node, to.node);
        let cfg = {
            let e = &mut self.links[s][i];
            e.stats.datagrams += 1;
            e.stats.bytes += len as u64;
            e.cfg.unwrap_or(default_link)
        };
        if cfg.mtu != 0 && len > cfg.mtu {
            self.links[s][i].stats.dropped_mtu += 1;
            return;
        }
        // Loss and jitter draw from the per-link deterministic stream
        // (`link_draw`), never from the shard RNG: lossless links take no
        // draws at all, and lossy links land identically regardless of
        // sharding or of what else consumed the seeded RNG.
        if cfg.loss > 0.0 {
            let u = self.link_draw(s, i);
            // 53-bit mantissa → uniform in [0, 1).
            if (u >> 11) as f64 / ((1u64 << 53) as f64) < cfg.loss {
                self.links[s][i].stats.dropped_loss += 1;
                return;
            }
        }

        // Store-and-forward: serialization occupies the link FIFO.
        let entry = &mut self.links[s][i];
        let start = self.now.max(entry.busy_until);
        let tx_done = start + cfg.serialization(len);
        entry.busy_until = tx_done;

        let jitter = if cfg.jitter > Duration::ZERO {
            let u = self.link_draw(s, i);
            let ns = u % (cfg.jitter.as_nanos() as u64 + 1);
            Duration::from_nanos(ns)
        } else {
            Duration::ZERO
        };
        let arrival = tx_done + cfg.delay + jitter;

        let dest_shard = self
            .owner
            .get(to.node.index())
            .copied()
            .unwrap_or(self.shard);
        if dest_shard == self.shard {
            self.push(
                from.node.0,
                arrival,
                EventKind::Deliver {
                    from,
                    to,
                    payload,
                    slot: (s as u32, i as u32),
                },
            );
        } else {
            // Cross-shard: park in the outbox with a sender-composed key;
            // the parallel driver injects it at the next barrier.
            let key = self.next_key(from.node.0);
            self.outbox.push(CrossMsg {
                from,
                to,
                payload,
                arrival,
                key,
            });
        }
    }

    fn record_delivered(&mut self, from: NodeId, to: NodeId, bytes: usize, slot: (u32, u32)) {
        let e = if slot != FOREIGN_SLOT {
            &mut self.links[slot.0 as usize][slot.1 as usize].stats
        } else {
            self.foreign_delivered.entry((from.0, to.0)).or_default()
        };
        e.delivered += 1;
        e.delivered_bytes += bytes as u64;
    }

    /// Folds one delivery into the order-independent digest: a wrapping
    /// sum of per-delivery FNV-1a hashes over `(at, from, to, payload)`,
    /// so two runs delivering the same multiset of datagrams at the same
    /// times agree regardless of same-instant processing order.
    fn fold_digest(&mut self, from: Addr, to: Addr, payload: &Payload) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let step = |h: &mut u64, b: u64| {
            *h ^= b;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        step(&mut h, self.now.as_nanos());
        step(&mut h, from.node.0 as u64);
        step(&mut h, from.port as u64);
        step(&mut h, to.node.0 as u64);
        step(&mut h, to.port as u64);
        step(&mut h, payload.len() as u64);
        for &b in payload.iter() {
            step(&mut h, b as u64);
        }
        self.digest = self.digest.wrapping_add(h);
    }

    /// Sums stats for `src -> dst` held by this core into `out` (the
    /// local row entry plus any foreign-delivery counters).
    pub(crate) fn pair_stats_into(&self, src: NodeId, dst: NodeId, out: &mut LinkStats) {
        if let Some(row) = self.links.get(src.index()) {
            if let Ok(i) = row.binary_search_by_key(&dst.0, |e| e.dst) {
                out.merge(&row[i].stats);
            }
        }
        if let Some(f) = self.foreign_delivered.get(&(src.0, dst.0)) {
            out.merge(f);
        }
    }

    /// Visits every directed pair this core holds counters for.
    pub(crate) fn for_each_pair_stats(&self, mut f: impl FnMut((NodeId, NodeId), LinkStats)) {
        for (s, row) in self.links.iter().enumerate() {
            for e in row {
                if e.stats != LinkStats::default() {
                    f((NodeId(s as u32), NodeId(e.dst)), e.stats);
                }
            }
        }
        for (&(s, d), st) in &self.foreign_delivered {
            f((NodeId(s), NodeId(d)), *st);
        }
    }

    pub(crate) fn reset_stats(&mut self) {
        for row in &mut self.links {
            for e in row {
                e.stats = LinkStats::default();
            }
        }
        self.foreign_delivered.clear();
    }

    pub(crate) fn set_timer(&mut self, node: NodeId, after: Duration, token: u64) -> u64 {
        let idx = match self.timer_free.pop() {
            Some(i) => i,
            None => {
                self.timers.push(TimerSlot {
                    gen: 0,
                    armed: false,
                });
                (self.timers.len() - 1) as u32
            }
        };
        let slot = &mut self.timers[idx as usize];
        slot.armed = true;
        let timer_id = ((slot.gen as u64) << 32) | idx as u64;
        let at = self.now + after;
        self.push(
            node.0,
            at,
            EventKind::Timer {
                node,
                token,
                timer_id,
            },
        );
        timer_id
    }

    pub(crate) fn cancel_timer(&mut self, timer_id: u64) {
        let idx = (timer_id & 0xFFFF_FFFF) as usize;
        let gen = (timer_id >> 32) as u32;
        // A stale id (already fired, slot recycled) is a no-op; the old
        // tombstone set leaked an entry forever on this exact pattern.
        if let Some(slot) = self.timers.get_mut(idx) {
            if slot.gen == gen {
                slot.armed = false;
            }
        }
    }

    /// Resolves a popped timer event: whether it should fire, then
    /// recycles the slot (bumping the generation so stale ids die).
    fn take_timer(&mut self, timer_id: u64) -> bool {
        let idx = (timer_id & 0xFFFF_FFFF) as usize;
        let gen = (timer_id >> 32) as u32;
        let slot = &mut self.timers[idx];
        debug_assert_eq!(slot.gen, gen, "timer slot recycled under a live event");
        let fire = slot.armed;
        slot.gen = slot.gen.wrapping_add(1);
        slot.armed = false;
        self.timer_free.push(idx as u32);
        fire
    }

    /// Timer bookkeeping size: `(slots allocated, slots free)`. The
    /// difference is exactly the timer events still in the queue —
    /// cancelling a timer cannot leak bookkeeping past its fire time.
    pub(crate) fn timer_bookkeeping(&self) -> (usize, usize) {
        (self.timers.len(), self.timer_free.len())
    }

    pub(crate) fn random_u64(&mut self) -> u64 {
        self.rng.random()
    }

    pub(crate) fn random_f64(&mut self) -> f64 {
        self.rng.random()
    }

    pub(crate) fn trace(&mut self, node: NodeId, msg: String) {
        if self.tracing {
            self.trace_log.push((self.now, node, msg));
        }
    }
}

/// The deterministic discrete-event simulator.
///
/// ```
/// use moqdns_netsim::{Simulator, Node, Ctx, Addr, LinkConfig};
/// use std::any::Any;
/// use std::time::Duration;
///
/// use moqdns_netsim::Payload;
///
/// /// Replies to every datagram with its payload reversed.
/// struct Echo;
/// impl Node for Echo {
///     fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, p: Payload) {
///         let mut bytes = p.to_vec();
///         bytes.reverse();
///         ctx.send(to_port, from, bytes);
///     }
///     fn as_any(&mut self) -> &mut dyn Any { self }
///     fn as_any_ref(&self) -> &dyn Any { self }
/// }
///
/// /// Sends one probe and remembers the reply.
/// struct Probe { peer: Option<Addr>, reply: Option<Payload> }
/// impl Node for Probe {
///     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
///         let peer = self.peer.unwrap();
///         ctx.send(1000, peer, b"ping".to_vec());
///     }
///     fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _from: Addr, _to: u16, p: Payload) {
///         self.reply = Some(p);
///     }
///     fn as_any(&mut self) -> &mut dyn Any { self }
///     fn as_any_ref(&self) -> &dyn Any { self }
/// }
///
/// let mut sim = Simulator::new(7);
/// sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(10)));
/// let echo = sim.add_node("echo", Box::new(Echo));
/// let probe = sim.add_node("probe", Box::new(Probe {
///     peer: Some(Addr::new(echo, 53)), reply: None,
/// }));
/// sim.run_until_idle();
/// assert_eq!(sim.now().as_millis(), 20); // one round trip
/// let reply = sim.node_ref::<Probe>(probe).reply.clone();
/// assert_eq!(reply.unwrap(), b"gnip");
/// ```
pub struct Simulator {
    core: SimCore,
    nodes: Vec<Option<Box<dyn Node>>>,
    names: Vec<String>,
}

impl Simulator {
    /// Creates a simulator seeded with `seed`. Identical seeds and identical
    /// event sequences produce bit-identical runs.
    pub fn new(seed: u64) -> Simulator {
        Simulator::new_shard(seed, 0)
    }

    /// Creates a shard-`shard` simulator (used by [`crate::par::ParSim`];
    /// shard 0 with an empty owner map is the ordinary single-threaded
    /// simulator).
    pub(crate) fn new_shard(seed: u64, shard: u16) -> Simulator {
        Simulator {
            core: SimCore::new(seed, shard),
            nodes: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Enables in-memory event tracing (see [`Simulator::trace_log`]).
    pub fn enable_tracing(&mut self) {
        self.core.tracing = true;
    }

    /// The recorded trace: `(time, node, message)` triples.
    pub fn trace_log(&self) -> &[(SimTime, NodeId, String)] {
        &self.core.trace_log
    }

    /// Enables the order-independent delivery digest (off by default: it
    /// hashes every delivered payload). See [`Simulator::delivery_digest`].
    pub fn enable_delivery_digest(&mut self) {
        self.core.digest_enabled = true;
    }

    /// The delivery digest so far: a wrapping sum of per-delivery hashes
    /// over `(time, from, to, payload)`. Two runs that deliver the same
    /// multiset of datagrams at the same times have equal digests
    /// regardless of same-instant processing order — the equality the
    /// parallel-vs-single-threaded parity tests assert.
    pub fn delivery_digest(&self) -> u64 {
        self.core.digest
    }

    /// Adds a node; its `on_start` runs at the current simulation time when
    /// the event loop next executes.
    pub fn add_node(&mut self, name: impl Into<String>, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.names.push(name.into());
        self.core.node_seq.push(0);
        // Defer on_start through the queue so ordering is deterministic;
        // the new node itself is the key source.
        self.core.push(
            id.0,
            self.core.now,
            EventKind::Call(Box::new(move |sim| {
                sim.dispatch_start(id);
            })),
        );
        id
    }

    /// Reserves a node id owned by another shard: the local tables keep
    /// an empty slot so global ids stay dense everywhere.
    pub(crate) fn add_foreign_slot(&mut self) {
        self.nodes.push(None);
        self.names.push(String::new());
        self.core.node_seq.push(0);
    }

    /// Appends one entry to the node→shard owner map (kept in lockstep
    /// with node creation by the parallel driver).
    pub(crate) fn push_owner(&mut self, shard: u16) {
        self.core.owner.push(shard);
    }

    /// Overrides the per-link draw-stream seed. The parallel driver sets
    /// the *base* world seed on every shard (shard RNG seeds differ) so
    /// lossy-link outcomes are sharding-independent.
    pub(crate) fn set_link_seed(&mut self, seed: u64) {
        self.core.link_seed = seed;
    }

    /// Drains the cross-shard outbox (empty in single-threaded runs).
    pub(crate) fn take_outbox(&mut self) -> Vec<CrossMsg> {
        std::mem::take(&mut self.core.outbox)
    }

    /// Drains the cross-shard outbox in place, keeping its allocation —
    /// the live bridge calls this once per io burst, so the steady state
    /// allocates nothing.
    pub(crate) fn drain_outbox(&mut self) -> std::vec::Drain<'_, CrossMsg> {
        self.core.outbox.drain(..)
    }

    /// Injects a cross-shard datagram parked by another shard's transmit.
    /// The sender-composed key slots it exactly where a global scheduler
    /// would have; the lookahead bound guarantees `arrival` has not been
    /// overtaken by this shard's clock.
    pub(crate) fn inject(&mut self, msg: CrossMsg) {
        assert!(
            msg.arrival >= self.core.now,
            "cross-shard datagram arrived in this shard's past \
             (lookahead bound violated: arrival {:?} < now {:?})",
            msg.arrival,
            self.core.now
        );
        self.core.queue.push(
            msg.arrival,
            msg.key,
            EventKind::Deliver {
                from: msg.from,
                to: msg.to,
                payload: msg.payload,
                slot: FOREIGN_SLOT,
            },
        );
    }

    /// Human-readable node name (for traces and experiment output).
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Sets the link configuration used for pairs without an override.
    pub fn set_default_link(&mut self, cfg: LinkConfig) {
        self.core.default_link = cfg;
    }

    /// Sets the directed link `src -> dst`.
    pub fn set_link_directed(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        self.core.set_link_directed(src, dst, cfg);
    }

    /// Timer bookkeeping size: `(slots allocated, slots free)`. Slots are
    /// recycled when their event pops, so `allocated - free` equals the
    /// timer events still pending — cancellations never leak entries.
    pub fn timer_bookkeeping(&self) -> (usize, usize) {
        self.core.timer_bookkeeping()
    }

    /// Number of events currently scheduled (deliveries, timers, calls).
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// When the earliest scheduled event fires, if any. The live bridge
    /// derives socket read timeouts from this so a sleeping io thread
    /// wakes exactly when the next protocol timer is due.
    pub fn next_event_at(&mut self) -> Option<SimTime> {
        self.core.queue.next_at()
    }

    /// Sets both directions between `a` and `b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.set_link_directed(a, b, cfg);
        self.set_link_directed(b, a, cfg);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Traffic counters for the run so far.
    pub fn stats(&self) -> TrafficStats<'_> {
        TrafficStats {
            cores: vec![&self.core],
        }
    }

    /// Mutable traffic counters (e.g. to reset after warm-up).
    pub fn stats_mut(&mut self) -> TrafficStatsMut<'_> {
        TrafficStatsMut {
            cores: vec![&mut self.core],
        }
    }

    pub(crate) fn core_ref(&self) -> &SimCore {
        &self.core
    }

    pub(crate) fn core_mut(&mut self) -> &mut SimCore {
        &mut self.core
    }

    /// Schedules `f` to run against the simulator at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Simulator) + Send + 'static) {
        let at = at.max(self.core.now);
        self.core.push(DRIVER_SRC, at, EventKind::Call(Box::new(f)));
    }

    /// Schedules `f` to run `after` from now.
    pub fn schedule_in(
        &mut self,
        after: Duration,
        f: impl FnOnce(&mut Simulator) + Send + 'static,
    ) {
        let at = self.core.now + after;
        self.core.push(DRIVER_SRC, at, EventKind::Call(Box::new(f)));
    }

    /// Runs `f` with mutable access to the concrete node `T` at `id` plus a
    /// [`Ctx`], letting experiments call directly into a node's API ("issue
    /// this query now") as if an event had been delivered.
    ///
    /// Panics if `id` does not refer to a `T` or the node is mid-dispatch.
    pub fn with_node<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut node = self.nodes[id.index()]
            .take()
            .expect("node is mid-dispatch or removed");
        let result = {
            let mut ctx = Ctx {
                core: &mut self.core,
                node: id,
            };
            let t = node
                .as_any()
                .downcast_mut::<T>()
                .expect("node type mismatch");
            f(t, &mut ctx)
        };
        self.nodes[id.index()] = Some(node);
        result
    }

    /// Immutable access to the concrete node `T` at `id`.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        self.nodes[id.index()]
            .as_ref()
            .expect("node is mid-dispatch or removed")
            .as_any_ref()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    fn dispatch_start(&mut self, id: NodeId) {
        if let Some(mut node) = self.nodes[id.index()].take() {
            let mut ctx = Ctx {
                core: &mut self.core,
                node: id,
            };
            node.on_start(&mut ctx);
            self.nodes[id.index()] = Some(node);
        }
    }

    /// Executes the next pending event. Returns `false` if the queue was
    /// empty (time does not advance in that case).
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.core.now, "time went backwards");
        self.core.now = ev.at;
        match ev.item {
            EventKind::Deliver {
                from,
                to,
                payload,
                slot,
            } => {
                if let Some(mut node) = self.nodes[to.node.index()].take() {
                    self.core
                        .record_delivered(from.node, to.node, payload.len(), slot);
                    if self.core.digest_enabled {
                        self.core.fold_digest(from, to, &payload);
                    }
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        node: to.node,
                    };
                    node.on_datagram(&mut ctx, from, to.port, payload);
                    self.nodes[to.node.index()] = Some(node);
                }
            }
            EventKind::Timer {
                node,
                token,
                timer_id,
            } => {
                if !self.core.take_timer(timer_id) {
                    return true; // cancelled before firing
                }
                if let Some(mut n) = self.nodes[node.index()].take() {
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        node,
                    };
                    n.on_timer(&mut ctx, token);
                    self.nodes[node.index()] = Some(n);
                }
            }
            EventKind::Call(f) => f(self),
        }
        true
    }

    /// Runs events until the queue is empty or `deadline` is reached; the
    /// clock ends at the last executed event (or `deadline` if given and
    /// reached). Returns the number of events executed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.core.queue.next_at() {
            if at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        self.core.now = self.core.now.max(deadline.min(SimTime::MAX));
        n
    }

    /// Runs every event strictly before `end`, then advances the clock to
    /// `end`. The exclusive bound is the conservative-lookahead window of
    /// the parallel simulator: events *at* the window end may still be
    /// joined by cross-shard arrivals injected at the barrier, so they
    /// belong to the next window.
    pub(crate) fn run_window(&mut self, end: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.core.queue.next_at() {
            if at >= end {
                break;
            }
            self.step();
            n += 1;
        }
        self.core.now = self.core.now.max(end);
        n
    }

    /// Whether any event is scheduled strictly before `end` (the parallel
    /// driver uses this to skip spawning a worker thread for an idle
    /// window).
    pub(crate) fn has_event_before(&mut self, end: SimTime) -> bool {
        self.core.queue.next_at().is_some_and(|at| at < end)
    }

    /// Whether any event is scheduled at or before `deadline`.
    pub(crate) fn has_event_at_or_before(&mut self, deadline: SimTime) -> bool {
        self.core.queue.next_at().is_some_and(|at| at <= deadline)
    }

    /// Runs until no events remain. Returns the number executed. Protocols
    /// with periodic timers (keep-alives) never go idle — use
    /// [`Simulator::run_until`] for those.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: Duration) -> u64 {
        let deadline = self.core.now + d;
        self.run_until(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// Test node that records everything it hears and can send on demand.
    #[derive(Default)]
    struct Recorder {
        heard: Vec<(SimTime, Addr, u16, Payload)>,
        timer_tokens: Vec<(SimTime, u64)>,
    }

    impl Node for Recorder {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Payload) {
            self.heard.push((ctx.now(), from, to_port, payload));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timer_tokens.push((ctx.now(), token));
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    fn two_recorders(seed: u64, link: LinkConfig) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        sim.set_default_link(link);
        let a = sim.add_node("a", Box::<Recorder>::default());
        let b = sim.add_node("b", Box::<Recorder>::default());
        (sim, a, b)
    }

    #[test]
    fn datagram_arrives_after_delay() {
        let (mut sim, a, b) = two_recorders(1, LinkConfig::with_delay(Duration::from_millis(30)));
        sim.with_node::<Recorder, _>(a, |_, ctx| {
            ctx.send(5, Addr::new(b, 9), vec![1, 2, 3]);
        });
        sim.run_until_idle();
        let heard = &sim.node_ref::<Recorder>(b).heard;
        assert_eq!(heard.len(), 1);
        let (t, from, port, data) = &heard[0];
        assert_eq!(t.as_millis(), 30);
        assert_eq!(*from, Addr::new(a, 5));
        assert_eq!(*port, 9);
        assert_eq!(*data, [1, 2, 3]);
    }

    #[test]
    fn serialization_queues_back_to_back_sends() {
        // 1 Mbps: a 125-byte datagram takes 1 ms to serialize.
        let link = LinkConfig::with_delay(Duration::from_millis(10)).rate_bps(1_000_000);
        let (mut sim, a, b) = two_recorders(1, link);
        sim.with_node::<Recorder, _>(a, |_, ctx| {
            ctx.send(1, Addr::new(b, 1), vec![0; 125]);
            ctx.send(1, Addr::new(b, 1), vec![0; 125]);
        });
        sim.run_until_idle();
        let heard = &sim.node_ref::<Recorder>(b).heard;
        assert_eq!(heard.len(), 2);
        assert_eq!(heard[0].0.as_millis(), 11); // 1 ms tx + 10 ms prop
        assert_eq!(heard[1].0.as_millis(), 12); // queued behind the first
    }

    #[test]
    fn mtu_drops_oversized() {
        let link = LinkConfig::instant().mtu(100);
        let (mut sim, a, b) = two_recorders(1, link);
        sim.with_node::<Recorder, _>(a, |_, ctx| {
            ctx.send(1, Addr::new(b, 1), vec![0; 101]);
            ctx.send(1, Addr::new(b, 1), vec![0; 100]);
        });
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Recorder>(b).heard.len(), 1);
        let s = sim.stats().between(a, b);
        assert_eq!(s.dropped_mtu, 1);
        assert_eq!(s.delivered, 1);
    }

    #[test]
    fn full_loss_drops_everything() {
        let link = LinkConfig::instant().loss(1.0);
        let (mut sim, a, b) = two_recorders(1, link);
        sim.with_node::<Recorder, _>(a, |_, ctx| {
            for _ in 0..10 {
                ctx.send(1, Addr::new(b, 1), vec![0; 10]);
            }
        });
        sim.run_until_idle();
        assert!(sim.node_ref::<Recorder>(b).heard.is_empty());
        assert_eq!(sim.stats().between(a, b).dropped_loss, 10);
    }

    #[test]
    fn partial_loss_statistics() {
        let link = LinkConfig::instant().loss(0.5);
        let (mut sim, a, b) = two_recorders(42, link);
        for _ in 0..1000 {
            sim.with_node::<Recorder, _>(a, |_, ctx| {
                ctx.send(1, Addr::new(b, 1), vec![0; 10]);
            });
        }
        sim.run_until_idle();
        let got = sim.node_ref::<Recorder>(b).heard.len();
        // With p=0.5 and n=1000 the delivered count is within [400, 600]
        // except with negligible probability; the seed makes it exact anyway.
        assert!((400..=600).contains(&got), "got {got}");
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Box::<Recorder>::default());
        sim.with_node::<Recorder, _>(a, |_, ctx| {
            ctx.set_timer(Duration::from_millis(20), 2);
            ctx.set_timer(Duration::from_millis(10), 1);
            ctx.set_timer(Duration::from_millis(30), 3);
        });
        sim.run_until_idle();
        let toks = &sim.node_ref::<Recorder>(a).timer_tokens;
        assert_eq!(
            toks.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(toks[0].0.as_millis(), 10);
        assert_eq!(toks[2].0.as_millis(), 30);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Box::<Recorder>::default());
        let id =
            sim.with_node::<Recorder, _>(a, |_, ctx| ctx.set_timer(Duration::from_millis(10), 7));
        sim.with_node::<Recorder, _>(a, |_, ctx| ctx.cancel_timer(id));
        sim.run_until_idle();
        assert!(sim.node_ref::<Recorder>(a).timer_tokens.is_empty());
    }

    #[test]
    fn timer_bookkeeping_is_bounded() {
        // The old tombstone set kept an entry per cancelled timer until
        // that timer's event happened to fire — and *forever* for ids
        // cancelled after firing. Generation-tagged slots recycle on pop
        // and ignore stale ids, so bookkeeping is bounded by the events
        // actually in flight.
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Box::<Recorder>::default());
        sim.run_until_idle();

        // Set-then-cancel-before-fire, many times over.
        for round in 0..100 {
            let ids: Vec<u64> = sim.with_node::<Recorder, _>(a, |_, ctx| {
                (0..10)
                    .map(|i| ctx.set_timer(Duration::from_millis(5 + i), round * 16 + i))
                    .collect()
            });
            sim.with_node::<Recorder, _>(a, |_, ctx| {
                for id in ids {
                    ctx.cancel_timer(id);
                }
            });
            sim.run_for(Duration::from_millis(50));
        }
        assert!(sim.node_ref::<Recorder>(a).timer_tokens.is_empty());
        let (slots, free) = sim.timer_bookkeeping();
        assert_eq!(slots - free, 0, "no timer events in flight");
        assert!(slots <= 10, "slots are recycled, not accumulated: {slots}");

        // Cancel-after-fire (the forever leak in the tombstone set): a
        // stale id must be a no-op and must not grow any bookkeeping.
        for _ in 0..100 {
            let id = sim
                .with_node::<Recorder, _>(a, |_, ctx| ctx.set_timer(Duration::from_millis(1), 1));
            sim.run_for(Duration::from_millis(5));
            sim.with_node::<Recorder, _>(a, |_, ctx| ctx.cancel_timer(id));
        }
        let (slots, free) = sim.timer_bookkeeping();
        assert_eq!(slots - free, 0);
        assert!(slots <= 10, "stale cancels must not leak: {slots}");

        // A recycled slot must not be killable through a stale id: the
        // old id's generation no longer matches.
        let stale =
            sim.with_node::<Recorder, _>(a, |_, ctx| ctx.set_timer(Duration::from_millis(1), 2));
        sim.run_for(Duration::from_millis(5));
        let fresh =
            sim.with_node::<Recorder, _>(a, |_, ctx| ctx.set_timer(Duration::from_millis(1), 3));
        assert_ne!(stale, fresh, "generation changes the id");
        sim.with_node::<Recorder, _>(a, |_, ctx| ctx.cancel_timer(stale));
        let fired_before = sim.node_ref::<Recorder>(a).timer_tokens.len();
        sim.run_for(Duration::from_millis(5));
        assert_eq!(
            sim.node_ref::<Recorder>(a).timer_tokens.len(),
            fired_before + 1,
            "stale cancel must not kill the recycled slot's live timer"
        );
    }

    #[test]
    fn transmit_never_touches_the_rng() {
        // Invariant: *no* transmit — lossless, lossy, or jittery —
        // consumes the shard's seeded RNG. Loss and jitter draw from
        // per-link deterministic streams instead, so link traffic cannot
        // shift node-level randomness and vice versa (committed CI
        // baselines and the parallel parity contract depend on it).
        let drain = |sim: &mut Simulator, a: NodeId| -> Vec<u64> {
            sim.with_node::<Recorder, _>(a, |_, ctx| (0..8).map(|_| ctx.random_u64()).collect())
        };
        let run = |link: LinkConfig, traffic: usize| -> Vec<u64> {
            let (mut sim, a, b) = two_recorders(77, link);
            sim.run_until_idle();
            for _ in 0..traffic {
                sim.with_node::<Recorder, _>(a, |_, ctx| {
                    ctx.send(1, Addr::new(b, 1), vec![0; 100]);
                });
            }
            sim.run_until_idle();
            drain(&mut sim, a)
        };
        let lossless = LinkConfig::with_delay(Duration::from_millis(1));
        let hostile = LinkConfig::with_delay(Duration::from_millis(1))
            .jitter(Duration::from_millis(5))
            .loss(0.5);
        let baseline = run(lossless, 0);
        assert_eq!(
            baseline,
            run(lossless, 1000),
            "lossless traffic perturbed the RNG"
        );
        assert_eq!(
            baseline,
            run(hostile, 1000),
            "lossy/jittery traffic perturbed the RNG"
        );
    }

    #[test]
    fn link_draws_are_independent_of_node_rng_use() {
        // The converse direction: consuming the node-level RNG mid-run
        // must not move any lossy link's drop/jitter pattern — per-link
        // draws depend only on the pair's own transmit history.
        let run = |rng_noise: bool| -> Vec<u64> {
            let link = LinkConfig::with_delay(Duration::from_millis(1))
                .jitter(Duration::from_millis(5))
                .loss(0.4);
            let (mut sim, a, b) = two_recorders(7, link);
            sim.run_until_idle();
            for i in 0..200 {
                if rng_noise && i % 3 == 0 {
                    sim.with_node::<Recorder, _>(a, |_, ctx| {
                        ctx.random_u64();
                    });
                }
                sim.with_node::<Recorder, _>(a, |_, ctx| {
                    ctx.send(1, Addr::new(b, 1), vec![0; 10]);
                });
            }
            sim.run_until_idle();
            sim.node_ref::<Recorder>(b)
                .heard
                .iter()
                .map(|(t, ..)| t.as_nanos())
                .collect()
        };
        assert_eq!(
            run(false),
            run(true),
            "node RNG consumption moved a lossy link's deliveries"
        );
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Box::<Recorder>::default());
        sim.with_node::<Recorder, _>(a, |_, ctx| {
            ctx.set_timer(Duration::from_millis(10), 1);
            ctx.set_timer(Duration::from_millis(50), 2);
        });
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(sim.now(), SimTime::from_millis(20));
        assert_eq!(sim.node_ref::<Recorder>(a).timer_tokens.len(), 1);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Recorder>(a).timer_tokens.len(), 2);
    }

    #[test]
    fn scheduled_calls_run_at_time() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Box::<Recorder>::default());
        sim.schedule_in(Duration::from_secs(5), move |sim| {
            sim.with_node::<Recorder, _>(a, |_, ctx| {
                let now = ctx.now();
                ctx.set_timer(Duration::ZERO, now.as_secs_f64() as u64);
            });
        });
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Recorder>(a).timer_tokens[0].1, 5);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        fn run(seed: u64) -> Vec<u64> {
            let link = LinkConfig::with_delay(Duration::from_millis(5))
                .jitter(Duration::from_millis(5))
                .loss(0.3);
            let (mut sim, a, b) = two_recorders(seed, link);
            for _ in 0..100 {
                sim.with_node::<Recorder, _>(a, |_, ctx| {
                    ctx.send(1, Addr::new(b, 1), vec![0; 10]);
                });
            }
            sim.run_until_idle();
            sim.node_ref::<Recorder>(b)
                .heard
                .iter()
                .map(|(t, ..)| t.as_nanos())
                .collect()
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn node_names() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("alpha", Box::<Recorder>::default());
        assert_eq!(sim.node_name(a), "alpha");
    }
}
