//! Traffic accounting.

use crate::node::NodeId;
use std::collections::HashMap;

/// Counters for one directed node pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Datagrams handed to the link (including ones later dropped).
    pub datagrams: u64,
    /// Payload bytes handed to the link (including ones later dropped).
    pub bytes: u64,
    /// Datagrams dropped by random loss.
    pub dropped_loss: u64,
    /// Datagrams dropped for exceeding the link MTU.
    pub dropped_mtu: u64,
    /// Datagrams actually delivered.
    pub delivered: u64,
    /// Payload bytes actually delivered.
    pub delivered_bytes: u64,
}

/// Per-directed-pair traffic statistics for a simulation run.
///
/// The update-traffic experiments (E5–E7) read these to compare the bytes
/// and message counts of request/response DNS against publish/subscribe.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    pairs: HashMap<(NodeId, NodeId), LinkStats>,
}

impl TrafficStats {
    pub(crate) fn record_sent(&mut self, src: NodeId, dst: NodeId, bytes: usize) {
        let e = self.pairs.entry((src, dst)).or_default();
        e.datagrams += 1;
        e.bytes += bytes as u64;
    }

    pub(crate) fn record_loss(&mut self, src: NodeId, dst: NodeId) {
        self.pairs.entry((src, dst)).or_default().dropped_loss += 1;
    }

    pub(crate) fn record_mtu_drop(&mut self, src: NodeId, dst: NodeId) {
        self.pairs.entry((src, dst)).or_default().dropped_mtu += 1;
    }

    pub(crate) fn record_delivered(&mut self, src: NodeId, dst: NodeId, bytes: usize) {
        let e = self.pairs.entry((src, dst)).or_default();
        e.delivered += 1;
        e.delivered_bytes += bytes as u64;
    }

    /// Stats for the directed pair `src -> dst`.
    pub fn between(&self, src: NodeId, dst: NodeId) -> LinkStats {
        self.pairs.get(&(src, dst)).copied().unwrap_or_default()
    }

    /// Total bytes handed to all links.
    pub fn total_bytes(&self) -> u64 {
        self.pairs.values().map(|s| s.bytes).sum()
    }

    /// Total datagrams handed to all links.
    pub fn total_datagrams(&self) -> u64 {
        self.pairs.values().map(|s| s.datagrams).sum()
    }

    /// Total bytes received by `dst` from anyone.
    pub fn bytes_into(&self, dst: NodeId) -> u64 {
        self.pairs
            .iter()
            .filter(|((_, d), _)| *d == dst)
            .map(|(_, s)| s.delivered_bytes)
            .sum()
    }

    /// Total bytes sent by `src` to anyone.
    pub fn bytes_out_of(&self, src: NodeId) -> u64 {
        self.pairs
            .iter()
            .filter(|((s, _), _)| *s == src)
            .map(|(_, st)| st.bytes)
            .sum()
    }

    /// Total datagrams received by `dst` from anyone.
    pub fn datagrams_into(&self, dst: NodeId) -> u64 {
        self.pairs
            .iter()
            .filter(|((_, d), _)| *d == dst)
            .map(|(_, s)| s.delivered)
            .sum()
    }

    /// Iterates over all directed pairs with their stats.
    pub fn iter(&self) -> impl Iterator<Item = ((NodeId, NodeId), LinkStats)> + '_ {
        self.pairs.iter().map(|(k, v)| (*k, *v))
    }

    /// Resets all counters (e.g. after a warm-up phase).
    pub fn reset(&mut self) {
        self.pairs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn accumulates_per_pair() {
        let mut t = TrafficStats::default();
        t.record_sent(n(0), n(1), 100);
        t.record_delivered(n(0), n(1), 100);
        t.record_sent(n(0), n(1), 50);
        t.record_loss(n(0), n(1));
        t.record_sent(n(1), n(0), 10);
        t.record_delivered(n(1), n(0), 10);

        let s01 = t.between(n(0), n(1));
        assert_eq!(s01.datagrams, 2);
        assert_eq!(s01.bytes, 150);
        assert_eq!(s01.delivered, 1);
        assert_eq!(s01.delivered_bytes, 100);
        assert_eq!(s01.dropped_loss, 1);

        assert_eq!(t.total_bytes(), 160);
        assert_eq!(t.total_datagrams(), 3);
        assert_eq!(t.bytes_into(n(1)), 100);
        assert_eq!(t.bytes_out_of(n(0)), 150);
        assert_eq!(t.datagrams_into(n(0)), 1);
    }

    #[test]
    fn unknown_pair_is_zero() {
        let t = TrafficStats::default();
        assert_eq!(t.between(n(3), n(4)), LinkStats::default());
    }

    #[test]
    fn reset_clears() {
        let mut t = TrafficStats::default();
        t.record_sent(n(0), n(1), 100);
        t.reset();
        assert_eq!(t.total_bytes(), 0);
    }
}
