//! Traffic accounting.
//!
//! Counters live *inside* the per-node adjacency rows (`sim`'s
//! `LinkEntry`), not in a side map: a transmit updates the same cache
//! line it already touched for the link config and FIFO horizon, and a
//! delivery re-indexes the row slot recorded in the event — zero map
//! lookups on the data path. The types here are read/reset *views* over
//! those rows; a view may span several shard cores (the parallel
//! simulator), in which case counters for one directed pair are summed
//! across shards (the sender's shard holds the sent/drop counters, the
//! receiver's shard holds the delivered counters of cross-shard pairs).

use crate::node::NodeId;
use crate::sim::SimCore;
use std::collections::BTreeMap;

/// Counters for one directed node pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Datagrams handed to the link (including ones later dropped).
    pub datagrams: u64,
    /// Payload bytes handed to the link (including ones later dropped).
    pub bytes: u64,
    /// Datagrams dropped by random loss.
    pub dropped_loss: u64,
    /// Datagrams dropped for exceeding the link MTU.
    pub dropped_mtu: u64,
    /// Datagrams actually delivered.
    pub delivered: u64,
    /// Payload bytes actually delivered.
    pub delivered_bytes: u64,
}

impl LinkStats {
    /// Accumulates `other` into `self` (merging shard-local counters).
    pub(crate) fn merge(&mut self, other: &LinkStats) {
        self.datagrams += other.datagrams;
        self.bytes += other.bytes;
        self.dropped_loss += other.dropped_loss;
        self.dropped_mtu += other.dropped_mtu;
        self.delivered += other.delivered;
        self.delivered_bytes += other.delivered_bytes;
    }
}

/// Read-only view of per-directed-pair traffic statistics, merged over
/// one (single-threaded) or several (parallel) shard cores.
///
/// The update-traffic experiments (E5–E7) read these to compare the bytes
/// and message counts of request/response DNS against publish/subscribe.
pub struct TrafficStats<'a> {
    pub(crate) cores: Vec<&'a SimCore>,
}

impl TrafficStats<'_> {
    /// Stats for the directed pair `src -> dst`.
    pub fn between(&self, src: NodeId, dst: NodeId) -> LinkStats {
        let mut out = LinkStats::default();
        for c in &self.cores {
            c.pair_stats_into(src, dst, &mut out);
        }
        out
    }

    /// Total bytes handed to all links.
    pub fn total_bytes(&self) -> u64 {
        self.fold(|s| s.bytes)
    }

    /// Total datagrams handed to all links.
    pub fn total_datagrams(&self) -> u64 {
        self.fold(|s| s.datagrams)
    }

    /// Total bytes received by `dst` from anyone.
    pub fn bytes_into(&self, dst: NodeId) -> u64 {
        self.filter_fold(|(_, d)| d == dst, |s| s.delivered_bytes)
    }

    /// Total bytes sent by `src` to anyone.
    pub fn bytes_out_of(&self, src: NodeId) -> u64 {
        self.filter_fold(|(s, _)| s == src, |st| st.bytes)
    }

    /// Total datagrams received by `dst` from anyone.
    pub fn datagrams_into(&self, dst: NodeId) -> u64 {
        self.filter_fold(|(_, d)| d == dst, |s| s.delivered)
    }

    /// Iterates over all directed pairs with their (shard-merged) stats.
    pub fn iter(&self) -> impl Iterator<Item = ((NodeId, NodeId), LinkStats)> + '_ {
        let mut merged: BTreeMap<(NodeId, NodeId), LinkStats> = BTreeMap::new();
        for c in &self.cores {
            c.for_each_pair_stats(|pair, s| merged.entry(pair).or_default().merge(&s));
        }
        merged.into_iter()
    }

    fn fold(&self, f: impl Fn(&LinkStats) -> u64) -> u64 {
        let mut total = 0;
        for c in &self.cores {
            c.for_each_pair_stats(|_, s| total += f(&s));
        }
        total
    }

    fn filter_fold(
        &self,
        keep: impl Fn((NodeId, NodeId)) -> bool,
        f: impl Fn(&LinkStats) -> u64,
    ) -> u64 {
        let mut total = 0;
        for c in &self.cores {
            c.for_each_pair_stats(|pair, s| {
                if keep(pair) {
                    total += f(&s)
                }
            });
        }
        total
    }
}

/// Mutable handle over the traffic counters (e.g. to reset after a
/// warm-up phase), spanning every shard core of the simulator it came
/// from.
pub struct TrafficStatsMut<'a> {
    pub(crate) cores: Vec<&'a mut SimCore>,
}

impl TrafficStatsMut<'_> {
    /// Resets all counters (e.g. after a warm-up phase).
    pub fn reset(&mut self) {
        for c in self.cores.iter_mut() {
            c.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::link::LinkConfig;
    use crate::node::{Addr, Ctx, Node, NodeId};
    use crate::sim::Simulator;
    use moqdns_wire::Payload;
    use std::any::Any;

    struct Sink;
    impl Node for Sink {
        fn on_datagram(&mut self, _: &mut Ctx<'_>, _: Addr, _: u16, _: Payload) {}
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    fn world() -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        sim.set_default_link(LinkConfig::instant());
        let a = sim.add_node("a", Box::new(Sink));
        let b = sim.add_node("b", Box::new(Sink));
        (sim, a, b)
    }

    #[test]
    fn accumulates_per_pair() {
        let (mut sim, a, b) = world();
        sim.set_link_directed(a, b, LinkConfig::instant().mtu(80));
        sim.with_node::<Sink, _>(a, |_, ctx| {
            ctx.send(1, Addr::new(b, 1), vec![0; 60]);
            ctx.send(1, Addr::new(b, 1), vec![0; 50]);
            ctx.send(1, Addr::new(b, 1), vec![0; 100]); // over MTU
        });
        sim.with_node::<Sink, _>(b, |_, ctx| {
            ctx.send(1, Addr::new(a, 1), vec![0; 10]);
        });
        sim.run_until_idle();

        let s01 = sim.stats().between(a, b);
        assert_eq!(s01.datagrams, 3);
        assert_eq!(s01.bytes, 210);
        assert_eq!(s01.delivered, 2);
        assert_eq!(s01.delivered_bytes, 110);
        assert_eq!(s01.dropped_mtu, 1);

        assert_eq!(sim.stats().total_bytes(), 220);
        assert_eq!(sim.stats().total_datagrams(), 4);
        assert_eq!(sim.stats().bytes_into(b), 110);
        assert_eq!(sim.stats().bytes_out_of(a), 210);
        assert_eq!(sim.stats().datagrams_into(a), 1);
        let pairs: Vec<_> = sim.stats().iter().collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn unknown_pair_is_zero() {
        let (sim, a, b) = world();
        assert_eq!(sim.stats().between(b, a), super::LinkStats::default());
    }

    #[test]
    fn reset_clears() {
        let (mut sim, a, b) = world();
        sim.with_node::<Sink, _>(a, |_, ctx| {
            ctx.send(1, Addr::new(b, 1), vec![0; 100]);
        });
        sim.run_until_idle();
        assert_eq!(sim.stats().total_bytes(), 100);
        sim.stats_mut().reset();
        assert_eq!(sim.stats().total_bytes(), 0);
        assert_eq!(sim.stats().between(a, b).delivered, 0);
    }
}
