//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant in simulated time, in nanoseconds since simulation start.
///
/// `SimTime` is a total order, starts at [`SimTime::ZERO`], and only ever
/// moves forward. All protocol code takes instants/durations as values —
/// nothing reads a wall clock — which is what makes simulation runs exactly
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as "no deadline").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since start.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since start.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since start.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since start.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self - earlier`, saturating at zero.
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos() as u64))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        self.saturating_add(d)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.saturating_duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let u = t + Duration::from_millis(5);
        assert_eq!(u.as_millis(), 15);
        assert_eq!(u - t, Duration::from_millis(5));
        // Subtraction saturates rather than underflowing.
        assert_eq!(t - u, Duration::ZERO);
    }

    #[test]
    fn saturating_add_at_max() {
        assert_eq!(SimTime::MAX + Duration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }
}
