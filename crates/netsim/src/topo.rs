//! Declarative topology construction: k-ary relay trees and multi-region
//! meshes with per-tier link configurations.
//!
//! Experiment binaries used to hand-wire every node and link; this module
//! turns a topology into data. A [`TopoBuilder`] describes tiers — node
//! count, how many parents each node attaches to in the tier above, and
//! the [`LinkConfig`] of those attachments — and [`TopoBuilder::build`]
//! instantiates it against a [`Simulator`], calling a caller-supplied
//! factory for each node (the simulator neither knows nor cares what the
//! nodes *are*; protocol crates layer meaning on top). The result is a
//! [`Topology`] handle that remembers tiers, parent sets, and edges so
//! tests can iterate `edges()` and assert per-link traffic invariants
//! (e.g. the §3 one-copy-per-link aggregation claim).
//!
//! Parent assignment is deterministic: child `j` of a tier with `M`
//! parents above it attaches to `j % M`, `(j/M + j) % M`… — fixed
//! round-robin, so identical specs always produce identical wiring and a
//! seeded simulation replays bit-identically.
//!
//! ```
//! use moqdns_netsim::{topo::TopoBuilder, LinkConfig, Simulator, Node, Ctx, Addr};
//! use std::any::Any;
//! use std::time::Duration;
//!
//! struct Silent;
//! impl Node for Silent {
//!     fn on_datagram(&mut self, _: &mut Ctx<'_>, _: Addr, _: u16, _: moqdns_netsim::Payload) {}
//!     fn as_any(&mut self) -> &mut dyn Any { self }
//!     fn as_any_ref(&self) -> &dyn Any { self }
//! }
//!
//! let mut sim = Simulator::new(1);
//! // 1 root, 2 mid relays, 4 leaves: a binary tree.
//! let topo = TopoBuilder::new()
//!     .tier("root", 1, 0, LinkConfig::instant())
//!     .tier("mid", 2, 1, LinkConfig::with_delay(Duration::from_millis(10)))
//!     .tier("leaf", 4, 1, LinkConfig::with_delay(Duration::from_millis(5)))
//!     .build(&mut sim, |sim, ctx| sim.add_node(ctx.name.clone(), Box::new(Silent)));
//! assert_eq!(topo.tier_named("mid").len(), 2);
//! assert_eq!(topo.edges().count(), 2 + 4);
//! let leaf = topo.tier_named("leaf")[3];
//! assert_eq!(topo.parents_of(leaf), &[topo.tier_named("mid")[1]]);
//! ```

use crate::link::LinkConfig;
use crate::node::NodeId;
use crate::par::ParSim;
use crate::sim::Simulator;
use std::collections::HashMap;

/// A simulation front-end [`TopoBuilder::build`] can instantiate a
/// topology against: the single-threaded [`Simulator`] or the sharded
/// [`ParSim`]. The builder itself only wires links — node creation goes
/// through the caller's factory, which receives the same host and (for a
/// sharded host) routes each node to its owning shard.
pub trait TopoHost {
    /// Sets both directions of the link between `a` and `b`.
    fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig);
}

impl TopoHost for Simulator {
    fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        Simulator::set_link(self, a, b, cfg);
    }
}

impl TopoHost for ParSim {
    fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        ParSim::set_link(self, a, b, cfg);
    }
}

/// How a tier's children pick their parents among the tier above.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ParentMode {
    /// Child `j` starts at parent `j % M` and walks forward — spreads
    /// primary attachments round-robin (trees, failover pairs).
    #[default]
    Rotate,
    /// Every child takes parents `[0..take]` in identical order — required
    /// when uplink *index* must name the same parent at every child, e.g.
    /// hash-shard meshes where shard `i` means "core relay `i`" globally.
    Aligned,
}

/// One tier of the topology.
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// Label ("root", "tier1", "edge", …).
    pub name: String,
    /// Number of nodes at this tier.
    pub count: usize,
    /// How many parents in the tier above each node attaches to
    /// (0 for the top tier; >1 builds a mesh for sharding/failover).
    pub parents_per_node: usize,
    /// Link configuration applied in both directions between a node and
    /// each of its parents.
    pub link: LinkConfig,
    /// Parent pick order (rotate round-robin vs. globally aligned).
    pub parent_mode: ParentMode,
}

/// Context handed to the node factory for each node being created.
#[derive(Debug)]
pub struct TopoCtx<'a> {
    /// Tier index (0 = top).
    pub tier: usize,
    /// Tier label.
    pub tier_name: &'a str,
    /// Index of this node within its tier.
    pub index: usize,
    /// Parents this node attaches to (already created, in preference
    /// order: `parents[0]` is the primary).
    pub parents: &'a [NodeId],
    /// Suggested simulator node name (`"<tier><index>"`).
    pub name: String,
}

/// How the members of one tier are interconnected among themselves
/// (cross-region core federation: cores serving each other, not only the
/// origin above them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerWiring {
    /// Member `i` links to member `(i + 1) % n` — the classic core ring.
    Ring,
    /// Every unordered pair of members is linked — what a fetch-anywhere
    /// federation needs so any core reaches any home core in one hop.
    FullMesh,
}

/// One intra-tier peer interconnect: which tier, how it is wired, and the
/// link configuration of the peer edges (inter-region links are typically
/// slower than intra-region attachments — give them their own config so
/// the latency asymmetry is visible in results).
#[derive(Debug, Clone)]
pub struct PeerSpec {
    /// Tier label the interconnect applies to.
    pub tier: String,
    /// Ring or full mesh.
    pub wiring: PeerWiring,
    /// Link configuration of every peer edge (both directions).
    pub link: LinkConfig,
}

/// Declarative builder for tiered topologies.
#[derive(Debug, Default)]
pub struct TopoBuilder {
    tiers: Vec<TierSpec>,
    peerings: Vec<PeerSpec>,
}

impl TopoBuilder {
    /// An empty topology.
    pub fn new() -> TopoBuilder {
        TopoBuilder::default()
    }

    /// Appends a tier below the previously added ones (rotating
    /// round-robin parent assignment).
    pub fn tier(
        self,
        name: impl Into<String>,
        count: usize,
        parents_per_node: usize,
        link: LinkConfig,
    ) -> TopoBuilder {
        self.tier_with_mode(name, count, parents_per_node, link, ParentMode::Rotate)
    }

    /// Appends a tier with an explicit [`ParentMode`].
    pub fn tier_with_mode(
        mut self,
        name: impl Into<String>,
        count: usize,
        parents_per_node: usize,
        link: LinkConfig,
        parent_mode: ParentMode,
    ) -> TopoBuilder {
        self.tiers.push(TierSpec {
            name: name.into(),
            count,
            parents_per_node,
            link,
            parent_mode,
        });
        self
    }

    /// Interconnects the members of the tier labelled `tier` as a ring
    /// over `link` (member `i` ↔ member `(i + 1) % n`).
    pub fn peer_ring(mut self, tier: impl Into<String>, link: LinkConfig) -> TopoBuilder {
        self.peerings.push(PeerSpec {
            tier: tier.into(),
            wiring: PeerWiring::Ring,
            link,
        });
        self
    }

    /// Interconnects the members of the tier labelled `tier` as a full
    /// mesh over `link` (every unordered pair linked).
    pub fn peer_full_mesh(mut self, tier: impl Into<String>, link: LinkConfig) -> TopoBuilder {
        self.peerings.push(PeerSpec {
            tier: tier.into(),
            wiring: PeerWiring::FullMesh,
            link,
        });
        self
    }

    /// Convenience: a k-ary tree — one root, then each subsequent tier
    /// multiplies the node count by its fan-out, every node attaching to
    /// exactly one parent over `link`. `fanouts = [2, 4]` gives
    /// 1 root → 2 mid → 8 leaves.
    pub fn k_ary(root_name: impl Into<String>, fanouts: &[usize], link: LinkConfig) -> TopoBuilder {
        let mut b = TopoBuilder::new().tier(root_name, 1, 0, link);
        let mut count = 1;
        for (i, f) in fanouts.iter().enumerate() {
            count *= f;
            b = b.tier(format!("tier{}", i + 1), count, 1, link);
        }
        b
    }

    /// Convenience: a deep relay chain — the paper's "5 MoQ relays on
    /// average" distribution path as one call. One root named
    /// `root_name`, then `hops` single-relay tiers named `hop1..hopN`,
    /// each attached to the tier above over `link`. Append a leaf tier
    /// (`.tier("stub", …)`) for subscribers.
    pub fn chain(root_name: impl Into<String>, hops: usize, link: LinkConfig) -> TopoBuilder {
        let mut b = TopoBuilder::new().tier(root_name, 1, 0, link);
        for i in 1..=hops {
            b = b.tier(format!("hop{i}"), 1, 1, link);
        }
        b
    }

    /// Convenience: a multi-region hash-shard mesh — one origin named
    /// `origin_name`, a `core` tier of `cores` relays attached to it, and
    /// an `edge` tier of `regions * edges_per_region` relays, each
    /// attached to **all** cores in *aligned* order (uplink `i` is core
    /// `i` at every edge, so a track's hash shard names the same core
    /// everywhere). Edge `j` belongs to region `j / edges_per_region`.
    /// Append a leaf tier for subscribers.
    pub fn mesh(
        origin_name: impl Into<String>,
        cores: usize,
        regions: usize,
        edges_per_region: usize,
        link: LinkConfig,
    ) -> TopoBuilder {
        TopoBuilder::new()
            .tier(origin_name, 1, 0, link)
            .tier("core", cores, 1, link)
            .tier_with_mode(
                "edge",
                regions * edges_per_region,
                cores,
                link,
                ParentMode::Aligned,
            )
    }

    /// Instantiates the topology: calls `factory` once per node
    /// (top tier first, then tier by tier, index order within a tier) and
    /// wires each node to its parents with the tier's link config.
    ///
    /// The factory receives a [`TopoCtx`] naming the node's tier, index,
    /// and parents, and must add exactly one node to `sim` and return its
    /// id. `sim` is any [`TopoHost`] — a plain [`Simulator`] or a sharded
    /// [`ParSim`]; creation and wiring order are identical either way, so
    /// a seeded world replays bit-identically on both.
    pub fn build<S: TopoHost>(
        self,
        sim: &mut S,
        mut factory: impl FnMut(&mut S, &TopoCtx<'_>) -> NodeId,
    ) -> Topology {
        let mut tiers: Vec<(String, Vec<NodeId>)> = Vec::with_capacity(self.tiers.len());
        let mut parents_map: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (ti, spec) in self.tiers.iter().enumerate() {
            let above: &[NodeId] = if ti == 0 { &[] } else { &tiers[ti - 1].1 };
            let mut ids = Vec::with_capacity(spec.count);
            for j in 0..spec.count {
                let parents = assign_parents(j, spec.parents_per_node, above, spec.parent_mode);
                let ctx = TopoCtx {
                    tier: ti,
                    tier_name: &spec.name,
                    index: j,
                    parents: &parents,
                    name: format!("{}{}", spec.name, j),
                };
                let id = factory(sim, &ctx);
                for &p in &parents {
                    sim.set_link(id, p, spec.link);
                }
                parents_map.insert(id, parents);
                ids.push(id);
            }
            tiers.push((spec.name.clone(), ids));
        }
        // Intra-tier peer interconnects (after every member exists).
        let mut peer_edges: Vec<(NodeId, NodeId)> = Vec::new();
        for p in &self.peerings {
            let members: &[NodeId] = tiers
                .iter()
                .find(|(n, _)| *n == p.tier)
                .map(|(_, t)| t.as_slice())
                .unwrap_or(&[]);
            let n = members.len();
            let mut wire = |a: NodeId, b: NodeId| {
                sim.set_link(a, b, p.link);
                peer_edges.push((a, b));
            };
            match p.wiring {
                PeerWiring::Ring => {
                    for i in 0..n {
                        let j = (i + 1) % n;
                        // A 1-ring has no edge; a 2-ring has exactly one.
                        if i == j || (n == 2 && i == 1) {
                            continue;
                        }
                        wire(members[i], members[j]);
                    }
                }
                PeerWiring::FullMesh => {
                    for i in 0..n {
                        for j in i + 1..n {
                            wire(members[i], members[j]);
                        }
                    }
                }
            }
        }
        Topology {
            tiers,
            parents: parents_map,
            peer_edges,
        }
    }
}

/// Deterministic parent pick. `Rotate`: primary is round-robin (`j % M`),
/// extra parents walk forward from the primary, never repeating.
/// `Aligned`: every child takes `above[0..take]` in identical order.
fn assign_parents(j: usize, want: usize, above: &[NodeId], mode: ParentMode) -> Vec<NodeId> {
    let m = above.len();
    if m == 0 || want == 0 {
        return Vec::new();
    }
    let take = want.min(m);
    match mode {
        ParentMode::Rotate => (0..take).map(|s| above[(j + s) % m]).collect(),
        ParentMode::Aligned => above[..take].to_vec(),
    }
}

/// The built topology: tier membership, parent sets, and edges.
#[derive(Debug, Clone)]
pub struct Topology {
    tiers: Vec<(String, Vec<NodeId>)>,
    parents: HashMap<NodeId, Vec<NodeId>>,
    /// Intra-tier peer interconnect edges (unordered pairs, wiring order).
    peer_edges: Vec<(NodeId, NodeId)>,
}

impl Topology {
    /// Number of tiers.
    pub fn depth(&self) -> usize {
        self.tiers.len()
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.tiers.iter().map(|(_, t)| t.len()).sum()
    }

    /// Nodes at tier `i` (0 = top).
    pub fn tier(&self, i: usize) -> &[NodeId] {
        &self.tiers[i].1
    }

    /// Nodes of the tier labelled `name` (empty slice when absent).
    pub fn tier_named(&self, name: &str) -> &[NodeId] {
        self.tiers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_slice())
            .unwrap_or(&[])
    }

    /// The parents of `node`, primary first.
    pub fn parents_of(&self, node: NodeId) -> &[NodeId] {
        self.parents.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The primary (first) parent of `node`.
    pub fn primary_parent(&self, node: NodeId) -> Option<NodeId> {
        self.parents_of(node).first().copied()
    }

    /// Every (parent, child) attachment in the topology, top-down.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.tiers.iter().flat_map(move |(_, tier)| {
            tier.iter()
                .flat_map(move |&child| self.parents_of(child).iter().map(move |&p| (p, child)))
        })
    }

    /// Every intra-tier peer interconnect edge (core federation wiring),
    /// as unordered pairs in wiring order.
    pub fn peer_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.peer_edges.iter().copied()
    }

    /// The peers `node` is interconnected with (via
    /// [`TopoBuilder::peer_ring`] / [`TopoBuilder::peer_full_mesh`]).
    pub fn peers_of(&self, node: NodeId) -> Vec<NodeId> {
        self.peer_edges
            .iter()
            .filter_map(|&(a, b)| match node {
                n if n == a => Some(b),
                n if n == b => Some(a),
                _ => None,
            })
            .collect()
    }

    /// Every *primary* (parent, child) edge — the distribution tree used
    /// by single-parent routing even when extra failover parents exist.
    pub fn primary_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.tiers.iter().flat_map(move |(_, tier)| {
            tier.iter()
                .filter_map(move |&child| self.primary_parent(child).map(|p| (p, child)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Addr, Ctx, Node};
    use std::any::Any;
    use std::time::Duration;

    struct Silent;
    impl Node for Silent {
        fn on_datagram(&mut self, _: &mut Ctx<'_>, _: Addr, _: u16, _: crate::Payload) {}
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    fn silent(sim: &mut Simulator, ctx: &TopoCtx<'_>) -> NodeId {
        sim.add_node(ctx.name.clone(), Box::new(Silent))
    }

    #[test]
    fn three_tier_tree_shape() {
        let mut sim = Simulator::new(1);
        let topo = TopoBuilder::new()
            .tier("auth", 1, 0, LinkConfig::instant())
            .tier(
                "tier1",
                2,
                1,
                LinkConfig::with_delay(Duration::from_millis(10)),
            )
            .tier(
                "edge",
                4,
                1,
                LinkConfig::with_delay(Duration::from_millis(5)),
            )
            .build(&mut sim, silent);
        assert_eq!(topo.depth(), 3);
        assert_eq!(topo.node_count(), 7);
        assert_eq!(topo.tier(0).len(), 1);
        assert_eq!(topo.tier_named("edge").len(), 4);
        assert!(topo.tier_named("nope").is_empty());
        // Round-robin: edges 0,2 under tier1[0]; edges 1,3 under tier1[1].
        let t1 = topo.tier_named("tier1");
        let edge = topo.tier_named("edge");
        assert_eq!(topo.primary_parent(edge[0]), Some(t1[0]));
        assert_eq!(topo.primary_parent(edge[1]), Some(t1[1]));
        assert_eq!(topo.primary_parent(edge[2]), Some(t1[0]));
        assert_eq!(topo.primary_parent(edge[3]), Some(t1[1]));
        // The root has no parents.
        assert!(topo.parents_of(topo.tier(0)[0]).is_empty());
        assert_eq!(topo.edges().count(), 6);
        assert_eq!(topo.primary_edges().count(), 6);
    }

    #[test]
    fn mesh_tier_gets_multiple_parents() {
        let mut sim = Simulator::new(1);
        let topo = TopoBuilder::new()
            .tier("core", 3, 0, LinkConfig::instant())
            .tier("edge", 4, 2, LinkConfig::instant())
            .build(&mut sim, silent);
        for &e in topo.tier_named("edge") {
            let ps = topo.parents_of(e);
            assert_eq!(ps.len(), 2);
            assert_ne!(ps[0], ps[1], "distinct parents");
        }
        // parents_per_node is clamped to the tier-above size.
        let mut sim2 = Simulator::new(1);
        let topo2 = TopoBuilder::new()
            .tier("core", 1, 0, LinkConfig::instant())
            .tier("edge", 2, 5, LinkConfig::instant())
            .build(&mut sim2, silent);
        assert_eq!(topo2.parents_of(topo2.tier_named("edge")[0]).len(), 1);
    }

    #[test]
    fn k_ary_convenience() {
        let mut sim = Simulator::new(1);
        let topo =
            TopoBuilder::k_ary("root", &[2, 4], LinkConfig::instant()).build(&mut sim, silent);
        assert_eq!(topo.tier(0).len(), 1);
        assert_eq!(topo.tier(1).len(), 2);
        assert_eq!(topo.tier(2).len(), 8);
        // Every non-root node has exactly one parent.
        assert_eq!(topo.edges().count(), 10);
    }

    #[test]
    fn chain_convenience_builds_deep_path() {
        let mut sim = Simulator::new(1);
        let topo = TopoBuilder::chain("auth", 5, LinkConfig::instant())
            .tier("stub", 3, 1, LinkConfig::instant())
            .build(&mut sim, silent);
        // 1 origin + 5 relay hops + 3 stubs.
        assert_eq!(topo.depth(), 7);
        assert_eq!(topo.node_count(), 9);
        for i in 1..=5 {
            let tier = topo.tier_named(&format!("hop{i}"));
            assert_eq!(tier.len(), 1);
            assert_eq!(topo.parents_of(tier[0]).len(), 1);
        }
        // The chain is a straight line: hop5's parent is hop4 and so on
        // up to the origin.
        assert_eq!(
            topo.primary_parent(topo.tier_named("hop5")[0]),
            Some(topo.tier_named("hop4")[0])
        );
        assert_eq!(
            topo.primary_parent(topo.tier_named("hop1")[0]),
            Some(topo.tier_named("auth")[0])
        );
    }

    #[test]
    fn mesh_convenience_aligns_edge_uplinks() {
        let mut sim = Simulator::new(1);
        let topo = TopoBuilder::mesh("origin", 3, 2, 2, LinkConfig::instant())
            .tier("stub", 4, 1, LinkConfig::instant())
            .build(&mut sim, silent);
        let cores = topo.tier_named("core");
        assert_eq!(cores.len(), 3);
        let edges = topo.tier_named("edge");
        assert_eq!(edges.len(), 4, "2 regions x 2 edges");
        // Aligned: uplink i names core i at EVERY edge — the property
        // hash sharding needs for shard indices to be globally meaningful.
        for &e in edges {
            assert_eq!(topo.parents_of(e), cores);
        }
        // Every core attaches to the single origin.
        let origin = topo.tier_named("origin")[0];
        for &c in cores {
            assert_eq!(topo.parents_of(c), &[origin]);
        }
    }

    #[test]
    fn peer_ring_wires_adjacent_members() {
        let mut sim = Simulator::new(1);
        let topo = TopoBuilder::new()
            .tier("origin", 1, 0, LinkConfig::instant())
            .tier("core", 4, 1, LinkConfig::instant())
            .peer_ring("core", LinkConfig::with_delay(Duration::from_millis(40)))
            .build(&mut sim, silent);
        let cores = topo.tier_named("core");
        let edges: Vec<_> = topo.peer_edges().collect();
        assert_eq!(edges.len(), 4, "4-ring has 4 edges");
        for i in 0..4 {
            assert!(edges.contains(&(cores[i], cores[(i + 1) % 4])));
            assert_eq!(topo.peers_of(cores[i]).len(), 2, "two ring neighbours");
        }
        // Parent edges are untouched by the peering.
        assert_eq!(topo.edges().count(), 4);
    }

    #[test]
    fn peer_ring_degenerate_sizes() {
        let build = |n| {
            let mut sim = Simulator::new(1);
            TopoBuilder::new()
                .tier("core", n, 0, LinkConfig::instant())
                .peer_ring("core", LinkConfig::instant())
                .build(&mut sim, silent)
                .peer_edges()
                .count()
        };
        assert_eq!(build(1), 0, "no self-loop");
        assert_eq!(build(2), 1, "a 2-ring is one edge, not two");
        assert_eq!(build(3), 3);
    }

    #[test]
    fn peer_full_mesh_wires_all_pairs() {
        let mut sim = Simulator::new(1);
        let topo = TopoBuilder::new()
            .tier("core", 4, 0, LinkConfig::instant())
            .peer_full_mesh("core", LinkConfig::with_delay(Duration::from_millis(40)))
            .build(&mut sim, silent);
        assert_eq!(topo.peer_edges().count(), 6, "C(4,2) pairs");
        for &c in topo.tier_named("core") {
            assert_eq!(topo.peers_of(c).len(), 3, "every other core is a peer");
        }
        // An unknown tier name peers nothing.
        let mut sim2 = Simulator::new(1);
        let topo2 = TopoBuilder::new()
            .tier("core", 2, 0, LinkConfig::instant())
            .peer_full_mesh("nope", LinkConfig::instant())
            .build(&mut sim2, silent);
        assert_eq!(topo2.peer_edges().count(), 0);
    }

    #[test]
    fn deterministic_wiring() {
        let build = || {
            let mut sim = Simulator::new(9);
            let topo = TopoBuilder::new()
                .tier("a", 2, 0, LinkConfig::instant())
                .tier("b", 5, 2, LinkConfig::instant())
                .build(&mut sim, silent);
            topo.edges().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn factory_sees_context() {
        let mut sim = Simulator::new(1);
        let mut seen = Vec::new();
        TopoBuilder::new()
            .tier("x", 1, 0, LinkConfig::instant())
            .tier("y", 2, 1, LinkConfig::instant())
            .build(&mut sim, |sim, ctx| {
                seen.push((ctx.tier, ctx.index, ctx.name.clone(), ctx.parents.len()));
                sim.add_node(ctx.name.clone(), Box::new(Silent))
            });
        assert_eq!(
            seen,
            vec![
                (0, 0, "x0".into(), 0),
                (1, 0, "y0".into(), 1),
                (1, 1, "y1".into(), 1),
            ]
        );
    }
}
