//! Determinism parity under loss and active fault plans.
//!
//! Two contracts pinned end-to-end at the netsim layer:
//!
//! 1. **Lossy-link determinism** (property test): a seeded world whose
//!    links drop and jitter (`loss > 0`) produces the *identical*
//!    delivery digest on every run, single-threaded and for every
//!    worker count — loss draws come from per-link deterministic
//!    streams, never the shard RNG, so sharding cannot move them.
//! 2. **Fault-plan parity**: applying the same seeded [`FaultPlan`]
//!    (flaps, partition windows, crash/restart callbacks) leaves the
//!    merged event history bit-identical for W ∈ {1, 2, N}.

use moqdns_netsim::faults::{run_plan, FaultPlan, FaultPlanBuilder, NodeFault};
use moqdns_netsim::{Addr, Ctx, LinkConfig, Node, NodeId, ParSim, Payload, SimTime, Simulator};
use proptest::prelude::*;
use std::any::Any;
use std::time::Duration;

const REGIONS: usize = 3;
const NODES_PER_REGION: usize = 3;

/// A chatty node: every 7 ms it sends a sequenced datagram to each of
/// its peers, and every third tick it also consumes node RNG — which
/// must never shift any link's loss pattern.
struct Chatter {
    peers: Vec<Addr>,
    seq: u64,
    ticks: u64,
    /// Dead nodes drop everything and stop ticking (the crash drill).
    alive: bool,
    heard: u64,
}

impl Chatter {
    fn new(peers: Vec<Addr>) -> Chatter {
        Chatter {
            peers,
            seq: 0,
            ticks: 0,
            alive: true,
            heard: 0,
        }
    }
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration::from_millis(7), 1);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if !self.alive {
            return;
        }
        self.ticks += 1;
        if self.ticks.is_multiple_of(3) {
            // Node-level randomness interleaved with lossy traffic.
            ctx.random_u64();
        }
        for &peer in &self.peers {
            ctx.send(1, peer, self.seq.to_be_bytes().to_vec());
        }
        self.seq += 1;
        ctx.set_timer(Duration::from_millis(7), 1);
    }
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _from: Addr, _port: u16, _payload: Payload) {
        if self.alive {
            self.heard += 1;
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

/// Host-building abstraction: the same world on a `Simulator` or a
/// `ParSim` with any worker count.
#[allow(clippy::large_enum_variant)]
enum Host {
    Single(Simulator),
    Par(ParSim),
}

impl Host {
    fn digest(&self) -> u64 {
        match self {
            Host::Single(s) => s.delivery_digest(),
            Host::Par(p) => p.delivery_digest(),
        }
    }
    fn heard_total(&self, nodes: &[NodeId]) -> u64 {
        nodes
            .iter()
            .map(|&id| match self {
                Host::Single(s) => s.node_ref::<Chatter>(id).heard,
                Host::Par(p) => p.node_ref::<Chatter>(id).heard,
            })
            .sum()
    }
}

impl moqdns_netsim::FaultHost for Host {
    fn now(&self) -> SimTime {
        match self {
            Host::Single(s) => s.now(),
            Host::Par(p) => p.now(),
        }
    }
    fn run_until(&mut self, deadline: SimTime) {
        match self {
            Host::Single(s) => {
                s.run_until(deadline);
            }
            Host::Par(p) => {
                p.run_until(deadline);
            }
        }
    }
    fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        match self {
            Host::Single(s) => s.set_link(a, b, cfg),
            Host::Par(p) => p.set_link(a, b, cfg),
        }
    }
    fn set_link_directed(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        match self {
            Host::Single(s) => s.set_link_directed(src, dst, cfg),
            Host::Par(p) => p.set_link_directed(src, dst, cfg),
        }
    }
}

fn intra_link() -> LinkConfig {
    LinkConfig::with_delay(Duration::from_millis(2))
}

fn cross_link(loss: f64) -> LinkConfig {
    LinkConfig::with_delay(Duration::from_millis(20))
        .jitter(Duration::from_millis(3))
        .loss(loss)
}

/// Builds a 3-region full-mesh world: every node peers with one node in
/// each other region (lossy cross links) and its regional neighbours
/// (clean links). Node ids are identical across hosts because creation
/// order is identical.
fn build_world(seed: u64, loss: f64, workers: usize) -> (Host, Vec<NodeId>) {
    let mut host = if workers == 0 {
        Host::Single(Simulator::new(seed))
    } else {
        Host::Par(ParSim::new(seed, workers))
    };
    let mut ids: Vec<Vec<NodeId>> = vec![Vec::new(); REGIONS];
    let total = REGIONS * NODES_PER_REGION;
    // Peers are computed from the (deterministic) global index grid.
    let id_at = |r: usize, n: usize| NodeId::from_index(r * NODES_PER_REGION + n);
    for (r, region_ids) in ids.iter_mut().enumerate() {
        for n in 0..NODES_PER_REGION {
            let mut peers = Vec::new();
            // One cross-region peer in every other region (same slot).
            for o in 0..REGIONS {
                if o != r {
                    peers.push(Addr::new(id_at(o, n), 1));
                }
            }
            // The next node in the same region.
            peers.push(Addr::new(id_at(r, (n + 1) % NODES_PER_REGION), 1));
            let node = Box::new(Chatter::new(peers));
            let id = match &mut host {
                Host::Single(s) => s.add_node(format!("r{r}n{n}"), node),
                Host::Par(p) => {
                    p.add_node(r.min(workers.saturating_sub(1)), format!("r{r}n{n}"), node)
                }
            };
            assert_eq!(id.index(), r * NODES_PER_REGION + n);
            region_ids.push(id);
        }
    }
    for a in 0..total {
        for b in (a + 1)..total {
            let (ra, rb) = (a / NODES_PER_REGION, b / NODES_PER_REGION);
            let cfg = if ra == rb {
                intra_link()
            } else {
                cross_link(loss)
            };
            let (na, nb) = (NodeId::from_index(a), NodeId::from_index(b));
            match &mut host {
                Host::Single(s) => s.set_link(na, nb, cfg),
                Host::Par(p) => p.set_link(na, nb, cfg),
            }
        }
    }
    match &mut host {
        Host::Single(s) => s.enable_delivery_digest(),
        Host::Par(p) => p.enable_delivery_digest(),
    }
    (host, ids.concat())
}

/// A plan exercising every fault kind: flap one cross link through the
/// middle of the run, partition region 2 for a window, crash one node
/// and restart it later.
fn chaos_plan(loss: f64) -> FaultPlan {
    let id_at = |r: usize, n: usize| NodeId::from_index(r * NODES_PER_REGION + n);
    let mut cut = Vec::new();
    for n in 0..NODES_PER_REGION {
        for o in 0..REGIONS - 1 {
            for m in 0..NODES_PER_REGION {
                cut.push((id_at(o, m), id_at(REGIONS - 1, n), cross_link(loss)));
            }
        }
    }
    FaultPlanBuilder::new(0xC4A05)
        .window_jitter(Duration::from_millis(4))
        .flap(
            id_at(0, 0),
            id_at(1, 0),
            cross_link(loss),
            SimTime::from_millis(100),
            SimTime::from_millis(220),
        )
        .partition(&cut, SimTime::from_millis(300), SimTime::from_millis(380))
        .crash(id_at(1, 1), SimTime::from_millis(150))
        .restart(id_at(1, 1), SimTime::from_millis(400))
        .build()
}

fn run_chaos(seed: u64, loss: f64, workers: usize) -> (u64, u64) {
    let (mut host, ids) = build_world(seed, loss, workers);
    let plan = chaos_plan(loss);
    run_plan(
        &mut host,
        &plan,
        SimTime::from_millis(600),
        |host, node, fault| {
            let alive = fault == NodeFault::Restart;
            match host {
                Host::Single(s) => s.with_node::<Chatter, _>(node, |c, ctx| {
                    c.alive = alive;
                    if alive {
                        ctx.set_timer(Duration::from_millis(7), 1);
                    }
                }),
                Host::Par(p) => p.with_node::<Chatter, _>(node, |c, ctx| {
                    c.alive = alive;
                    if alive {
                        ctx.set_timer(Duration::from_millis(7), 1);
                    }
                }),
            }
        },
    );
    (host.digest(), host.heard_total(&ids))
}

fn run_plain(seed: u64, loss: f64, workers: usize) -> (u64, u64) {
    let (mut host, ids) = build_world(seed, loss, workers);
    use moqdns_netsim::FaultHost;
    host.run_until(SimTime::from_millis(600));
    (host.digest(), host.heard_total(&ids))
}

#[test]
fn fault_plan_parity_across_worker_counts() {
    let single = run_chaos(42, 0.15, 0);
    assert!(single.1 > 0, "world must deliver something");
    for workers in [1usize, 2, REGIONS] {
        let par = run_chaos(42, 0.15, workers);
        assert_eq!(single, par, "fault-plan run diverged at {workers} workers");
    }
}

#[test]
fn crash_window_suppresses_and_restart_resumes() {
    // Sanity on the drill itself: the crashed node hears nothing while
    // down, and the fleet keeps delivering after every fault heals.
    let chaotic = run_chaos(42, 0.0, 0);
    let calm = run_plain(42, 0.0, 0);
    assert!(
        chaotic.1 < calm.1,
        "faults must suppress some deliveries: {} !< {}",
        chaotic.1,
        calm.1
    );
}

proptest! {
    // Task-7 property: lossy worlds are reproducible — same seed, same
    // digest — on repeated runs and across shardings (incl. --par 2).
    #[test]
    fn prop_lossy_world_digest_is_sharding_invariant(seed in any::<u64>(), loss_pct in 1u32..60) {
        let loss = f64::from(loss_pct) / 100.0;
        let first = run_plain(seed, loss, 0);
        prop_assert!(first.1 > 0);
        prop_assert_eq!(first, run_plain(seed, loss, 0));
        prop_assert_eq!(first, run_plain(seed, loss, 2));
    }

    // Same property with an active fault plan on top.
    #[test]
    fn prop_chaos_digest_is_sharding_invariant(seed in any::<u64>(), loss_pct in 1u32..40) {
        let loss = f64::from(loss_pct) / 100.0;
        let first = run_chaos(seed, loss, 0);
        prop_assert_eq!(first, run_chaos(seed, loss, 0));
        prop_assert_eq!(first, run_chaos(seed, loss, 2));
    }
}
