//! Transport configuration.

use std::time::Duration;

/// Tunables for a connection/endpoint.
///
/// Defaults are chosen for the DNS-over-MoQT workloads: long-lived,
/// low-bandwidth sessions that must stay alive across quiet periods
/// (paper §5.1).
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// RTT estimate used before any sample exists.
    pub initial_rtt: Duration,
    /// Connection dies after this long without receiving anything
    /// (QUIC `max_idle_timeout`).
    pub max_idle_timeout: Duration,
    /// If set, send a PING whenever the connection has been quiet this long
    /// — the liveness testing §5.1 calls for. Must be well under
    /// `max_idle_timeout` to be useful.
    pub keep_alive_interval: Option<Duration>,
    /// Maximum datagram (UDP payload) size we emit.
    pub max_udp_payload: usize,
    /// Connection-level flow control window (bytes).
    pub max_data: u64,
    /// Per-stream flow control window (bytes).
    pub max_stream_data: u64,
    /// How many concurrent streams the peer may open, per direction.
    pub max_streams: u64,
    /// Whether we accept DATAGRAM frames (RFC 9221).
    pub datagrams_enabled: bool,
    /// Initial congestion window in bytes.
    pub initial_cwnd: u64,
    /// Packet-threshold for loss declaration.
    pub packet_threshold: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            initial_rtt: Duration::from_millis(100),
            max_idle_timeout: Duration::from_secs(30),
            keep_alive_interval: None,
            max_udp_payload: 1350,
            max_data: 4 * 1024 * 1024,
            max_stream_data: 1024 * 1024,
            max_streams: 1024,
            datagrams_enabled: true,
            initial_cwnd: 12_000,
            packet_threshold: 3,
        }
    }
}

impl TransportConfig {
    /// Sets the keep-alive interval (builder style).
    pub fn keep_alive(mut self, every: Duration) -> Self {
        self.keep_alive_interval = Some(every);
        self
    }

    /// Sets the idle timeout (builder style).
    pub fn idle_timeout(mut self, t: Duration) -> Self {
        self.max_idle_timeout = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TransportConfig::default();
        assert!(c.max_udp_payload >= 1200);
        assert!(c.max_stream_data <= c.max_data);
        assert!(c.keep_alive_interval.is_none());
    }

    #[test]
    fn builders() {
        let c = TransportConfig::default()
            .keep_alive(Duration::from_secs(5))
            .idle_timeout(Duration::from_secs(60));
        assert_eq!(c.keep_alive_interval, Some(Duration::from_secs(5)));
        assert_eq!(c.max_idle_timeout, Duration::from_secs(60));
    }
}
