//! The connection state machine.
//!
//! Sans-io, quinn-proto style: the driver feeds `handle_datagram` /
//! `handle_timeout`, drains `poll_transmit` (each call yields one UDP
//! datagram, possibly with coalesced packets), arms the timer returned by
//! `poll_timeout`, and consumes application-visible [`Event`]s from
//! `poll_event`.
//!
//! The lifecycle is an explicit one-way machine — `Handshaking →
//! Established → Draining → Closed` (see the internal `State` docs for the
//! full edge set and the idle-timeout/keep-alive liveness contract).
//! Every transition funnels through a single checked helper, and the
//! machine is observable via [`Connection::conn_state`]; the property test
//! in `tests/conn_model.rs` pins the legal-transition contract against
//! arbitrary event interleavings.
//!
//! Handshake latency semantics (the properties the paper's §5.2 depends on):
//!
//! * fresh connection: ClientHello flies in an Initial packet; application
//!   data waits for the ServerHello → exactly one RTT of setup;
//! * resumption with 0-RTT: stream data written before the handshake
//!   completes is sent in ZeroRtt packets coalesced with the ClientHello —
//!   the server reads it in the same flight. If the server rejects early
//!   data it simply never ACKs those packets; normal loss recovery
//!   retransmits the data as 1-RTT after establishment;
//! * keep-alives and idle timeout implement §5.1's liveness requirements.
//!
//! Transport parameters are not negotiated on the wire: both endpoints are
//! assumed to run the same [`TransportConfig`] (true everywhere in this
//! workspace), so each side grants the peer its own configured limits.

use crate::config::TransportConfig;
use crate::frame::Frame;
use crate::handshake::{select_alpn, HandshakeMessage, Ticket};
use crate::packet::{decode_datagram_payload, encode_datagram_into, Packet, PacketType};
use crate::recovery::{AckTracker, Recovery, RetxInfo, SentPacket};
use crate::streams::{Dir, RecvStream, SendStream, StreamId};
use moqdns_netsim::SimTime;
use moqdns_wire::{BufPool, Payload};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// One ALPN protocol name. A shared handle: cloning an offer list into a
/// connection, a ticket-store key, or a `Connected` event bumps a
/// refcount instead of copying strings.
pub type Alpn = Arc<[u8]>;

/// An ordered ALPN offer/support list, shared the same way — endpoints
/// build one list at startup and every `connect` clones the handle.
pub type AlpnList = Arc<[Alpn]>;

/// Builds an [`AlpnList`] from protocol name slices.
pub fn alpn_list(protos: &[&[u8]]) -> AlpnList {
    protos.iter().map(|p| Alpn::from(*p)).collect()
}

/// Which end of the connection we are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Initiator.
    Client,
    /// Acceptor.
    Server,
}

/// Application-visible connection events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Handshake complete; application data may flow (client: ServerHello
    /// processed; server: ClientHello processed).
    Connected {
        /// Negotiated ALPN protocol.
        alpn: Alpn,
        /// For clients that attempted 0-RTT: whether the server accepted.
        early_data_accepted: Option<bool>,
    },
    /// The peer opened a new stream.
    StreamOpened {
        /// The new stream's id.
        id: StreamId,
    },
    /// A stream has data (or FIN) available to read.
    StreamReadable {
        /// The readable stream.
        id: StreamId,
    },
    /// An unreliable datagram arrived (RFC 9221). The payload is a
    /// shared handle into the decoded packet's storage.
    DatagramReceived(Payload),
    /// The server issued a resumption ticket (client side).
    TicketIssued(Ticket),
    /// The connection terminated.
    Closed {
        /// Error code (0 = clean).
        error_code: u64,
        /// Reason phrase.
        reason: String,
        /// True if the peer initiated (or the idle timer fired remotely).
        by_peer: bool,
    },
}

/// Errors from application calls into the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionError {
    /// The connection is closed.
    Closed,
    /// Peer's stream-count limit reached.
    StreamLimit,
    /// Unknown stream id.
    UnknownStream,
    /// Datagrams are disabled or the payload exceeds the MTU budget.
    DatagramUnsupported,
}

impl std::fmt::Display for ConnectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectionError::Closed => write!(f, "connection closed"),
            ConnectionError::StreamLimit => write!(f, "stream limit reached"),
            ConnectionError::UnknownStream => write!(f, "unknown stream"),
            ConnectionError::DatagramUnsupported => write!(f, "datagram unsupported"),
        }
    }
}

impl std::error::Error for ConnectionError {}

/// Connection lifecycle. Transitions are one-way and go through
/// [`Connection::transition`], which asserts edge legality:
///
/// ```text
/// Handshaking ──→ Established ──→ Draining ──→ Closed
///      │                │                        ▲
///      └────────────────┴────────────────────────┘
/// ```
///
/// * `Handshaking` — waiting for the peer's handshake flight. No 1-RTT
///   application data is accepted (clients may send 0-RTT).
/// * `Established` — handshake complete; the liveness contract is active:
///   we close after `max_idle_timeout` without receiving anything, and (if
///   configured) send a keep-alive PING once `keep_alive_interval` passes
///   without transmitting, so an idle-but-healthy connection never trips
///   the peer's idle timer.
/// * `Draining` — we initiated termination and the CONNECTION_CLOSE frame
///   is queued but not yet flushed; the next `poll_transmit` emits it and
///   moves to `Closed`. Incoming datagrams are still parsed (a crossing
///   peer close is absorbed without a duplicate event), the application
///   API already rejects with [`ConnectionError::Closed`], and all timers
///   are off.
/// * `Closed` — terminal and inert: nothing is sent, received datagrams
///   are dropped, timers are off. Reached directly (skipping `Draining`)
///   when there is nothing to say on the wire: peer-initiated close, idle
///   timeout (QUIC closes silently), or a handshake refusal from the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum State {
    Handshaking,
    Established,
    Draining,
    Closed,
}

/// Externally observable connection lifecycle phase (see the state diagram
/// on the internal `State`). Exposed for drills and model tests that pin
/// the state machine's legal-transition contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConnState {
    /// Waiting for the peer's handshake flight.
    Handshaking,
    /// Handshake complete; idle-timeout/keep-alive contract active.
    Established,
    /// Locally closed; terminal CONNECTION_CLOSE not yet flushed.
    Draining,
    /// Terminal and inert.
    Closed,
}

/// Traffic counters for a connection (used by the overhead experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Packets transmitted.
    pub packets_sent: u64,
    /// Packets received (valid ones).
    pub packets_received: u64,
    /// UDP payload bytes transmitted.
    pub bytes_sent: u64,
    /// UDP payload bytes received.
    pub bytes_received: u64,
    /// PING frames sent (keep-alive traffic, §5.1).
    pub pings_sent: u64,
}

/// A QUIC-like connection.
pub struct Connection {
    side: Side,
    cid: u64,
    config: TransportConfig,
    state: State,
    created_at: SimTime,

    // --- handshake ---
    /// Outbound handshake message (CH for clients, SH/Retry for servers).
    crypto_out: Option<Vec<u8>>,
    crypto_pending: bool,
    handshake_processed: bool,
    alpn_offer: AlpnList,
    alpn_supported: AlpnList,
    selected_alpn: Option<Alpn>,
    ticket: Option<Ticket>,
    ticket_nonce: u64,
    attempted_early_data: bool,
    /// ZeroRtt packets that arrived before the ClientHello.
    early_buffer: Vec<Packet>,
    accept_early_data: bool,

    // --- packet machinery ---
    next_pn: u64,
    recovery: Recovery,
    acks: AckTracker,

    // --- streams ---
    send_streams: BTreeMap<StreamId, SendStream>,
    recv_streams: BTreeMap<StreamId, RecvStream>,
    /// Streams that may have data or FIN waiting to transmit. Kept as a
    /// queue so `poll_transmit` visits only these instead of scanning the
    /// whole `send_streams` map (a relay uplink holds hundreds of idle
    /// one-shot streams awaiting final ACKs). Ordered, so packetization
    /// visits streams in the same ascending id order the full scan did.
    /// May briefly hold streams with nothing pending; pruned lazily.
    pending_streams: BTreeSet<StreamId>,
    next_bi_index: u64,
    next_uni_index: u64,
    /// Highest peer-initiated index seen, per direction (for accepting).
    peer_opened_bi: u64,
    peer_opened_uni: u64,
    /// Peer-initiated uni streams read to FIN and released. Tracked as a
    /// dense watermark (`index < retired_uni_recv_below`) plus a sparse
    /// overflow set, so late retransmissions for a pruned stream are not
    /// mistaken for new peer streams.
    retired_uni_recv_below: u64,
    retired_uni_recv: BTreeSet<u64>,

    // --- flow control ---
    /// Peer's connection-level credit for us.
    peer_max_data: u64,
    /// Stream bytes we have sent (connection level).
    data_sent: u64,
    /// Credit we granted the peer.
    local_max_data: u64,
    /// Bytes received (connection level, by highest offsets).
    data_received: u64,
    /// Bytes consumed by our application.
    data_consumed: u64,
    pending_max_data: bool,
    pending_max_stream_data: BTreeSet<StreamId>,

    // --- datagrams ---
    datagram_queue_out: VecDeque<Payload>,

    // --- liveness ---
    last_rx: SimTime,
    last_tx: SimTime,
    ping_pending: bool,

    // --- closing ---
    /// Terminal CONNECTION_CLOSE queued while `Draining`; taken by the
    /// flush in `poll_transmit`.
    close_frame: Option<(u64, Vec<u8>)>,

    events: VecDeque<Event>,
    readable_notified: BTreeSet<StreamId>,
    stats: ConnStats,
    /// Recycled encode buffers for outgoing datagrams.
    pool: BufPool,
}

impl Connection {
    /// Creates a client connection; its first `poll_transmit` emits the
    /// ClientHello (plus any 0-RTT data written before that call).
    pub fn client(
        cid: u64,
        config: TransportConfig,
        alpn: AlpnList,
        ticket: Option<Ticket>,
        now: SimTime,
    ) -> Connection {
        let attempted_early = ticket.is_some();
        let ch = HandshakeMessage::ClientHello {
            alpn: alpn.to_vec(),
            ticket: ticket.clone(),
            early_data: attempted_early,
        };
        let mut c = Connection::new(Side::Client, cid, config, now);
        c.alpn_offer = alpn;
        c.ticket = ticket;
        c.attempted_early_data = attempted_early;
        c.crypto_out = Some(ch.encode());
        c.crypto_pending = true;
        c
    }

    /// Creates a server connection for an incoming Initial packet's cid.
    /// `ticket_nonce` seeds the resumption ticket this server will issue.
    pub fn server(
        cid: u64,
        config: TransportConfig,
        supported_alpn: AlpnList,
        ticket_nonce: u64,
        now: SimTime,
    ) -> Connection {
        let mut c = Connection::new(Side::Server, cid, config, now);
        c.alpn_supported = supported_alpn;
        c.ticket_nonce = ticket_nonce;
        c
    }

    fn new(side: Side, cid: u64, config: TransportConfig, now: SimTime) -> Connection {
        let recovery = Recovery::new(
            config.initial_rtt,
            config.initial_cwnd,
            config.packet_threshold,
        );
        Connection {
            side,
            cid,
            state: State::Handshaking,
            created_at: now,
            crypto_out: None,
            crypto_pending: false,
            handshake_processed: false,
            alpn_offer: AlpnList::from([]),
            alpn_supported: AlpnList::from([]),
            selected_alpn: None,
            ticket: None,
            ticket_nonce: 0,
            attempted_early_data: false,
            early_buffer: Vec::new(),
            accept_early_data: true,
            next_pn: 0,
            recovery,
            acks: AckTracker::default(),
            send_streams: BTreeMap::new(),
            recv_streams: BTreeMap::new(),
            pending_streams: BTreeSet::new(),
            next_bi_index: 0,
            next_uni_index: 0,
            peer_opened_bi: 0,
            peer_opened_uni: 0,
            retired_uni_recv_below: 0,
            retired_uni_recv: BTreeSet::new(),
            peer_max_data: config.max_data,
            data_sent: 0,
            local_max_data: config.max_data,
            data_received: 0,
            data_consumed: 0,
            pending_max_data: false,
            pending_max_stream_data: BTreeSet::new(),
            datagram_queue_out: VecDeque::new(),
            last_rx: now,
            last_tx: now,
            ping_pending: false,
            close_frame: None,
            events: VecDeque::new(),
            readable_notified: BTreeSet::new(),
            stats: ConnStats::default(),
            pool: BufPool::default(),
            config,
        }
    }

    /// This connection's id.
    pub fn cid(&self) -> u64 {
        self.cid
    }

    /// Which side we are.
    pub fn side(&self) -> Side {
        self.side
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// True once the connection is terminating or terminated (`Draining`
    /// or `Closed`): the application API rejects, timers are off, and at
    /// most one more datagram (the terminal close flush) will be emitted.
    pub fn is_closed(&self) -> bool {
        self.state >= State::Draining
    }

    /// Current lifecycle phase (for drills and model tests).
    pub fn conn_state(&self) -> ConnState {
        match self.state {
            State::Handshaking => ConnState::Handshaking,
            State::Established => ConnState::Established,
            State::Draining => ConnState::Draining,
            State::Closed => ConnState::Closed,
        }
    }

    /// Moves the machine to `next`, asserting the edge is one of the legal
    /// one-way transitions in the `State` diagram. Every state change goes
    /// through here so an illegal edge is a loud bug in debug builds, not
    /// a silent wedge.
    fn transition(&mut self, next: State) {
        debug_assert!(
            Self::legal_edge(self.state, next),
            "illegal connection state transition {:?} -> {next:?}",
            self.state,
        );
        self.state = next;
    }

    fn legal_edge(from: State, to: State) -> bool {
        use State::*;
        matches!(
            (from, to),
            (Handshaking, Established)
                | (Handshaking, Draining)
                | (Handshaking, Closed)
                | (Established, Draining)
                | (Established, Closed)
                | (Draining, Closed)
        )
    }

    /// Negotiated ALPN (after establishment).
    pub fn alpn(&self) -> Option<&[u8]> {
        self.selected_alpn.as_deref()
    }

    /// Negotiated ALPN as a cheap shared handle (ticket-store keys).
    pub fn alpn_handle(&self) -> Option<&Alpn> {
        self.selected_alpn.as_ref()
    }

    /// Traffic counters.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// Smoothed RTT estimate.
    pub fn rtt(&self) -> std::time::Duration {
        self.recovery.rtt.srtt()
    }

    /// Server-side policy switch: refuse 0-RTT data (clients then fall back
    /// to retransmitting it as 1-RTT data — used in tests and ablations).
    pub fn set_accept_early_data(&mut self, accept: bool) {
        self.accept_early_data = accept;
    }

    /// Rough bytes of connection state held (E9 state-overhead experiment):
    /// stream buffers, recovery ledger, reassembly segments.
    pub fn state_size_estimate(&self) -> usize {
        let base = std::mem::size_of::<Connection>();
        let send: usize = self.send_streams.len() * 256;
        let recv: usize = self.recv_streams.len() * 256;
        base + send + recv + self.recovery.tracked() * 64
    }

    /// Per-connection state composition (diagnostics for the adversarial
    /// drills): `(send_streams, recv_streams, tracked_packets)`.
    pub fn state_breakdown(&self) -> (usize, usize, usize) {
        (
            self.send_streams.len(),
            self.recv_streams.len(),
            self.recovery.tracked(),
        )
    }

    /// Bytes of send-side backlog: stream data written but not yet
    /// acknowledged by the peer, plus queued datagrams. This is the state
    /// an unresponsive peer forces us to hold, so relays bound it per
    /// session (a small per-stream overhead charge keeps stream-count
    /// abuse visible too).
    pub fn send_backlog_bytes(&self) -> usize {
        let streams: usize = self
            .send_streams
            .values()
            .map(|s| 64 + s.buffered_bytes())
            .sum();
        let dgrams: usize = self.datagram_queue_out.iter().map(|d| d.len()).sum();
        streams + dgrams
    }

    /// Time since creation (diagnostics).
    pub fn age(&self, now: SimTime) -> std::time::Duration {
        now - self.created_at
    }

    // ------------------------------------------------------------------
    // Application API
    // ------------------------------------------------------------------

    /// Opens a new locally-initiated stream.
    pub fn open_stream(&mut self, dir: Dir) -> Result<StreamId, ConnectionError> {
        if self.is_closed() {
            return Err(ConnectionError::Closed);
        }
        let index = match dir {
            Dir::Bi => &mut self.next_bi_index,
            Dir::Uni => &mut self.next_uni_index,
        };
        if *index >= self.config.max_streams {
            return Err(ConnectionError::StreamLimit);
        }
        let id = StreamId::new(self.side == Side::Client, dir, *index);
        *index += 1;
        self.send_streams
            .insert(id, SendStream::new(self.config.max_stream_data));
        if dir == Dir::Bi {
            self.recv_streams
                .insert(id, RecvStream::new(self.config.max_stream_data));
        }
        Ok(id)
    }

    /// Writes application data to a stream; returns bytes accepted (may be
    /// short under flow control).
    pub fn send_stream(&mut self, id: StreamId, data: &[u8]) -> Result<usize, ConnectionError> {
        if self.is_closed() {
            return Err(ConnectionError::Closed);
        }
        let s = self
            .send_streams
            .get_mut(&id)
            .ok_or(ConnectionError::UnknownStream)?;
        // Connection-level flow control caps total outstanding writes.
        let conn_budget = self.peer_max_data.saturating_sub(self.data_sent) as usize;
        let n = s.write(&data[..data.len().min(conn_budget)]);
        self.data_sent += n as u64;
        if n > 0 {
            self.pending_streams.insert(id);
        }
        Ok(n)
    }

    /// Marks a stream finished (FIN).
    pub fn finish_stream(&mut self, id: StreamId) -> Result<(), ConnectionError> {
        self.send_streams
            .get_mut(&id)
            .ok_or(ConnectionError::UnknownStream)?
            .finish();
        self.pending_streams.insert(id);
        Ok(())
    }

    /// Reads up to `max` bytes from a stream. Returns `(data, finished)`.
    pub fn read_stream(
        &mut self,
        id: StreamId,
        max: usize,
    ) -> Result<(Vec<u8>, bool), ConnectionError> {
        let s = self
            .recv_streams
            .get_mut(&id)
            .ok_or(ConnectionError::UnknownStream)?;
        let before = s.consumed();
        let (data, fin) = s.read(max);
        let delta = s.consumed() - before;
        self.data_consumed += delta;
        self.readable_notified.remove(&id);
        let done_uni_peer =
            fin && id.dir() == Dir::Uni && id.initiated_by_client() != (self.side == Side::Client);
        if done_uni_peer {
            // One-shot stream fully delivered: release its reassembly
            // state and retire the index so a late retransmission cannot
            // resurrect it as a "new" peer stream.
            self.recv_streams.remove(&id);
            self.pending_max_stream_data.remove(&id);
            self.retire_uni_recv(id.index());
        } else if s.max_stream_data - s.consumed() < self.config.max_stream_data / 2 {
            // Replenish the per-stream flow-control window when
            // half-consumed.
            s.max_stream_data = s.consumed() + self.config.max_stream_data;
            self.pending_max_stream_data.insert(id);
        }
        if self.local_max_data - self.data_consumed < self.config.max_data / 2 {
            self.local_max_data = self.data_consumed + self.config.max_data;
            self.pending_max_data = true;
        }
        Ok((data, fin))
    }

    /// Queues an unreliable datagram (RFC 9221). Accepts anything
    /// convertible to a [`Payload`]; passing a `Payload` (e.g. when
    /// fanning one object out over many connections) shares the bytes
    /// instead of copying them.
    pub fn send_datagram(&mut self, data: impl Into<Payload>) -> Result<(), ConnectionError> {
        let data = data.into();
        if self.is_closed() {
            return Err(ConnectionError::Closed);
        }
        if !self.config.datagrams_enabled || data.len() + 32 > self.config.max_udp_payload {
            return Err(ConnectionError::DatagramUnsupported);
        }
        self.datagram_queue_out.push_back(data);
        Ok(())
    }

    /// Closes the connection with an error code and reason. The machine
    /// enters `Draining`; the next `poll_transmit` flushes the terminal
    /// CONNECTION_CLOSE and completes the move to `Closed`.
    pub fn close(&mut self, error_code: u64, reason: &str) {
        if self.is_closed() {
            return;
        }
        self.close_frame = Some((error_code, reason.as_bytes().to_vec()));
        self.transition(State::Draining);
        self.events.push_back(Event::Closed {
            error_code,
            reason: reason.to_string(),
            by_peer: false,
        });
    }

    /// Next application event, if any.
    pub fn poll_event(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    // ------------------------------------------------------------------
    // Datagram ingest
    // ------------------------------------------------------------------

    /// Processes one incoming UDP datagram. The payload handle makes the
    /// parse zero-copy: DATAGRAM frames become sub-views of `data`, so a
    /// relay fanning an object out never copies payload bytes on receive.
    pub fn handle_datagram(&mut self, now: SimTime, data: &Payload) {
        // Closed is inert; Draining still parses (a crossing peer close or
        // late ACK in the pre-flush window must not wedge the machine).
        if self.state == State::Closed {
            return;
        }
        let Ok(packets) = decode_datagram_payload(data) else {
            return; // garbage is dropped silently
        };
        self.stats.bytes_received += data.len() as u64;
        self.last_rx = now;
        for p in packets {
            self.handle_packet(now, p);
        }
    }

    fn handle_packet(&mut self, now: SimTime, p: Packet) {
        if p.dcid != self.cid {
            return;
        }
        // 0-RTT before the ClientHello: buffer (loss/reorder of the CH).
        if self.side == Side::Server && p.ty == PacketType::ZeroRtt && !self.handshake_processed {
            self.early_buffer.push(p);
            return;
        }
        if !self.acks.on_packet(p.pn) {
            return; // duplicate packet
        }
        self.stats.packets_received += 1;
        let mut ack_eliciting = false;
        for f in p.frames {
            if f.is_ack_eliciting() {
                ack_eliciting = true;
            }
            self.handle_frame(now, f, p.ty);
        }
        if ack_eliciting {
            self.acks.ack_pending = true;
        }
        // A freshly processed ClientHello unlocks buffered early data.
        if self.handshake_processed && !self.early_buffer.is_empty() {
            let buffered = std::mem::take(&mut self.early_buffer);
            for p in buffered {
                self.handle_packet(now, p);
            }
        }
    }

    fn handle_frame(&mut self, now: SimTime, f: Frame, pty: PacketType) {
        match f {
            Frame::Padding | Frame::Ping => {}
            Frame::Ack { ranges } => {
                let ev = self.recovery.on_ack_received(now, &ranges);
                self.handle_acked(ev.acked);
                self.requeue_lost(ev.lost);
            }
            Frame::Crypto { data, .. } => self.handle_crypto(&data),
            Frame::Stream {
                id,
                offset,
                fin,
                data,
            } => self.handle_stream_frame(id, offset, fin, data, pty),
            Frame::ResetStream { id, .. } => {
                if let Some(s) = self.recv_streams.get_mut(&id) {
                    s.reset = Some(0);
                    if self.readable_notified.insert(id) {
                        self.events.push_back(Event::StreamReadable { id });
                    }
                }
            }
            Frame::StopSending { id, .. } => {
                if let Some(s) = self.send_streams.get_mut(&id) {
                    s.reset = true;
                }
            }
            Frame::MaxData { max } => {
                self.peer_max_data = self.peer_max_data.max(max);
            }
            Frame::MaxStreamData { id, max } => {
                if let Some(s) = self.send_streams.get_mut(&id) {
                    s.max_stream_data = s.max_stream_data.max(max);
                }
            }
            Frame::MaxStreams { .. } => { /* informational in this model */ }
            Frame::HandshakeDone => {}
            Frame::Datagram { data } => {
                if self.config.datagrams_enabled {
                    self.events.push_back(Event::DatagramReceived(data));
                }
            }
            Frame::ConnectionClose { error_code, reason } => {
                // Peer close goes straight to Closed (drain: do not
                // reply). A crossing close while we are Draining is
                // absorbed — our own Closed event already fired.
                if !self.is_closed() {
                    self.transition(State::Closed);
                    self.events.push_back(Event::Closed {
                        error_code,
                        reason: String::from_utf8_lossy(&reason).into_owned(),
                        by_peer: true,
                    });
                }
            }
        }
    }

    fn handle_crypto(&mut self, data: &[u8]) {
        if self.handshake_processed {
            return; // retransmitted flight
        }
        if self.is_closed() {
            // A handshake flight landing in the Draining window (e.g. a
            // retransmit after we refused the first copy) must not
            // resurrect the connection.
            return;
        }
        let Ok(msg) = HandshakeMessage::decode(data) else {
            self.close(0x1, "malformed handshake");
            return;
        };
        match (self.side, msg) {
            (
                Side::Server,
                HandshakeMessage::ClientHello {
                    alpn,
                    ticket,
                    early_data,
                },
            ) => {
                self.handshake_processed = true;
                let Some(selected) = select_alpn(&alpn, &self.alpn_supported) else {
                    self.crypto_out = Some(HandshakeMessage::HelloRetry { code: 0x178 }.encode());
                    self.crypto_pending = true;
                    // Drain: emit the retry + terminal close, then die.
                    self.transition(State::Draining);
                    self.close_frame = Some((0x178, b"no ALPN overlap".to_vec()));
                    self.events.push_back(Event::Closed {
                        error_code: 0x178,
                        reason: "no ALPN overlap".into(),
                        by_peer: false,
                    });
                    return;
                };
                let early_ok = early_data
                    && ticket.as_ref().is_some_and(|t| !t.0.is_empty())
                    && self.accept_early_data;
                if !early_ok {
                    self.early_buffer.clear(); // reject any buffered 0-RTT
                }
                let mut ticket_bytes = self.ticket_nonce.to_be_bytes().to_vec();
                ticket_bytes.extend_from_slice(&self.cid.to_be_bytes());
                let sh = HandshakeMessage::ServerHello {
                    alpn: selected.clone(),
                    early_data_accepted: early_ok,
                    new_ticket: Ticket(ticket_bytes),
                };
                self.crypto_out = Some(sh.encode());
                self.crypto_pending = true;
                self.selected_alpn = Some(selected.clone());
                self.transition(State::Established);
                // If early data was rejected, drop it (never ACKed — the
                // client's recovery will resend as 1-RTT).
                if !early_ok {
                    self.early_buffer.clear();
                }
                self.events.push_back(Event::Connected {
                    alpn: selected,
                    early_data_accepted: None,
                });
            }
            (
                Side::Client,
                HandshakeMessage::ServerHello {
                    alpn,
                    early_data_accepted,
                    new_ticket,
                },
            ) => {
                self.handshake_processed = true;
                self.selected_alpn = Some(alpn.clone());
                self.transition(State::Established);
                self.events.push_back(Event::Connected {
                    alpn,
                    early_data_accepted: if self.attempted_early_data {
                        Some(early_data_accepted)
                    } else {
                        None
                    },
                });
                self.events.push_back(Event::TicketIssued(new_ticket));
            }
            (Side::Client, HandshakeMessage::HelloRetry { code }) => {
                self.handshake_processed = true;
                // Refused by the peer: nothing to say back, go straight
                // to Closed.
                self.transition(State::Closed);
                self.events.push_back(Event::Closed {
                    error_code: code,
                    reason: "handshake refused".into(),
                    by_peer: true,
                });
            }
            _ => self.close(0x1, "unexpected handshake message"),
        }
    }

    fn handle_stream_frame(
        &mut self,
        id: StreamId,
        offset: u64,
        fin: bool,
        data: Payload,
        pty: PacketType,
    ) {
        // Server must not act on 1-RTT-style app data while handshaking
        // (cannot happen with well-behaved peers; drop defensively).
        if self.state == State::Handshaking
            && self.side == Side::Server
            && pty == PacketType::OneRtt
        {
            return;
        }
        let peer_initiated = id.initiated_by_client() != (self.side == Side::Client);
        // A late retransmission for a uni stream we already read to FIN
        // and released must not be mistaken for a brand-new peer stream.
        if peer_initiated
            && id.dir() == Dir::Uni
            && !self.recv_streams.contains_key(&id)
            && self.uni_recv_retired(id.index())
        {
            return;
        }
        let is_new_peer_stream = !self.recv_streams.contains_key(&id) && peer_initiated;
        if is_new_peer_stream {
            // Enforce our stream-count limit.
            let counter = match id.dir() {
                Dir::Bi => &mut self.peer_opened_bi,
                Dir::Uni => &mut self.peer_opened_uni,
            };
            if id.index() >= self.config.max_streams {
                self.close(0x4, "stream limit violated");
                return;
            }
            *counter = (*counter).max(id.index() + 1);
            self.recv_streams
                .insert(id, RecvStream::new(self.config.max_stream_data));
            if id.dir() == Dir::Bi {
                self.send_streams
                    .insert(id, SendStream::new(self.config.max_stream_data));
            }
            self.events.push_back(Event::StreamOpened { id });
        }
        let Some(s) = self.recv_streams.get_mut(&id) else {
            return; // data for a stream we never knew (e.g. post-reset)
        };
        let before = s.highest_seen();
        if !s.on_stream_frame(offset, data, fin) {
            self.close(0x3, "flow control violation");
            return;
        }
        self.data_received += s.highest_seen() - before;
        if self.data_received > self.local_max_data {
            self.close(0x3, "connection flow control violation");
            return;
        }
        if s.is_readable() && self.readable_notified.insert(id) {
            self.events.push_back(Event::StreamReadable { id });
        }
    }

    /// Marks a peer-initiated uni stream index as retired (read to FIN and
    /// released). Contiguous indices fold into the watermark so the
    /// overflow set stays small.
    fn retire_uni_recv(&mut self, index: u64) {
        if index < self.retired_uni_recv_below {
            return;
        }
        self.retired_uni_recv.insert(index);
        while self.retired_uni_recv.remove(&self.retired_uni_recv_below) {
            self.retired_uni_recv_below += 1;
        }
    }

    fn uni_recv_retired(&self, index: u64) -> bool {
        index < self.retired_uni_recv_below || self.retired_uni_recv.contains(&index)
    }

    /// Feeds newly-acked stream ranges back to their send streams so the
    /// retransmission buffers drain. One-shot uni streams whose data and
    /// FIN are fully acknowledged are released entirely — without this,
    /// every byte ever written would stay buffered for the connection's
    /// lifetime.
    fn handle_acked(&mut self, acked: Vec<RetxInfo>) {
        for r in acked {
            if let RetxInfo::Stream {
                id,
                offset,
                len,
                fin,
            } = r
            {
                let id = StreamId(id);
                if let Some(s) = self.send_streams.get_mut(&id) {
                    s.on_ack(offset, len, fin);
                    if id.dir() == Dir::Uni && s.is_fully_acked() {
                        self.send_streams.remove(&id);
                        self.pending_streams.remove(&id);
                    }
                }
            }
        }
    }

    fn requeue_lost(&mut self, lost: Vec<RetxInfo>) {
        for r in lost {
            match r {
                RetxInfo::Crypto { .. } | RetxInfo::ServerHello => {
                    if !self.handshake_acked() {
                        self.crypto_pending = true;
                    }
                }
                RetxInfo::Stream {
                    id,
                    offset,
                    len,
                    fin,
                } => {
                    if let Some(s) = self.send_streams.get_mut(&StreamId(id)) {
                        s.on_loss(offset, len, fin);
                        if s.has_pending() {
                            self.pending_streams.insert(StreamId(id));
                        }
                    }
                }
                RetxInfo::MaxData => self.pending_max_data = true,
                RetxInfo::MaxStreamData { id } => {
                    self.pending_max_stream_data.insert(StreamId(id));
                }
                RetxInfo::HandshakeDone => {}
            }
        }
    }

    fn handshake_acked(&self) -> bool {
        // Once established and our flight isn't pending, peer clearly has it;
        // this only suppresses useless retransmits after establishment.
        self.state == State::Established && self.handshake_processed && self.side == Side::Client
    }

    // ------------------------------------------------------------------
    // Transmission
    // ------------------------------------------------------------------

    /// Builds the next outgoing UDP datagram, or `None` if there is nothing
    /// to send right now. Call repeatedly until `None`. The datagram is
    /// encoded once into a pooled buffer and returned as a shared
    /// [`Payload`].
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Payload> {
        // Draining: flush the terminal close frame (exactly once), then
        // the machine completes its move to Closed. Closed is inert.
        if self.state == State::Draining {
            self.transition(State::Closed);
            if let Some((code, reason)) = self.close_frame.take() {
                let mut frames = Vec::new();
                if self.crypto_pending {
                    // A HelloRetry rides along with the close.
                    if let Some(c) = &self.crypto_out {
                        frames.push(Frame::Crypto {
                            offset: 0,
                            data: c.clone(),
                        });
                    }
                    self.crypto_pending = false;
                }
                frames.push(Frame::ConnectionClose {
                    error_code: code,
                    reason,
                });
                let pkt = self.seal(PacketType::OneRtt, frames, vec![], false);
                return Some(self.finish_datagram(now, vec![pkt]));
            }
            return None;
        }
        if self.state == State::Closed {
            return None;
        }

        let mut packets: Vec<Packet> = Vec::new();
        let mut budget = self.config.max_udp_payload.saturating_sub(16);

        // 1. Handshake flight (Initial packet).
        if self.crypto_pending {
            if let Some(c) = self.crypto_out.clone() {
                let retx = if self.side == Side::Client {
                    RetxInfo::Crypto {
                        offset: 0,
                        len: c.len() as u64,
                    }
                } else {
                    RetxInfo::ServerHello
                };
                let frames = vec![Frame::Crypto { offset: 0, data: c }];
                let pkt = self.seal(PacketType::Initial, frames, vec![retx], true);
                budget = budget.saturating_sub(pkt.encoded_len() + 4);
                packets.push(pkt);
                self.crypto_pending = false;
            }
        }

        // 2. Application packet(s).
        let can_send_app = self.state == State::Established
            || (self.side == Side::Client && self.attempted_early_data);
        let app_type = if self.state == State::Established {
            PacketType::OneRtt
        } else {
            PacketType::ZeroRtt
        };

        let mut frames: Vec<Frame> = Vec::new();
        let mut retx: Vec<RetxInfo> = Vec::new();
        let mut ack_eliciting = false;

        if self.acks.ack_pending && self.acks.any() {
            frames.push(Frame::Ack {
                ranges: self.acks.ack_ranges(),
            });
            self.acks.ack_pending = false;
        }
        if self.ping_pending {
            frames.push(Frame::Ping);
            self.ping_pending = false;
            self.stats.pings_sent += 1;
            ack_eliciting = true;
        }
        if can_send_app {
            if self.pending_max_data {
                frames.push(Frame::MaxData {
                    max: self.local_max_data,
                });
                retx.push(RetxInfo::MaxData);
                self.pending_max_data = false;
                ack_eliciting = true;
            }
            let msd: Vec<StreamId> = std::mem::take(&mut self.pending_max_stream_data)
                .into_iter()
                .collect();
            for id in msd {
                if let Some(s) = self.recv_streams.get(&id) {
                    frames.push(Frame::MaxStreamData {
                        id,
                        max: s.max_stream_data,
                    });
                    retx.push(RetxInfo::MaxStreamData { id: id.0 });
                    ack_eliciting = true;
                }
            }
            // Unreliable datagrams (not retransmitted, not flow controlled).
            while let Some(d) = self.datagram_queue_out.front() {
                if d.len() + 8 > budget {
                    break;
                }
                let d = self.datagram_queue_out.pop_front().unwrap();
                budget -= d.len() + 8;
                frames.push(Frame::Datagram { data: d });
                ack_eliciting = true;
            }
            // Stream data, congestion + budget permitting. Only streams
            // in the pending queue are visited — never the full
            // `send_streams` map; ascending id order matches the old
            // full-scan packetization exactly.
            if self.recovery.can_send(256) && !self.pending_streams.is_empty() {
                let ids: Vec<StreamId> = self.pending_streams.iter().copied().collect();
                for id in ids {
                    while budget > 32 && self.recovery.can_send(budget.min(1200)) {
                        let Some(s) = self.send_streams.get_mut(&id) else {
                            break;
                        };
                        let Some((offset, data, fin)) = s.pop_transmit(budget - 32) else {
                            break;
                        };
                        budget = budget.saturating_sub(data.len() + 16);
                        retx.push(RetxInfo::Stream {
                            id: id.0,
                            offset,
                            len: data.len() as u64,
                            fin,
                        });
                        frames.push(Frame::Stream {
                            id,
                            offset,
                            fin,
                            data: data.into(),
                        });
                        ack_eliciting = true;
                    }
                    // Lazy prune: drained (or stale) entries leave the
                    // queue; budget-limited streams stay for next time.
                    if !self
                        .send_streams
                        .get(&id)
                        .is_some_and(SendStream::has_pending)
                    {
                        self.pending_streams.remove(&id);
                    }
                }
            }
        }

        if !frames.is_empty() {
            let pkt = self.seal(app_type, frames, retx, ack_eliciting);
            packets.push(pkt);
        }

        if packets.is_empty() {
            return None;
        }
        Some(self.finish_datagram(now, packets))
    }

    fn seal(
        &mut self,
        ty: PacketType,
        frames: Vec<Frame>,
        retx: Vec<RetxInfo>,
        ack_eliciting: bool,
    ) -> Packet {
        let pn = self.next_pn;
        self.next_pn += 1;
        let pkt = Packet {
            ty,
            dcid: self.cid,
            pn,
            frames,
        };
        let size = pkt.encoded_len();
        self.recovery.on_packet_sent(
            pn,
            SentPacket {
                time_sent: self.last_tx, // refined in finish_datagram
                size,
                ack_eliciting,
                retx,
            },
        );
        self.stats.packets_sent += 1;
        pkt
    }

    fn finish_datagram(&mut self, now: SimTime, packets: Vec<Packet>) -> Payload {
        // Encode once into a pooled buffer, hand out a shared view.
        let mut w = self.pool.writer();
        encode_datagram_into(&packets, &mut w);
        let dg = Payload::from(w.as_slice());
        self.pool.recycle_writer(w);
        self.stats.bytes_sent += dg.len() as u64;
        self.last_tx = now;
        // Correct the sent time of the packets just sealed.
        // (Recovery stores them keyed by pn; update in place.)
        for p in &packets {
            self.recovery.touch_sent_time(p.pn, now);
        }
        dg
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// The next instant `handle_timeout` should be called, if any.
    ///
    /// The liveness contract: while `Established`, the idle deadline is
    /// `last_rx + max_idle_timeout` and (if configured) a keep-alive PING
    /// is due at `last_tx + keep_alive_interval`; a conforming peer's
    /// keep-alives therefore hold off our idle timer indefinitely. Once
    /// closing (`Draining`/`Closed`) all timers are off.
    pub fn poll_timeout(&self) -> Option<SimTime> {
        if self.is_closed() {
            return None;
        }
        let mut deadline: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            deadline = Some(match deadline {
                Some(d) => d.min(t),
                None => t,
            });
        };
        if let Some(t) = self.recovery.next_timeout() {
            consider(t);
        }
        consider(self.last_rx + self.config.max_idle_timeout);
        if let Some(ka) = self.config.keep_alive_interval {
            if self.state == State::Established {
                consider(self.last_tx + ka);
            }
        }
        deadline
    }

    /// Processes timer expiry at `now`: loss detection / PTO, idle timeout,
    /// keep-alive. Spurious calls are harmless.
    pub fn handle_timeout(&mut self, now: SimTime) {
        if self.is_closed() {
            return;
        }
        // Idle timeout: silent death (QUIC does not signal it on the
        // wire), so skip Draining and go straight to Closed.
        if now >= self.last_rx + self.config.max_idle_timeout {
            self.transition(State::Closed);
            self.events.push_back(Event::Closed {
                error_code: 0,
                reason: "idle timeout".into(),
                by_peer: true,
            });
            return;
        }
        // Loss / PTO.
        if let Some(t) = self.recovery.next_timeout() {
            if now >= t {
                let ev = self.recovery.on_timeout(now);
                self.requeue_lost(ev.lost);
            }
        }
        // Keep-alive.
        if let Some(ka) = self.config.keep_alive_interval {
            if self.state == State::Established && now >= self.last_tx + ka {
                self.ping_pending = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::decode_datagram;
    use std::time::Duration;

    const ALPN: &[u8] = b"moq-dns/1";

    fn alpns() -> AlpnList {
        crate::connection::alpn_list(&[ALPN])
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Shuttles datagrams between two connections with a fixed one-way
    /// delay until both are quiet. Returns the virtual completion time.
    fn shuttle(a: &mut Connection, b: &mut Connection, start: SimTime, owd_ms: u64) -> SimTime {
        let mut now = start;
        for _ in 0..64 {
            let mut any = false;
            let mut a2b = Vec::new();
            while let Some(d) = a.poll_transmit(now) {
                a2b.push(d);
            }
            let mut b2a = Vec::new();
            while let Some(d) = b.poll_transmit(now) {
                b2a.push(d);
            }
            if !a2b.is_empty() || !b2a.is_empty() {
                any = true;
                now += Duration::from_millis(owd_ms);
                for d in a2b {
                    b.handle_datagram(now, &d);
                }
                for d in b2a {
                    a.handle_datagram(now, &d);
                }
            }
            if !any {
                break;
            }
        }
        now
    }

    fn pair(now: SimTime) -> (Connection, Connection) {
        let client = Connection::client(7, TransportConfig::default(), alpns(), None, now);
        let server = Connection::server(7, TransportConfig::default(), alpns(), 99, now);
        (client, server)
    }

    fn drain_events(c: &mut Connection) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(e) = c.poll_event() {
            out.push(e);
        }
        out
    }

    #[test]
    fn fresh_handshake_takes_one_rtt() {
        let (mut c, mut s) = pair(t(0));
        // Client's first flight.
        let flight1 = c.poll_transmit(t(0)).expect("client hello");
        assert!(c.poll_transmit(t(0)).is_none(), "nothing else to send");
        // Arrives at server at 50ms (OWD).
        s.handle_datagram(t(50), &flight1);
        let sev = drain_events(&mut s);
        assert!(matches!(sev[0], Event::Connected { .. }));
        assert!(s.is_established());
        // Server flight back; client established at 100ms = 1 RTT.
        let flight2 = s.poll_transmit(t(50)).expect("server hello");
        c.handle_datagram(t(100), &flight2);
        assert!(c.is_established());
        let cev = drain_events(&mut c);
        assert!(matches!(
            &cev[0],
            Event::Connected { alpn, early_data_accepted: None } if alpn.as_ref() == ALPN
        ));
        assert!(matches!(&cev[1], Event::TicketIssued(_)));
    }

    #[test]
    fn client_app_data_waits_for_handshake_without_ticket() {
        let (mut c, _s) = pair(t(0));
        let id = c.open_stream(Dir::Bi).unwrap();
        c.send_stream(id, b"too early").unwrap();
        let flight = c.poll_transmit(t(0)).unwrap();
        // Only the Initial packet — no 0-RTT without a ticket.
        let pkts = decode_datagram(&flight).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].ty, PacketType::Initial);
    }

    #[test]
    fn zero_rtt_data_rides_first_flight() {
        let now = t(0);
        let mut c = Connection::client(
            8,
            TransportConfig::default(),
            alpns(),
            Some(Ticket(vec![1; 16])),
            now,
        );
        let mut s = Connection::server(8, TransportConfig::default(), alpns(), 99, now);
        let id = c.open_stream(Dir::Bi).unwrap();
        c.send_stream(id, b"early dns query").unwrap();
        c.finish_stream(id).unwrap();

        let flight = c.poll_transmit(now).unwrap();
        let pkts = decode_datagram(&flight).unwrap();
        assert_eq!(pkts[0].ty, PacketType::Initial);
        assert!(pkts.iter().any(|p| p.ty == PacketType::ZeroRtt));

        // Server receives the whole flight at 0.5 RTT and can read data.
        s.handle_datagram(t(50), &flight);
        let ev = drain_events(&mut s);
        assert!(matches!(ev[0], Event::Connected { .. }));
        assert!(ev.iter().any(|e| matches!(e, Event::StreamOpened { .. })));
        let (data, fin) = s.read_stream(id, 1024).unwrap();
        assert_eq!(data, b"early dns query");
        assert!(fin);
    }

    #[test]
    fn zero_rtt_rejection_falls_back_to_one_rtt() {
        let now = t(0);
        let mut c = Connection::client(
            9,
            TransportConfig::default(),
            alpns(),
            Some(Ticket(vec![1; 16])),
            now,
        );
        let mut s = Connection::server(9, TransportConfig::default(), alpns(), 99, now);
        s.set_accept_early_data(false);
        let id = c.open_stream(Dir::Bi).unwrap();
        c.send_stream(id, b"early").unwrap();
        c.finish_stream(id).unwrap();

        let end = shuttle(&mut c, &mut s, now, 50);
        // Client learned rejection…
        let cev = drain_events(&mut c);
        assert!(cev.iter().any(|e| matches!(
            e,
            Event::Connected {
                early_data_accepted: Some(false),
                ..
            }
        )));
        // …but the data still arrives via retransmission.
        let (data, fin) = s.read_stream(id, 1024).unwrap();
        assert_eq!(data, b"early");
        assert!(fin);
        assert!(end > t(100), "needed more than one round trip");
    }

    #[test]
    fn bidirectional_stream_exchange() {
        let (mut c, mut s) = pair(t(0));
        shuttle(&mut c, &mut s, t(0), 10);
        drain_events(&mut c);
        drain_events(&mut s);

        let id = c.open_stream(Dir::Bi).unwrap();
        assert_eq!(c.send_stream(id, b"question").unwrap(), 8);
        c.finish_stream(id).unwrap();
        shuttle(&mut c, &mut s, t(100), 10);

        let sev = drain_events(&mut s);
        assert!(sev
            .iter()
            .any(|e| matches!(e, Event::StreamOpened { id: i } if *i == id)));
        let (q, fin) = s.read_stream(id, 100).unwrap();
        assert_eq!(q, b"question");
        assert!(fin);

        s.send_stream(id, b"answer").unwrap();
        s.finish_stream(id).unwrap();
        shuttle(&mut c, &mut s, t(200), 10);
        let (a, fin) = c.read_stream(id, 100).unwrap();
        assert_eq!(a, b"answer");
        assert!(fin);
    }

    #[test]
    fn server_opens_unidirectional_stream() {
        let (mut c, mut s) = pair(t(0));
        shuttle(&mut c, &mut s, t(0), 10);
        drain_events(&mut c);
        drain_events(&mut s);

        let id = s.open_stream(Dir::Uni).unwrap();
        assert_eq!(id, StreamId::new(false, Dir::Uni, 0));
        s.send_stream(id, b"pushed update").unwrap();
        shuttle(&mut c, &mut s, t(100), 10);
        let cev = drain_events(&mut c);
        assert!(cev.iter().any(|e| matches!(e, Event::StreamOpened { .. })));
        let (data, _) = c.read_stream(id, 100).unwrap();
        assert_eq!(data, b"pushed update");
    }

    #[test]
    fn datagrams_flow_after_establishment() {
        let (mut c, mut s) = pair(t(0));
        shuttle(&mut c, &mut s, t(0), 10);
        drain_events(&mut c);
        drain_events(&mut s);
        c.send_datagram(b"unreliable".to_vec()).unwrap();
        shuttle(&mut c, &mut s, t(100), 10);
        let ev = drain_events(&mut s);
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::DatagramReceived(d) if d == b"unreliable")));
    }

    #[test]
    fn oversized_datagram_rejected() {
        let (mut c, _) = pair(t(0));
        assert_eq!(
            c.send_datagram(vec![0; 5000]),
            Err(ConnectionError::DatagramUnsupported)
        );
    }

    #[test]
    fn alpn_mismatch_refuses_connection() {
        let now = t(0);
        let mut c = Connection::client(
            1,
            TransportConfig::default(),
            crate::connection::alpn_list(&[b"foo"]),
            None,
            now,
        );
        let mut s = Connection::server(
            1,
            TransportConfig::default(),
            crate::connection::alpn_list(&[b"bar"]),
            99,
            now,
        );
        shuttle(&mut c, &mut s, now, 10);
        assert!(c.is_closed());
        let cev = drain_events(&mut c);
        assert!(cev
            .iter()
            .any(|e| matches!(e, Event::Closed { by_peer: true, .. })));
    }

    #[test]
    fn close_notifies_peer() {
        let (mut c, mut s) = pair(t(0));
        shuttle(&mut c, &mut s, t(0), 10);
        drain_events(&mut c);
        drain_events(&mut s);
        c.close(0, "done");
        shuttle(&mut c, &mut s, t(100), 10);
        let sev = drain_events(&mut s);
        assert!(sev.iter().any(|e| matches!(
            e,
            Event::Closed {
                by_peer: true,
                reason,
                ..
            } if reason == "done"
        )));
        assert!(s.is_closed());
    }

    #[test]
    fn lost_client_hello_is_retransmitted() {
        let (mut c, mut s) = pair(t(0));
        // First flight vanishes.
        let _lost = c.poll_transmit(t(0)).unwrap();
        // PTO fires; retransmission reaches the server.
        let deadline = c.poll_timeout().unwrap();
        c.handle_timeout(deadline);
        let flight = c.poll_transmit(deadline).expect("retransmit");
        s.handle_datagram(deadline + Duration::from_millis(10), &flight);
        assert!(s.is_established());
    }

    #[test]
    fn lost_stream_data_recovers() {
        let (mut c, mut s) = pair(t(0));
        shuttle(&mut c, &mut s, t(0), 10);
        drain_events(&mut c);
        drain_events(&mut s);
        let id = c.open_stream(Dir::Bi).unwrap();
        c.send_stream(id, b"will be lost").unwrap();
        c.finish_stream(id).unwrap();
        let _lost = c.poll_transmit(t(100)).unwrap();
        // PTO recovers it.
        let deadline = c.poll_timeout().unwrap();
        c.handle_timeout(deadline);
        shuttle(&mut c, &mut s, deadline, 10);
        let (data, fin) = s.read_stream(id, 100).unwrap();
        assert_eq!(data, b"will be lost");
        assert!(fin);
    }

    #[test]
    fn idle_timeout_closes_silently() {
        let cfg = TransportConfig::default().idle_timeout(Duration::from_secs(5));
        let mut c = Connection::client(1, cfg.clone(), alpns(), None, t(0));
        let mut s = Connection::server(1, cfg, alpns(), 99, t(0));
        let end = shuttle(&mut c, &mut s, t(0), 10);
        drain_events(&mut c);
        let deadline = c.poll_timeout().unwrap();
        assert!(deadline <= end + Duration::from_secs(5));
        c.handle_timeout(t(6000));
        assert!(c.is_closed());
        let ev = drain_events(&mut c);
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::Closed { reason, .. } if reason == "idle timeout")));
    }

    #[test]
    fn keepalive_pings_prevent_idle_death() {
        let cfg = TransportConfig::default()
            .idle_timeout(Duration::from_secs(10))
            .keep_alive(Duration::from_secs(2));
        let mut c = Connection::client(1, cfg.clone(), alpns(), None, t(0));
        let mut s = Connection::server(1, cfg, alpns(), 99, t(0));
        let mut now = shuttle(&mut c, &mut s, t(0), 10);
        drain_events(&mut c);
        drain_events(&mut s);
        // Run 30 virtual seconds of keep-alive cycles.
        let end = now + Duration::from_secs(30);
        let mut guard = 0;
        while now < end && guard < 200 {
            guard += 1;
            let next = c
                .poll_timeout()
                .into_iter()
                .chain(s.poll_timeout())
                .min()
                .unwrap();
            now = next.max(now + Duration::from_millis(1));
            c.handle_timeout(now);
            s.handle_timeout(now);
            now = shuttle(&mut c, &mut s, now, 10);
        }
        assert!(!c.is_closed());
        assert!(!s.is_closed());
        // At least one side pings; an endpoint whose ACK traffic keeps
        // resetting its own keep-alive clock legitimately stays quiet.
        assert!(
            c.stats().pings_sent + s.stats().pings_sent > 0,
            "keep-alives were sent"
        );
    }

    #[test]
    fn stream_limit_enforced() {
        let cfg = TransportConfig {
            max_streams: 2,
            ..TransportConfig::default()
        };
        let mut c = Connection::client(1, cfg, alpns(), None, t(0));
        c.open_stream(Dir::Bi).unwrap();
        c.open_stream(Dir::Bi).unwrap();
        assert_eq!(c.open_stream(Dir::Bi), Err(ConnectionError::StreamLimit));
        // Different direction has its own counter.
        c.open_stream(Dir::Uni).unwrap();
    }

    #[test]
    fn large_transfer_with_flow_control_updates() {
        let cfg = TransportConfig {
            max_stream_data: 4096,
            max_data: 8192,
            ..TransportConfig::default()
        };
        let mut c = Connection::client(1, cfg.clone(), alpns(), None, t(0));
        let mut s = Connection::server(1, cfg, alpns(), 99, t(0));
        let mut now = shuttle(&mut c, &mut s, t(0), 5);
        drain_events(&mut c);
        drain_events(&mut s);

        let id = c.open_stream(Dir::Bi).unwrap();
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let mut written = 0;
        let mut received = Vec::new();
        let mut guard = 0;
        while received.len() < payload.len() && guard < 500 {
            guard += 1;
            if written < payload.len() {
                written += c.send_stream(id, &payload[written..]).unwrap();
                if written == payload.len() {
                    c.finish_stream(id).unwrap();
                }
            }
            now = shuttle(&mut c, &mut s, now, 5);
            loop {
                let (chunk, _fin) = s.read_stream(id, 65536).unwrap();
                if chunk.is_empty() {
                    break;
                }
                received.extend_from_slice(&chunk);
            }
        }
        assert_eq!(received, payload, "after {guard} rounds");
    }

    #[test]
    fn duplicate_datagrams_are_idempotent() {
        let (mut c, mut s) = pair(t(0));
        let flight = c.poll_transmit(t(0)).unwrap();
        s.handle_datagram(t(10), &flight);
        s.handle_datagram(t(11), &flight); // replay
        let ev = drain_events(&mut s);
        let connected = ev
            .iter()
            .filter(|e| matches!(e, Event::Connected { .. }))
            .count();
        assert_eq!(connected, 1);
    }

    #[test]
    fn garbage_datagrams_ignored() {
        let (mut c, _) = pair(t(0));
        c.handle_datagram(t(0), &Payload::from(&b"\xFF\xFF\xFF"[..]));
        c.handle_datagram(t(0), &Payload::empty());
        assert!(!c.is_closed());
    }

    #[test]
    fn state_size_grows_with_streams() {
        let (mut c, _) = pair(t(0));
        let base = c.state_size_estimate();
        for _ in 0..10 {
            c.open_stream(Dir::Bi).unwrap();
        }
        assert!(c.state_size_estimate() > base);
    }
}
