//! Endpoint: connection demultiplexing, server accept, ticket store.
//!
//! An [`Endpoint`] owns many [`Connection`]s and routes datagrams to them by
//! connection id. It is generic over the peer-address type `P` so the same
//! code runs over `moqdns-netsim` addresses ([`moqdns_netsim::Addr`]) and
//! real `std::net::SocketAddr`s.
//!
//! The client-side **ticket store** remembers the most recent resumption
//! ticket per (server, ALPN) so later connections can attempt 0-RTT — the
//! second latency optimization of paper §5.2.

use crate::config::TransportConfig;
use crate::connection::{Alpn, AlpnList, Connection, Event, Side};
use crate::handshake::Ticket;
use moqdns_netsim::SimTime;
use moqdns_wire::Payload;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::Hash;

/// Re-exported ticket type for public API convenience.
pub type SessionTicket = Ticket;

/// One row of [`Endpoint::state_breakdown`]: `(cid, estimate_bytes,
/// send_streams, recv_streams, tracked_packets)`.
pub type ConnStateRow = (u64, usize, usize, usize, usize);

/// Handle identifying a connection within an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnHandle(pub u64);

/// A multi-connection QUIC endpoint.
pub struct Endpoint<P> {
    config: TransportConfig,
    /// ALPNs a server accepts; ignored for pure clients.
    server_alpn: AlpnList,
    /// Whether this endpoint accepts incoming connections.
    is_server: bool,
    connections: BTreeMap<ConnHandle, (Connection, P)>,
    by_cid: BTreeMap<u64, ConnHandle>,
    next_cid: u64,
    /// Client ticket store: (peer, alpn) -> ticket. Keys are shared
    /// [`Alpn`] handles — storing or probing a ticket never copies the
    /// protocol string.
    tickets: BTreeMap<(P, Alpn), Ticket>,
    /// Pending (handle, event) pairs for the application.
    events: VecDeque<(ConnHandle, Event)>,
    /// Accepted-but-unreported incoming connections.
    incoming: VecDeque<ConnHandle>,
    /// Connections that may have datagrams to send and whose timer
    /// deadline may be stale: every mutating touch (connect, ingest,
    /// timeout, `conn_mut`) marks here, and `poll_transmit` clears a
    /// handle once it polls to `None`. Ordered so transmit order stays
    /// the deterministic lowest-handle-first of the full scan this
    /// replaces — without re-sorting every connection on every call.
    dirty: BTreeSet<ConnHandle>,
    /// Timer deadlines of non-dirty connections, ordered: `poll_timeout`
    /// and `handle_timeout` read the front instead of scanning all
    /// connections.
    deadlines: BTreeSet<(SimTime, ConnHandle)>,
    deadline_of: BTreeMap<ConnHandle, SimTime>,
    /// Connections observed `Closed`, awaiting `reap_closed`.
    closed_pending: Vec<ConnHandle>,
}

impl<P: Copy + Eq + Hash + Ord> Endpoint<P> {
    /// Creates a client-only endpoint.
    pub fn client(config: TransportConfig, cid_seed: u64) -> Endpoint<P> {
        Endpoint {
            config,
            server_alpn: AlpnList::from([]),
            is_server: false,
            connections: BTreeMap::new(),
            by_cid: BTreeMap::new(),
            next_cid: cid_seed.wrapping_mul(2_654_435_761).max(1),
            tickets: BTreeMap::new(),
            events: VecDeque::new(),
            incoming: VecDeque::new(),
            dirty: BTreeSet::new(),
            deadlines: BTreeSet::new(),
            deadline_of: BTreeMap::new(),
            closed_pending: Vec::new(),
        }
    }

    /// Creates a server endpoint accepting the given ALPNs (it can still
    /// open client connections of its own — resolvers do both).
    pub fn server(config: TransportConfig, alpn: AlpnList, cid_seed: u64) -> Endpoint<P> {
        let mut e = Endpoint::client(config, cid_seed);
        e.is_server = true;
        e.server_alpn = alpn;
        e
    }

    /// Marks a connection as possibly-sendable / deadline-stale.
    fn mark_dirty(&mut self, h: ConnHandle) {
        self.dirty.insert(h);
    }

    /// Re-indexes `h`'s timer deadline from its connection state.
    fn refresh_deadline(&mut self, h: ConnHandle) {
        if let Some(t) = self.deadline_of.remove(&h) {
            self.deadlines.remove(&(t, h));
        }
        if let Some((c, _)) = self.connections.get(&h) {
            if let Some(t) = c.poll_timeout() {
                self.deadlines.insert((t, h));
                self.deadline_of.insert(h, t);
            }
        }
    }

    /// Drops a connection from every index.
    fn forget(&mut self, h: ConnHandle) {
        if let Some((c, _)) = self.connections.remove(&h) {
            self.by_cid.remove(&c.cid());
        }
        self.dirty.remove(&h);
        if let Some(t) = self.deadline_of.remove(&h) {
            self.deadlines.remove(&(t, h));
        }
    }

    /// Opens a client connection to `peer`, optionally trying 0-RTT with a
    /// stored ticket (`use_ticket`).
    pub fn connect(
        &mut self,
        now: SimTime,
        peer: P,
        alpn: AlpnList,
        use_ticket: bool,
    ) -> ConnHandle {
        // The handle IS the cid, so a client cid colliding with the cid of
        // a connection this endpoint already holds (e.g. one *accepted*
        // from a peer whose cid generator shares our seed) would silently
        // overwrite that connection's state. Skip over taken cids.
        let mut cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
        while self.by_cid.contains_key(&cid) {
            cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
        }
        let ticket = if use_ticket {
            alpn.iter()
                .find_map(|a| self.tickets.get(&(peer, a.clone())).cloned())
        } else {
            None
        };
        let conn = Connection::client(cid, self.config.clone(), alpn, ticket, now);
        let handle = ConnHandle(cid);
        self.connections.insert(handle, (conn, peer));
        self.by_cid.insert(cid, handle);
        self.mark_dirty(handle);
        handle
    }

    /// True if a resumption ticket is stored for `peer` + `alpn` (0-RTT
    /// possible on the next connect). Allocation-free: the tiny store is
    /// probed by content, not by a freshly built key.
    pub fn has_ticket(&self, peer: P, alpn: &[u8]) -> bool {
        self.tickets
            .keys()
            .any(|(p, a)| *p == peer && a.as_ref() == alpn)
    }

    /// Ingests a datagram that arrived from `from`. Unknown connection ids
    /// create a new server connection when `is_server`. The payload
    /// handle keeps the parse zero-copy all the way into DATAGRAM frames.
    pub fn handle_datagram(&mut self, now: SimTime, from: P, data: &Payload) {
        // Peek just the first packet's header for routing; the owning
        // connection parses the full datagram (zero-copy) exactly once.
        let Some(cid) = crate::packet::peek_dcid(data) else {
            return;
        };
        let handle = match self.by_cid.get(&cid) {
            Some(h) => *h,
            None => {
                if !self.is_server {
                    return;
                }
                // A *new* connection is only minted for a datagram that
                // parses in full AND carries an Initial packet — the cheap
                // header peek alone must not let garbage traffic allocate
                // server state, and a stray late packet for a connection
                // we already reaped (e.g. an evicted attacker's
                // retransmission) must not resurrect it as a husk that
                // never finishes a handshake. (Known connections skip
                // this: their own parse handles it.)
                match crate::packet::decode_datagram_payload(data) {
                    Ok(pkts)
                        if pkts
                            .iter()
                            .any(|p| p.ty == crate::packet::PacketType::Initial) => {}
                    _ => return,
                }
                let nonce = self
                    .next_cid
                    .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                    .wrapping_add(cid);
                let conn = Connection::server(
                    cid,
                    self.config.clone(),
                    self.server_alpn.clone(),
                    nonce,
                    now,
                );
                let handle = ConnHandle(cid);
                self.connections.insert(handle, (conn, from));
                self.by_cid.insert(cid, handle);
                self.incoming.push_back(handle);
                self.mark_dirty(handle);
                handle
            }
        };
        if let Some((conn, peer)) = self.connections.get_mut(&handle) {
            *peer = from; // track migration
            conn.handle_datagram(now, data);
            let p = *peer;
            Self::drain_conn_events(
                handle,
                conn,
                p,
                &mut self.tickets,
                &mut self.events,
                &mut self.closed_pending,
            );
            self.mark_dirty(handle);
        }
    }

    fn drain_conn_events(
        handle: ConnHandle,
        conn: &mut Connection,
        peer: P,
        tickets: &mut BTreeMap<(P, Alpn), Ticket>,
        events: &mut VecDeque<(ConnHandle, Event)>,
        closed_pending: &mut Vec<ConnHandle>,
    ) {
        while let Some(ev) = conn.poll_event() {
            match &ev {
                Event::TicketIssued(t) if conn.side() == Side::Client => {
                    if let Some(alpn) = conn.alpn_handle() {
                        tickets.insert((peer, alpn.clone()), t.clone());
                    }
                }
                Event::Closed { .. } => closed_pending.push(handle),
                _ => {}
            }
            events.push_back((handle, ev));
        }
    }

    /// Next accepted incoming connection, if any.
    pub fn poll_incoming(&mut self) -> Option<ConnHandle> {
        self.incoming.pop_front()
    }

    /// Next application event across all connections.
    pub fn poll_event(&mut self) -> Option<(ConnHandle, Event)> {
        self.events.pop_front()
    }

    /// Builds the next outgoing `(peer, datagram)` pair across connections.
    /// Call until `None`. Only *dirty* connections (touched since they
    /// last drained) are scanned, lowest handle first — the same
    /// deterministic order as the full sorted scan this replaces, since
    /// an untouched connection has nothing to send.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<(P, Payload)> {
        while let Some(&h) = self.dirty.iter().next() {
            let Some((conn, peer)) = self.connections.get_mut(&h) else {
                self.dirty.remove(&h);
                continue;
            };
            if let Some(dg) = conn.poll_transmit(now) {
                let p = *peer;
                Self::drain_conn_events(
                    h,
                    conn,
                    p,
                    &mut self.tickets,
                    &mut self.events,
                    &mut self.closed_pending,
                );
                return Some((p, dg));
            }
            // Drained: its deadline is current again; stop scanning it.
            if conn.is_closed() {
                self.closed_pending.push(h);
            }
            self.dirty.remove(&h);
            self.refresh_deadline(h);
        }
        None
    }

    /// Brings the deadline index up to date for every dirty connection
    /// (they stay dirty for transmit purposes).
    fn refresh_dirty_deadlines(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let dirty: Vec<ConnHandle> = self.dirty.iter().copied().collect();
        for h in dirty {
            self.refresh_deadline(h);
        }
    }

    /// Earliest timer deadline across all connections (refreshing any
    /// dirty connection's cached deadline first).
    pub fn poll_timeout(&mut self) -> Option<SimTime> {
        self.refresh_dirty_deadlines();
        self.deadlines.first().map(|&(t, _)| t)
    }

    /// Fires timer processing on every connection whose deadline passed.
    pub fn handle_timeout(&mut self, now: SimTime) {
        self.refresh_dirty_deadlines();
        let due: Vec<ConnHandle> = self
            .deadlines
            .iter()
            .take_while(|&&(t, _)| t <= now)
            .map(|&(_, h)| h)
            .collect();
        for h in due {
            if let Some((conn, peer)) = self.connections.get_mut(&h) {
                conn.handle_timeout(now);
                let p = *peer;
                Self::drain_conn_events(
                    h,
                    conn,
                    p,
                    &mut self.tickets,
                    &mut self.events,
                    &mut self.closed_pending,
                );
                self.mark_dirty(h);
            }
        }
    }

    /// Silently discards a connection without closing it on the wire —
    /// models a device suspension/crash (paper §4.4: "stub resolvers
    /// running on end-user devices also need to clean up subscriptions
    /// after suspension or shutdowns").
    pub fn abandon(&mut self, h: ConnHandle) {
        self.forget(h);
    }

    /// Drops connections that are fully closed and have nothing to send.
    /// O(closures observed), not O(live connections): candidates are
    /// collected as their `Closed` events surface.
    pub fn reap_closed(&mut self) {
        while let Some(h) = self.closed_pending.pop() {
            if self.connections.get(&h).is_some_and(|(c, _)| c.is_closed()) {
                self.forget(h);
            }
        }
    }

    /// Access a connection by handle. The connection is marked dirty —
    /// the caller may write into it, making it sendable.
    pub fn conn_mut(&mut self, h: ConnHandle) -> Option<&mut Connection> {
        if self.connections.contains_key(&h) {
            self.mark_dirty(h);
        }
        self.connections.get_mut(&h).map(|(c, _)| c)
    }

    /// Immutable access to a connection.
    pub fn conn(&self, h: ConnHandle) -> Option<&Connection> {
        self.connections.get(&h).map(|(c, _)| c)
    }

    /// The peer address of a connection.
    pub fn peer_of(&self, h: ConnHandle) -> Option<P> {
        self.connections.get(&h).map(|(_, p)| *p)
    }

    /// Number of live connections (E9 state accounting).
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Per-connection composition — diagnostics for the adversarial
    /// drills (which connection is the state hiding in?).
    pub fn state_breakdown(&self) -> Vec<ConnStateRow> {
        self.connections
            .values()
            .map(|(c, _)| {
                let (s, r, t) = c.state_breakdown();
                (c.cid(), c.state_size_estimate(), s, r, t)
            })
            .collect()
    }

    /// Sum of per-connection state estimates (E9).
    pub fn state_size_estimate(&self) -> usize {
        self.connections
            .values()
            .map(|(c, _)| c.state_size_estimate())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::Dir;
    use std::time::Duration;

    type Peer = u32;

    fn alpns() -> crate::connection::AlpnList {
        crate::connection::alpn_list(&[b"moq-dns/1"])
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Shuttles datagrams between two endpoints with fixed delay until quiet.
    fn shuttle(
        a: &mut Endpoint<Peer>,
        a_addr: Peer,
        b: &mut Endpoint<Peer>,
        b_addr: Peer,
        start: SimTime,
        owd_ms: u64,
    ) -> SimTime {
        let mut now = start;
        for _ in 0..128 {
            let mut moved = false;
            let mut from_a = Vec::new();
            while let Some((to, dg)) = a.poll_transmit(now) {
                assert_eq!(to, b_addr);
                from_a.push(dg);
            }
            let mut from_b = Vec::new();
            while let Some((to, dg)) = b.poll_transmit(now) {
                assert_eq!(to, a_addr);
                from_b.push(dg);
            }
            if !from_a.is_empty() || !from_b.is_empty() {
                moved = true;
                now += Duration::from_millis(owd_ms);
                for d in from_a {
                    b.handle_datagram(now, a_addr, &d);
                }
                for d in from_b {
                    a.handle_datagram(now, b_addr, &d);
                }
            }
            if !moved {
                break;
            }
        }
        now
    }

    #[test]
    fn connect_accept_and_exchange() {
        let mut client: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut server: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 2);
        let ch = client.connect(t(0), 20, alpns(), false);
        shuttle(&mut client, 10, &mut server, 20, t(0), 25);

        let sh = server.poll_incoming().expect("incoming connection");
        assert!(server.conn(sh).unwrap().is_established());
        assert!(client.conn(ch).unwrap().is_established());

        // Client sends a request on a bidi stream; server answers.
        let id = client.conn_mut(ch).unwrap().open_stream(Dir::Bi).unwrap();
        client
            .conn_mut(ch)
            .unwrap()
            .send_stream(id, b"req")
            .unwrap();
        shuttle(&mut client, 10, &mut server, 20, t(100), 25);
        let (data, _) = server.conn_mut(sh).unwrap().read_stream(id, 100).unwrap();
        assert_eq!(data, b"req");
    }

    #[test]
    fn ticket_store_enables_zero_rtt_on_reconnect() {
        let mut client: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut server: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 2);

        // First connection: no ticket yet.
        assert!(!client.has_ticket(20, b"moq-dns/1"));
        let ch1 = client.connect(t(0), 20, alpns(), true);
        shuttle(&mut client, 10, &mut server, 20, t(0), 25);
        assert!(client.conn(ch1).unwrap().is_established());
        assert!(client.has_ticket(20, b"moq-dns/1"), "ticket stored");
        let _sh1 = server.poll_incoming().unwrap();

        // Second connection: 0-RTT data reaches the server in 0.5 RTT.
        let ch2 = client.connect(t(1000), 20, alpns(), true);
        let id = client.conn_mut(ch2).unwrap().open_stream(Dir::Bi).unwrap();
        client
            .conn_mut(ch2)
            .unwrap()
            .send_stream(id, b"early")
            .unwrap();
        let (to, dg) = client.poll_transmit(t(1000)).unwrap();
        assert_eq!(to, 20);
        server.handle_datagram(t(1025), 20, &dg);
        let sh2 = server.poll_incoming().unwrap();
        let (data, _) = server.conn_mut(sh2).unwrap().read_stream(id, 100).unwrap();
        assert_eq!(data, b"early", "0-RTT data readable after half RTT");
    }

    #[test]
    fn multiple_connections_demultiplex() {
        let mut c1: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut c2: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 7);
        let mut server: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 2);
        c1.connect(t(0), 20, alpns(), false);
        c2.connect(t(0), 20, alpns(), false);
        shuttle(&mut c1, 11, &mut server, 20, t(0), 5);
        shuttle(&mut c2, 12, &mut server, 20, t(0), 5);
        assert_eq!(server.connection_count(), 2);
        let h1 = server.poll_incoming().unwrap();
        let h2 = server.poll_incoming().unwrap();
        assert_ne!(h1, h2);
    }

    #[test]
    fn client_cid_never_collides_with_accepted_conn() {
        // Two endpoints seeded identically generate the same client cid
        // sequence. When B (a server) accepts A's connection and then
        // dials out itself, its first client cid would equal the accepted
        // connection's cid — and, since the handle IS the cid, overwrite
        // that connection's state. The allocator must skip taken cids.
        let mut a: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 7);
        let mut b: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 7);
        a.connect(t(0), 20, alpns(), false);
        let (_, dg) = a.poll_transmit(t(0)).unwrap();
        b.handle_datagram(t(0), 10, &dg);
        let accepted = b.poll_incoming().unwrap();
        let dialed = b.connect(t(0), 30, alpns(), false);
        assert_ne!(accepted, dialed, "handle collision would clobber state");
        assert_eq!(b.connection_count(), 2);
        assert_eq!(b.peer_of(accepted), Some(10));
        assert_eq!(b.peer_of(dialed), Some(30));
    }

    #[test]
    fn non_server_drops_unknown_cids() {
        let mut c: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut other: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 2);
        other.connect(t(0), 99, alpns(), false);
        let (_, dg) = other.poll_transmit(t(0)).unwrap();
        c.handle_datagram(t(0), 99, &dg);
        assert_eq!(c.connection_count(), 0);
    }

    #[test]
    fn reap_closed_removes_connections() {
        let mut client: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut server: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 2);
        let ch = client.connect(t(0), 20, alpns(), false);
        shuttle(&mut client, 10, &mut server, 20, t(0), 5);
        client.conn_mut(ch).unwrap().close(0, "bye");
        shuttle(&mut client, 10, &mut server, 20, t(100), 5);
        client.reap_closed();
        server.reap_closed();
        assert_eq!(client.connection_count(), 0);
        assert_eq!(server.connection_count(), 0);
    }

    #[test]
    fn endpoint_timeout_aggregation() {
        let mut client: Endpoint<Peer> = Endpoint::client(
            TransportConfig::default().idle_timeout(Duration::from_secs(3)),
            1,
        );
        assert!(client.poll_timeout().is_none());
        client.connect(t(0), 20, alpns(), false);
        assert!(client.poll_timeout().is_some());
    }
}
