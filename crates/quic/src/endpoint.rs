//! Endpoint: connection demultiplexing, server accept, ticket store.
//!
//! An [`Endpoint`] owns many [`Connection`]s and routes datagrams to them by
//! connection id. It is generic over the peer-address type `P` so the same
//! code runs over `moqdns-netsim` addresses ([`moqdns_netsim::Addr`]) and
//! real `std::net::SocketAddr`s.
//!
//! The client-side **ticket store** remembers the most recent resumption
//! ticket per (server, ALPN) so later connections can attempt 0-RTT — the
//! second latency optimization of paper §5.2.

use crate::config::TransportConfig;
use crate::connection::{Connection, Event, Side};
use crate::handshake::Ticket;
use crate::packet::decode_datagram;
use moqdns_netsim::SimTime;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Re-exported ticket type for public API convenience.
pub type SessionTicket = Ticket;

/// Handle identifying a connection within an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnHandle(pub u64);

/// A multi-connection QUIC endpoint.
pub struct Endpoint<P> {
    config: TransportConfig,
    /// ALPNs a server accepts; ignored for pure clients.
    server_alpn: Vec<Vec<u8>>,
    /// Whether this endpoint accepts incoming connections.
    is_server: bool,
    connections: HashMap<ConnHandle, (Connection, P)>,
    by_cid: HashMap<u64, ConnHandle>,
    next_cid: u64,
    /// Client ticket store: (peer, alpn) -> ticket.
    tickets: HashMap<(P, Vec<u8>), Ticket>,
    /// Pending (handle, event) pairs for the application.
    events: VecDeque<(ConnHandle, Event)>,
    /// Accepted-but-unreported incoming connections.
    incoming: VecDeque<ConnHandle>,
}

impl<P: Copy + Eq + Hash> Endpoint<P> {
    /// Creates a client-only endpoint.
    pub fn client(config: TransportConfig, cid_seed: u64) -> Endpoint<P> {
        Endpoint {
            config,
            server_alpn: Vec::new(),
            is_server: false,
            connections: HashMap::new(),
            by_cid: HashMap::new(),
            next_cid: cid_seed.wrapping_mul(2_654_435_761).max(1),
            tickets: HashMap::new(),
            events: VecDeque::new(),
            incoming: VecDeque::new(),
        }
    }

    /// Creates a server endpoint accepting the given ALPNs (it can still
    /// open client connections of its own — resolvers do both).
    pub fn server(config: TransportConfig, alpn: Vec<Vec<u8>>, cid_seed: u64) -> Endpoint<P> {
        let mut e = Endpoint::client(config, cid_seed);
        e.is_server = true;
        e.server_alpn = alpn;
        e
    }

    /// Opens a client connection to `peer`, optionally trying 0-RTT with a
    /// stored ticket (`use_ticket`).
    pub fn connect(
        &mut self,
        now: SimTime,
        peer: P,
        alpn: Vec<Vec<u8>>,
        use_ticket: bool,
    ) -> ConnHandle {
        // The handle IS the cid, so a client cid colliding with the cid of
        // a connection this endpoint already holds (e.g. one *accepted*
        // from a peer whose cid generator shares our seed) would silently
        // overwrite that connection's state. Skip over taken cids.
        let mut cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
        while self.by_cid.contains_key(&cid) {
            cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
        }
        let ticket = if use_ticket {
            alpn.iter()
                .find_map(|a| self.tickets.get(&(peer, a.clone())).cloned())
        } else {
            None
        };
        let conn = Connection::client(cid, self.config.clone(), alpn, ticket, now);
        let handle = ConnHandle(cid);
        self.connections.insert(handle, (conn, peer));
        self.by_cid.insert(cid, handle);
        handle
    }

    /// True if a resumption ticket is stored for `peer` + `alpn` (0-RTT
    /// possible on the next connect).
    pub fn has_ticket(&self, peer: P, alpn: &[u8]) -> bool {
        self.tickets.contains_key(&(peer, alpn.to_vec()))
    }

    /// Ingests a datagram that arrived from `from`. Unknown connection ids
    /// create a new server connection when `is_server`.
    pub fn handle_datagram(&mut self, now: SimTime, from: P, data: &[u8]) {
        let Ok(packets) = decode_datagram(data) else {
            return;
        };
        let Some(first) = packets.first() else { return };
        let cid = first.dcid;
        let handle = match self.by_cid.get(&cid) {
            Some(h) => *h,
            None => {
                if !self.is_server {
                    return;
                }
                let nonce = self
                    .next_cid
                    .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                    .wrapping_add(cid);
                let conn = Connection::server(
                    cid,
                    self.config.clone(),
                    self.server_alpn.clone(),
                    nonce,
                    now,
                );
                let handle = ConnHandle(cid);
                self.connections.insert(handle, (conn, from));
                self.by_cid.insert(cid, handle);
                self.incoming.push_back(handle);
                handle
            }
        };
        if let Some((conn, peer)) = self.connections.get_mut(&handle) {
            *peer = from; // track migration
            conn.handle_datagram(now, data);
            Self::drain_conn_events(handle, conn, *peer, &mut self.tickets, &mut self.events);
        }
    }

    fn drain_conn_events(
        handle: ConnHandle,
        conn: &mut Connection,
        peer: P,
        tickets: &mut HashMap<(P, Vec<u8>), Ticket>,
        events: &mut VecDeque<(ConnHandle, Event)>,
    ) {
        while let Some(ev) = conn.poll_event() {
            if let Event::TicketIssued(t) = &ev {
                if conn.side() == Side::Client {
                    if let Some(alpn) = conn.alpn() {
                        tickets.insert((peer, alpn.to_vec()), t.clone());
                    }
                }
            }
            events.push_back((handle, ev));
        }
    }

    /// Next accepted incoming connection, if any.
    pub fn poll_incoming(&mut self) -> Option<ConnHandle> {
        self.incoming.pop_front()
    }

    /// Next application event across all connections.
    pub fn poll_event(&mut self) -> Option<(ConnHandle, Event)> {
        self.events.pop_front()
    }

    /// Builds the next outgoing `(peer, datagram)` pair across connections.
    /// Call until `None`.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<(P, Vec<u8>)> {
        // Deterministic iteration: sort handles.
        let mut handles: Vec<ConnHandle> = self.connections.keys().copied().collect();
        handles.sort();
        for h in handles {
            let (conn, peer) = self.connections.get_mut(&h).unwrap();
            if let Some(dg) = conn.poll_transmit(now) {
                let p = *peer;
                Self::drain_conn_events(h, conn, p, &mut self.tickets, &mut self.events);
                return Some((p, dg));
            }
        }
        None
    }

    /// Earliest timer deadline across all connections.
    pub fn poll_timeout(&self) -> Option<SimTime> {
        self.connections
            .values()
            .filter_map(|(c, _)| c.poll_timeout())
            .min()
    }

    /// Fires timer processing on every connection whose deadline passed,
    /// then reaps closed connections.
    pub fn handle_timeout(&mut self, now: SimTime) {
        let handles: Vec<ConnHandle> = self.connections.keys().copied().collect();
        for h in handles {
            if let Some((conn, peer)) = self.connections.get_mut(&h) {
                if conn.poll_timeout().map(|t| t <= now).unwrap_or(false) {
                    conn.handle_timeout(now);
                    let p = *peer;
                    Self::drain_conn_events(h, conn, p, &mut self.tickets, &mut self.events);
                }
            }
        }
    }

    /// Silently discards a connection without closing it on the wire —
    /// models a device suspension/crash (paper §4.4: "stub resolvers
    /// running on end-user devices also need to clean up subscriptions
    /// after suspension or shutdowns").
    pub fn abandon(&mut self, h: ConnHandle) {
        if let Some((c, _)) = self.connections.remove(&h) {
            self.by_cid.remove(&c.cid());
        }
    }

    /// Drops connections that are fully closed and have nothing to send.
    pub fn reap_closed(&mut self) {
        let dead: Vec<ConnHandle> = self
            .connections
            .iter()
            .filter(|(_, (c, _))| c.is_closed())
            .map(|(h, _)| *h)
            .collect();
        for h in dead {
            if let Some((c, _)) = self.connections.remove(&h) {
                self.by_cid.remove(&c.cid());
            }
        }
    }

    /// Access a connection by handle.
    pub fn conn_mut(&mut self, h: ConnHandle) -> Option<&mut Connection> {
        self.connections.get_mut(&h).map(|(c, _)| c)
    }

    /// Immutable access to a connection.
    pub fn conn(&self, h: ConnHandle) -> Option<&Connection> {
        self.connections.get(&h).map(|(c, _)| c)
    }

    /// The peer address of a connection.
    pub fn peer_of(&self, h: ConnHandle) -> Option<P> {
        self.connections.get(&h).map(|(_, p)| *p)
    }

    /// Number of live connections (E9 state accounting).
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Sum of per-connection state estimates (E9).
    pub fn state_size_estimate(&self) -> usize {
        self.connections
            .values()
            .map(|(c, _)| c.state_size_estimate())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::Dir;
    use std::time::Duration;

    type Peer = u32;

    fn alpns() -> Vec<Vec<u8>> {
        vec![b"moq-dns/1".to_vec()]
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Shuttles datagrams between two endpoints with fixed delay until quiet.
    fn shuttle(
        a: &mut Endpoint<Peer>,
        a_addr: Peer,
        b: &mut Endpoint<Peer>,
        b_addr: Peer,
        start: SimTime,
        owd_ms: u64,
    ) -> SimTime {
        let mut now = start;
        for _ in 0..128 {
            let mut moved = false;
            let mut from_a = Vec::new();
            while let Some((to, dg)) = a.poll_transmit(now) {
                assert_eq!(to, b_addr);
                from_a.push(dg);
            }
            let mut from_b = Vec::new();
            while let Some((to, dg)) = b.poll_transmit(now) {
                assert_eq!(to, a_addr);
                from_b.push(dg);
            }
            if !from_a.is_empty() || !from_b.is_empty() {
                moved = true;
                now += Duration::from_millis(owd_ms);
                for d in from_a {
                    b.handle_datagram(now, a_addr, &d);
                }
                for d in from_b {
                    a.handle_datagram(now, b_addr, &d);
                }
            }
            if !moved {
                break;
            }
        }
        now
    }

    #[test]
    fn connect_accept_and_exchange() {
        let mut client: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut server: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 2);
        let ch = client.connect(t(0), 20, alpns(), false);
        shuttle(&mut client, 10, &mut server, 20, t(0), 25);

        let sh = server.poll_incoming().expect("incoming connection");
        assert!(server.conn(sh).unwrap().is_established());
        assert!(client.conn(ch).unwrap().is_established());

        // Client sends a request on a bidi stream; server answers.
        let id = client.conn_mut(ch).unwrap().open_stream(Dir::Bi).unwrap();
        client
            .conn_mut(ch)
            .unwrap()
            .send_stream(id, b"req")
            .unwrap();
        shuttle(&mut client, 10, &mut server, 20, t(100), 25);
        let (data, _) = server.conn_mut(sh).unwrap().read_stream(id, 100).unwrap();
        assert_eq!(data, b"req");
    }

    #[test]
    fn ticket_store_enables_zero_rtt_on_reconnect() {
        let mut client: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut server: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 2);

        // First connection: no ticket yet.
        assert!(!client.has_ticket(20, b"moq-dns/1"));
        let ch1 = client.connect(t(0), 20, alpns(), true);
        shuttle(&mut client, 10, &mut server, 20, t(0), 25);
        assert!(client.conn(ch1).unwrap().is_established());
        assert!(client.has_ticket(20, b"moq-dns/1"), "ticket stored");
        let _sh1 = server.poll_incoming().unwrap();

        // Second connection: 0-RTT data reaches the server in 0.5 RTT.
        let ch2 = client.connect(t(1000), 20, alpns(), true);
        let id = client.conn_mut(ch2).unwrap().open_stream(Dir::Bi).unwrap();
        client
            .conn_mut(ch2)
            .unwrap()
            .send_stream(id, b"early")
            .unwrap();
        let (to, dg) = client.poll_transmit(t(1000)).unwrap();
        assert_eq!(to, 20);
        server.handle_datagram(t(1025), 20, &dg);
        let sh2 = server.poll_incoming().unwrap();
        let (data, _) = server.conn_mut(sh2).unwrap().read_stream(id, 100).unwrap();
        assert_eq!(data, b"early", "0-RTT data readable after half RTT");
    }

    #[test]
    fn multiple_connections_demultiplex() {
        let mut c1: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut c2: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 7);
        let mut server: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 2);
        c1.connect(t(0), 20, alpns(), false);
        c2.connect(t(0), 20, alpns(), false);
        shuttle(&mut c1, 11, &mut server, 20, t(0), 5);
        shuttle(&mut c2, 12, &mut server, 20, t(0), 5);
        assert_eq!(server.connection_count(), 2);
        let h1 = server.poll_incoming().unwrap();
        let h2 = server.poll_incoming().unwrap();
        assert_ne!(h1, h2);
    }

    #[test]
    fn client_cid_never_collides_with_accepted_conn() {
        // Two endpoints seeded identically generate the same client cid
        // sequence. When B (a server) accepts A's connection and then
        // dials out itself, its first client cid would equal the accepted
        // connection's cid — and, since the handle IS the cid, overwrite
        // that connection's state. The allocator must skip taken cids.
        let mut a: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 7);
        let mut b: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 7);
        a.connect(t(0), 20, alpns(), false);
        let (_, dg) = a.poll_transmit(t(0)).unwrap();
        b.handle_datagram(t(0), 10, &dg);
        let accepted = b.poll_incoming().unwrap();
        let dialed = b.connect(t(0), 30, alpns(), false);
        assert_ne!(accepted, dialed, "handle collision would clobber state");
        assert_eq!(b.connection_count(), 2);
        assert_eq!(b.peer_of(accepted), Some(10));
        assert_eq!(b.peer_of(dialed), Some(30));
    }

    #[test]
    fn non_server_drops_unknown_cids() {
        let mut c: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut other: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 2);
        other.connect(t(0), 99, alpns(), false);
        let (_, dg) = other.poll_transmit(t(0)).unwrap();
        c.handle_datagram(t(0), 99, &dg);
        assert_eq!(c.connection_count(), 0);
    }

    #[test]
    fn reap_closed_removes_connections() {
        let mut client: Endpoint<Peer> = Endpoint::client(TransportConfig::default(), 1);
        let mut server: Endpoint<Peer> = Endpoint::server(TransportConfig::default(), alpns(), 2);
        let ch = client.connect(t(0), 20, alpns(), false);
        shuttle(&mut client, 10, &mut server, 20, t(0), 5);
        client.conn_mut(ch).unwrap().close(0, "bye");
        shuttle(&mut client, 10, &mut server, 20, t(100), 5);
        client.reap_closed();
        server.reap_closed();
        assert_eq!(client.connection_count(), 0);
        assert_eq!(server.connection_count(), 0);
    }

    #[test]
    fn endpoint_timeout_aggregation() {
        let mut client: Endpoint<Peer> = Endpoint::client(
            TransportConfig::default().idle_timeout(Duration::from_secs(3)),
            1,
        );
        assert!(client.poll_timeout().is_none());
        client.connect(t(0), 20, alpns(), false);
        assert!(client.poll_timeout().is_some());
    }
}
