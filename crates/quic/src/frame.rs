//! Frames — the unit of information inside packets.
//!
//! A recognizable subset of RFC 9000 §19 plus the RFC 9221 DATAGRAM frame.

use crate::streams::StreamId;
use moqdns_wire::{varint, Payload, Reader, WireError, WireResult, Writer};

/// A QUIC frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Padding (ignored).
    Padding,
    /// Liveness probe; elicits an ACK. Used for §5.1 keep-alives.
    Ping,
    /// Acknowledgment: ranges of received packet numbers, descending.
    Ack {
        /// Inclusive `(start, end)` packet-number ranges, highest first.
        ranges: Vec<(u64, u64)>,
    },
    /// Handshake bytes at an offset (our simulated TLS flights ride here).
    Crypto {
        /// Offset in the crypto stream.
        offset: u64,
        /// Handshake bytes.
        data: Vec<u8>,
    },
    /// Stream data. The payload is a shared handle: on receive it is a
    /// sub-view of the datagram buffer (zero-copy reassembly), on send a
    /// view of the send buffer slice being (re)transmitted.
    Stream {
        /// Stream id.
        id: StreamId,
        /// Offset of `data` in the stream.
        offset: u64,
        /// True if this ends the stream.
        fin: bool,
        /// Payload bytes.
        data: Payload,
    },
    /// Abrupt stream termination by the sender.
    ResetStream {
        /// Stream id.
        id: StreamId,
        /// Application error code.
        error_code: u64,
    },
    /// Request that the peer stop sending on a stream.
    StopSending {
        /// Stream id.
        id: StreamId,
        /// Application error code.
        error_code: u64,
    },
    /// Connection-level flow control credit.
    MaxData {
        /// New total byte limit.
        max: u64,
    },
    /// Stream-level flow control credit.
    MaxStreamData {
        /// Stream id.
        id: StreamId,
        /// New total byte limit for the stream.
        max: u64,
    },
    /// Stream-count credit for a direction.
    MaxStreams {
        /// True for bidirectional streams.
        bidi: bool,
        /// New total stream count.
        max: u64,
    },
    /// Handshake confirmed (server → client).
    HandshakeDone,
    /// Unreliable application datagram (RFC 9221). The payload is a
    /// shared handle so queueing and packing never copy the bytes.
    Datagram {
        /// Payload.
        data: Payload,
    },
    /// Connection close with an error code and reason.
    ConnectionClose {
        /// Error code (0 = no error).
        error_code: u64,
        /// UTF-8 reason phrase.
        reason: Vec<u8>,
    },
}

// Frame type codes (mostly aligned with RFC 9000 where a direct analog exists).
const T_PADDING: u64 = 0x00;
const T_PING: u64 = 0x01;
const T_ACK: u64 = 0x02;
const T_CRYPTO: u64 = 0x06;
const T_STREAM: u64 = 0x08; // we always carry offset+len+fin explicitly
const T_RESET_STREAM: u64 = 0x04;
const T_STOP_SENDING: u64 = 0x05;
const T_MAX_DATA: u64 = 0x10;
const T_MAX_STREAM_DATA: u64 = 0x11;
const T_MAX_STREAMS_BIDI: u64 = 0x12;
const T_MAX_STREAMS_UNI: u64 = 0x13;
const T_HANDSHAKE_DONE: u64 = 0x1e;
const T_DATAGRAM: u64 = 0x31;
const T_CONNECTION_CLOSE: u64 = 0x1c;

impl Frame {
    /// True if this frame counts as "ack-eliciting" (RFC 9002 §2).
    pub fn is_ack_eliciting(&self) -> bool {
        !matches!(
            self,
            Frame::Ack { .. } | Frame::Padding | Frame::ConnectionClose { .. }
        )
    }

    /// Exact encoded size in bytes, computed without encoding. Keeps the
    /// packetizer's size accounting allocation-free.
    pub fn encoded_len(&self) -> usize {
        use moqdns_wire::varint::varint_len as vl;
        match self {
            Frame::Padding => vl(T_PADDING),
            Frame::Ping => vl(T_PING),
            Frame::Ack { ranges } => {
                vl(T_ACK)
                    + vl(ranges.len() as u64)
                    + ranges.iter().map(|(s, e)| vl(*s) + vl(*e)).sum::<usize>()
            }
            Frame::Crypto { offset, data } => {
                vl(T_CRYPTO) + vl(*offset) + vl(data.len() as u64) + data.len()
            }
            Frame::Stream {
                id,
                offset,
                data,
                fin: _,
            } => vl(T_STREAM) + vl(id.0) + vl(*offset) + vl(data.len() as u64) + 1 + data.len(),
            Frame::ResetStream { id, error_code } => {
                vl(T_RESET_STREAM) + vl(id.0) + vl(*error_code)
            }
            Frame::StopSending { id, error_code } => {
                vl(T_STOP_SENDING) + vl(id.0) + vl(*error_code)
            }
            Frame::MaxData { max } => vl(T_MAX_DATA) + vl(*max),
            Frame::MaxStreamData { id, max } => vl(T_MAX_STREAM_DATA) + vl(id.0) + vl(*max),
            Frame::MaxStreams { bidi, max } => {
                vl(if *bidi {
                    T_MAX_STREAMS_BIDI
                } else {
                    T_MAX_STREAMS_UNI
                }) + vl(*max)
            }
            Frame::HandshakeDone => vl(T_HANDSHAKE_DONE),
            Frame::Datagram { data } => vl(T_DATAGRAM) + vl(data.len() as u64) + data.len(),
            Frame::ConnectionClose { error_code, reason } => {
                vl(T_CONNECTION_CLOSE) + vl(*error_code) + vl(reason.len() as u64) + reason.len()
            }
        }
    }

    /// Encodes the frame onto `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Frame::Padding => varint::put_varint(w, T_PADDING),
            Frame::Ping => varint::put_varint(w, T_PING),
            Frame::Ack { ranges } => {
                varint::put_varint(w, T_ACK);
                varint::put_varint(w, ranges.len() as u64);
                for (start, end) in ranges {
                    varint::put_varint(w, *start);
                    varint::put_varint(w, *end);
                }
            }
            Frame::Crypto { offset, data } => {
                varint::put_varint(w, T_CRYPTO);
                varint::put_varint(w, *offset);
                varint::put_varint(w, data.len() as u64);
                w.put_slice(data);
            }
            Frame::Stream {
                id,
                offset,
                fin,
                data,
            } => {
                varint::put_varint(w, T_STREAM);
                varint::put_varint(w, id.0);
                varint::put_varint(w, *offset);
                varint::put_varint(w, data.len() as u64);
                w.put_u8(*fin as u8);
                w.put_slice(data);
            }
            Frame::ResetStream { id, error_code } => {
                varint::put_varint(w, T_RESET_STREAM);
                varint::put_varint(w, id.0);
                varint::put_varint(w, *error_code);
            }
            Frame::StopSending { id, error_code } => {
                varint::put_varint(w, T_STOP_SENDING);
                varint::put_varint(w, id.0);
                varint::put_varint(w, *error_code);
            }
            Frame::MaxData { max } => {
                varint::put_varint(w, T_MAX_DATA);
                varint::put_varint(w, *max);
            }
            Frame::MaxStreamData { id, max } => {
                varint::put_varint(w, T_MAX_STREAM_DATA);
                varint::put_varint(w, id.0);
                varint::put_varint(w, *max);
            }
            Frame::MaxStreams { bidi, max } => {
                varint::put_varint(
                    w,
                    if *bidi {
                        T_MAX_STREAMS_BIDI
                    } else {
                        T_MAX_STREAMS_UNI
                    },
                );
                varint::put_varint(w, *max);
            }
            Frame::HandshakeDone => varint::put_varint(w, T_HANDSHAKE_DONE),
            Frame::Datagram { data } => {
                varint::put_varint(w, T_DATAGRAM);
                varint::put_varint(w, data.len() as u64);
                w.put_slice(data);
            }
            Frame::ConnectionClose { error_code, reason } => {
                varint::put_varint(w, T_CONNECTION_CLOSE);
                varint::put_varint(w, *error_code);
                varint::put_varint(w, reason.len() as u64);
                w.put_slice(reason);
            }
        }
    }

    /// Decodes one frame from `r`, copying variable-length payloads into
    /// fresh buffers. Hot receive paths use the crate-internal
    /// `decode_in` with a backing [`Payload`] instead (reachable through
    /// [`crate::packet::decode_datagram_payload`]).
    pub fn decode(r: &mut Reader<'_>) -> WireResult<Frame> {
        Self::decode_in(r, None)
    }

    /// Decodes one frame from `r`. When `backing` is given as the
    /// [`Payload`] whose bytes `r.full()` starts at offset `base` of,
    /// DATAGRAM and STREAM frame payloads become zero-copy sub-views of
    /// it instead of fresh allocations — the per-hop payload copy the
    /// relay fan-out used to pay on every receive, and the per-frame
    /// copy stream reassembly used to pay on every fetch response.
    pub(crate) fn decode_in(
        r: &mut Reader<'_>,
        backing: Option<(&Payload, usize)>,
    ) -> WireResult<Frame> {
        let ty = varint::get_varint(r)?;
        Ok(match ty {
            T_PADDING => Frame::Padding,
            T_PING => Frame::Ping,
            T_ACK => {
                let n = varint::get_varint(r)? as usize;
                if n > 1024 {
                    return Err(WireError::Invalid {
                        what: "ack range count",
                    });
                }
                let mut ranges = Vec::with_capacity(n);
                for _ in 0..n {
                    let start = varint::get_varint(r)?;
                    let end = varint::get_varint(r)?;
                    if start > end {
                        return Err(WireError::Invalid {
                            what: "ack range order",
                        });
                    }
                    ranges.push((start, end));
                }
                Frame::Ack { ranges }
            }
            T_CRYPTO => {
                let offset = varint::get_varint(r)?;
                let len = varint::get_varint(r)? as usize;
                Frame::Crypto {
                    offset,
                    data: r.get_vec(len)?,
                }
            }
            T_STREAM => {
                let id = StreamId(varint::get_varint(r)?);
                let offset = varint::get_varint(r)?;
                let len = varint::get_varint(r)? as usize;
                let fin = r.get_u8()? != 0;
                let data = match backing {
                    Some((p, base)) => {
                        let start = base + r.position();
                        r.skip(len)?;
                        p.slice(start..start + len)
                    }
                    None => r.get_vec(len)?.into(),
                };
                Frame::Stream {
                    id,
                    offset,
                    fin,
                    data,
                }
            }
            T_RESET_STREAM => Frame::ResetStream {
                id: StreamId(varint::get_varint(r)?),
                error_code: varint::get_varint(r)?,
            },
            T_STOP_SENDING => Frame::StopSending {
                id: StreamId(varint::get_varint(r)?),
                error_code: varint::get_varint(r)?,
            },
            T_MAX_DATA => Frame::MaxData {
                max: varint::get_varint(r)?,
            },
            T_MAX_STREAM_DATA => Frame::MaxStreamData {
                id: StreamId(varint::get_varint(r)?),
                max: varint::get_varint(r)?,
            },
            T_MAX_STREAMS_BIDI => Frame::MaxStreams {
                bidi: true,
                max: varint::get_varint(r)?,
            },
            T_MAX_STREAMS_UNI => Frame::MaxStreams {
                bidi: false,
                max: varint::get_varint(r)?,
            },
            T_HANDSHAKE_DONE => Frame::HandshakeDone,
            T_DATAGRAM => {
                let len = varint::get_varint(r)? as usize;
                let data = match backing {
                    Some((p, base)) => {
                        let start = base + r.position();
                        r.skip(len)?;
                        p.slice(start..start + len)
                    }
                    None => r.get_vec(len)?.into(),
                };
                Frame::Datagram { data }
            }
            T_CONNECTION_CLOSE => {
                let error_code = varint::get_varint(r)?;
                let len = varint::get_varint(r)? as usize;
                Frame::ConnectionClose {
                    error_code,
                    reason: r.get_vec(len)?,
                }
            }
            _ => return Err(WireError::Invalid { what: "frame type" }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(f: &Frame) -> Frame {
        let mut w = Writer::new();
        f.encode(&mut w);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let out = Frame::decode(&mut r).unwrap();
        assert!(r.is_empty());
        out
    }

    #[test]
    fn all_frames_roundtrip() {
        let frames = vec![
            Frame::Padding,
            Frame::Ping,
            Frame::Ack {
                ranges: vec![(10, 20), (3, 5), (0, 0)],
            },
            Frame::Crypto {
                offset: 7,
                data: vec![1, 2, 3],
            },
            Frame::Stream {
                id: StreamId(4),
                offset: 1000,
                fin: true,
                data: b"hello".to_vec().into(),
            },
            Frame::ResetStream {
                id: StreamId(8),
                error_code: 3,
            },
            Frame::StopSending {
                id: StreamId(8),
                error_code: 4,
            },
            Frame::MaxData { max: 1 << 20 },
            Frame::MaxStreamData {
                id: StreamId(0),
                max: 4096,
            },
            Frame::MaxStreams {
                bidi: true,
                max: 128,
            },
            Frame::MaxStreams {
                bidi: false,
                max: 256,
            },
            Frame::HandshakeDone,
            Frame::Datagram {
                data: vec![0xAB; 100].into(),
            },
            Frame::ConnectionClose {
                error_code: 0x100,
                reason: b"bye".to_vec(),
            },
        ];
        for f in frames {
            let mut w = Writer::new();
            f.encode(&mut w);
            assert_eq!(f.encoded_len(), w.len(), "size accounting for {f:?}");
            assert_eq!(roundtrip(&f), f);
        }
    }

    #[test]
    fn ack_eliciting_classification() {
        assert!(Frame::Ping.is_ack_eliciting());
        assert!(Frame::Stream {
            id: StreamId(0),
            offset: 0,
            fin: false,
            data: vec![].into()
        }
        .is_ack_eliciting());
        assert!(!Frame::Ack { ranges: vec![] }.is_ack_eliciting());
        assert!(!Frame::Padding.is_ack_eliciting());
        assert!(!Frame::ConnectionClose {
            error_code: 0,
            reason: vec![]
        }
        .is_ack_eliciting());
    }

    #[test]
    fn rejects_bad_ack_ranges() {
        let mut w = Writer::new();
        varint::put_varint(&mut w, T_ACK);
        varint::put_varint(&mut w, 1);
        varint::put_varint(&mut w, 10);
        varint::put_varint(&mut w, 5); // start > end
        let buf = w.into_vec();
        assert!(Frame::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn rejects_unknown_frame_type() {
        let mut w = Writer::new();
        varint::put_varint(&mut w, 0x3F);
        let buf = w.into_vec();
        assert!(Frame::decode(&mut Reader::new(&buf)).is_err());
    }

    proptest! {
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
            let mut r = Reader::new(&bytes);
            let _ = Frame::decode(&mut r);
        }
    }
}
