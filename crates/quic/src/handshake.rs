//! The simulated handshake ("TLS-shaped, crypto-free").
//!
//! The flights mirror TLS 1.3 over QUIC closely enough that every latency
//! property the paper reasons about is preserved:
//!
//! * fresh connection: `ClientHello` → `ServerHello` (+ ticket) — the
//!   client can send application data only after one round trip;
//! * resumption: the client presents a [`Ticket`] in its `ClientHello` and
//!   may send 0-RTT packets in the same flight; the server either accepts
//!   (ticket it recognizes) or rejects early data;
//! * ALPN: the client offers protocols, the server selects one (or fails
//!   the handshake). DNS-over-MoQT's future "version negotiation in ALPN"
//!   optimization (§5.2) is modelled by putting the MoQT version into the
//!   ALPN string.
//!
//! Messages ride in CRYPTO frames, encoded with the same varint toolbox as
//! everything else.

use crate::connection::Alpn;
use moqdns_wire::{varint, Reader, WireError, WireResult, Writer};

/// An opaque resumption ticket (issued by a server, presented by a client).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ticket(pub Vec<u8>);

/// A handshake message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeMessage {
    /// Client's first flight.
    ClientHello {
        /// Offered ALPN protocols, in preference order.
        alpn: Vec<Alpn>,
        /// Resumption ticket, if any.
        ticket: Option<Ticket>,
        /// True if 0-RTT packets accompany this hello.
        early_data: bool,
    },
    /// Server's reply; completes the handshake from the client's view.
    ServerHello {
        /// The selected ALPN protocol.
        alpn: Alpn,
        /// Whether presented early data was accepted.
        early_data_accepted: bool,
        /// A fresh ticket for future resumption.
        new_ticket: Ticket,
    },
    /// Server refuses the handshake (e.g. no ALPN overlap).
    HelloRetry {
        /// Reason code.
        code: u64,
    },
}

const M_CLIENT_HELLO: u64 = 1;
const M_SERVER_HELLO: u64 = 2;
const M_HELLO_RETRY: u64 = 3;

impl HandshakeMessage {
    /// Encodes to bytes (the CRYPTO stream content).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            HandshakeMessage::ClientHello {
                alpn,
                ticket,
                early_data,
            } => {
                varint::put_varint(&mut w, M_CLIENT_HELLO);
                varint::put_varint(&mut w, alpn.len() as u64);
                for p in alpn {
                    varint::put_varint(&mut w, p.len() as u64);
                    w.put_slice(p);
                }
                match ticket {
                    Some(t) => {
                        w.put_u8(1);
                        varint::put_varint(&mut w, t.0.len() as u64);
                        w.put_slice(&t.0);
                    }
                    None => w.put_u8(0),
                }
                w.put_u8(*early_data as u8);
            }
            HandshakeMessage::ServerHello {
                alpn,
                early_data_accepted,
                new_ticket,
            } => {
                varint::put_varint(&mut w, M_SERVER_HELLO);
                varint::put_varint(&mut w, alpn.len() as u64);
                w.put_slice(alpn);
                w.put_u8(*early_data_accepted as u8);
                varint::put_varint(&mut w, new_ticket.0.len() as u64);
                w.put_slice(&new_ticket.0);
            }
            HandshakeMessage::HelloRetry { code } => {
                varint::put_varint(&mut w, M_HELLO_RETRY);
                varint::put_varint(&mut w, *code);
            }
        }
        w.into_vec()
    }

    /// Decodes one message from exactly `buf`.
    pub fn decode(buf: &[u8]) -> WireResult<HandshakeMessage> {
        let mut r = Reader::new(buf);
        let m = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(m)
    }

    fn decode_from(r: &mut Reader<'_>) -> WireResult<HandshakeMessage> {
        Ok(match varint::get_varint(r)? {
            M_CLIENT_HELLO => {
                let n = varint::get_varint(r)? as usize;
                if n > 32 {
                    return Err(WireError::Invalid { what: "alpn count" });
                }
                let mut alpn = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = varint::get_varint(r)? as usize;
                    alpn.push(Alpn::from(r.get_bytes(len)?));
                }
                let ticket = match r.get_u8()? {
                    0 => None,
                    1 => {
                        let len = varint::get_varint(r)? as usize;
                        Some(Ticket(r.get_vec(len)?))
                    }
                    _ => {
                        return Err(WireError::Invalid {
                            what: "ticket flag",
                        })
                    }
                };
                let early_data = r.get_u8()? != 0;
                HandshakeMessage::ClientHello {
                    alpn,
                    ticket,
                    early_data,
                }
            }
            M_SERVER_HELLO => {
                let len = varint::get_varint(r)? as usize;
                let alpn = Alpn::from(r.get_bytes(len)?);
                let early_data_accepted = r.get_u8()? != 0;
                let tlen = varint::get_varint(r)? as usize;
                HandshakeMessage::ServerHello {
                    alpn,
                    early_data_accepted,
                    new_ticket: Ticket(r.get_vec(tlen)?),
                }
            }
            M_HELLO_RETRY => HandshakeMessage::HelloRetry {
                code: varint::get_varint(r)?,
            },
            _ => {
                return Err(WireError::Invalid {
                    what: "handshake message type",
                })
            }
        })
    }
}

/// Server-side ALPN selection: first client offer the server supports.
/// Returns a cheap handle clone of the winning offer.
pub fn select_alpn(offered: &[Alpn], supported: &[Alpn]) -> Option<Alpn> {
    offered.iter().find(|o| supported.contains(o)).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_hello_roundtrip() {
        let m = HandshakeMessage::ClientHello {
            alpn: vec![Alpn::from(&b"moqt-12"[..]), Alpn::from(&b"doq"[..])],
            ticket: Some(Ticket(vec![9; 16])),
            early_data: true,
        };
        assert_eq!(HandshakeMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn client_hello_without_ticket() {
        let m = HandshakeMessage::ClientHello {
            alpn: vec![Alpn::from(&b"moqt-12"[..])],
            ticket: None,
            early_data: false,
        };
        assert_eq!(HandshakeMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn server_hello_roundtrip() {
        let m = HandshakeMessage::ServerHello {
            alpn: Alpn::from(&b"moqt-12"[..]),
            early_data_accepted: true,
            new_ticket: Ticket(vec![1, 2, 3]),
        };
        assert_eq!(HandshakeMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn hello_retry_roundtrip() {
        let m = HandshakeMessage::HelloRetry { code: 0x128 };
        assert_eq!(HandshakeMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn alpn_selection_prefers_client_order() {
        let offered = vec![Alpn::from(&b"moqt-13"[..]), Alpn::from(&b"moqt-12"[..])];
        let supported = vec![Alpn::from(&b"moqt-12"[..]), Alpn::from(&b"moqt-13"[..])];
        assert_eq!(
            select_alpn(&offered, &supported),
            Some(Alpn::from(&b"moqt-13"[..]))
        );
        assert_eq!(select_alpn(&offered, &[]), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(HandshakeMessage::decode(&[0xFF, 0xFF]).is_err());
        assert!(HandshakeMessage::decode(&[]).is_err());
        // Trailing bytes rejected.
        let mut b = HandshakeMessage::HelloRetry { code: 1 }.encode();
        b.push(0);
        assert!(HandshakeMessage::decode(&b).is_err());
    }
}
