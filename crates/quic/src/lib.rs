//! # moqdns-quic
//!
//! A from-scratch, sans-io, QUIC-like transport protocol.
//!
//! This is the substrate the paper's prototype took from `quic-go`. It is
//! *QUIC-like*: the wire format is QUIC-shaped (varint frames, packet
//! numbers, ACK ranges, stream/flow-control/datagram frames) but there is
//! no real TLS — the handshake exchanges simulated ClientHello/ServerHello
//! flights that preserve everything the paper's analysis depends on:
//!
//! * **1-RTT connection establishment** (Initial → handshake reply) before
//!   application data flows (paper §5.2: "one round-trip for the QUIC
//!   connection");
//! * **session tickets and 0-RTT**: a returning client sends application
//!   data in its first flight (§5.2: "0-RTT allows sending application
//!   data in the first round-trip");
//! * **ALPN negotiation** carried in the first flight (§5.2's third
//!   optimization moves MoQT version negotiation into ALPN);
//! * ordered, reliable, flow-controlled **streams** (bidi + uni), which
//!   DNS-over-MoQT uses exclusively "to avoid losing messages due to the
//!   unreliability of datagrams" (§4.1);
//! * the RFC 9221 **unreliable datagram extension**, implemented for the
//!   streams-vs-datagrams ablation;
//! * loss recovery (packet + time threshold, PTO), RTT estimation, a simple
//!   congestion window, **idle timeout and keep-alives** (§5.1: endpoints
//!   "should regularly test the liveness of the connection").
//!
//! Architecture follows the quinn-proto/smoltcp idiom: [`Connection`] and
//! [`Endpoint`] are pure state machines driven by `handle_datagram` /
//! `handle_timeout` / `poll_transmit` / `poll_event`. Drivers exist for the
//! deterministic simulator (`moqdns-netsim`) and for real UDP sockets
//! ([`udp_driver`]).

pub mod config;
pub mod connection;
pub mod endpoint;
pub mod frame;
pub mod handshake;
pub mod packet;
pub mod recovery;
pub mod streams;
pub mod udp_batch;
pub mod udp_driver;

pub use config::TransportConfig;
pub use connection::{
    alpn_list, Alpn, AlpnList, ConnState, Connection, ConnectionError, Event, Side,
};
pub use endpoint::{ConnHandle, ConnStateRow, Endpoint, SessionTicket};
pub use streams::{Dir, StreamId};
