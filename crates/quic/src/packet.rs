//! Packet framing.
//!
//! Simplifications versus RFC 9000: a single packet number space, cleartext
//! payloads, and a fixed 8-byte connection id. Packet *types* are kept
//! (Initial / ZeroRtt / OneRtt) because 0-RTT semantics — the server must
//! not process early data before the ClientHello, and must be able to
//! reject it — are load-bearing for the paper's latency analysis (§5.2).
//!
//! Several packets may be coalesced into one UDP datagram; each is
//! length-prefixed.

use crate::frame::Frame;
use moqdns_wire::{varint, Payload, Reader, VarInt, WireError, WireResult, Writer};

/// Packet type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// Carries handshake (CRYPTO) frames.
    Initial,
    /// Early application data sent alongside a resumed handshake.
    ZeroRtt,
    /// Ordinary application data after the handshake.
    OneRtt,
}

impl PacketType {
    fn to_u8(self) -> u8 {
        match self {
            PacketType::Initial => 0,
            PacketType::ZeroRtt => 1,
            PacketType::OneRtt => 2,
        }
    }

    fn from_u8(v: u8) -> WireResult<PacketType> {
        Ok(match v {
            0 => PacketType::Initial,
            1 => PacketType::ZeroRtt,
            2 => PacketType::OneRtt,
            _ => {
                return Err(WireError::Invalid {
                    what: "packet type",
                })
            }
        })
    }
}

/// A decoded packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Packet type (determines processing rules).
    pub ty: PacketType,
    /// Destination connection id.
    pub dcid: u64,
    /// Packet number (single space).
    pub pn: u64,
    /// Contained frames.
    pub frames: Vec<Frame>,
}

impl Packet {
    /// Encodes this packet (without the coalescing length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        self.encode_into(&mut w);
        w.into_vec()
    }

    /// Encodes this packet onto `w` (without the coalescing length
    /// prefix). Hot paths pass a recycled writer.
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_u8(self.ty.to_u8());
        w.put_u64(self.dcid);
        varint::put_varint(w, self.pn);
        for f in &self.frames {
            f.encode(w);
        }
    }

    /// Exact encoded size in bytes, computed without encoding.
    pub fn encoded_len(&self) -> usize {
        1 + 8
            + moqdns_wire::varint::varint_len(self.pn)
            + self.frames.iter().map(Frame::encoded_len).sum::<usize>()
    }

    /// Decodes one packet from exactly `buf`.
    pub fn decode(buf: &[u8]) -> WireResult<Packet> {
        Self::decode_in(buf, None)
    }

    /// Decodes one packet from exactly `buf`; with `backing` given as
    /// the datagram [`Payload`] that `buf` starts at offset `base` of,
    /// DATAGRAM frame payloads are zero-copy sub-views of it.
    fn decode_in(buf: &[u8], backing: Option<(&Payload, usize)>) -> WireResult<Packet> {
        let mut r = Reader::new(buf);
        let ty = PacketType::from_u8(r.get_u8()?)?;
        let dcid = r.get_u64()?;
        let pn = varint::get_varint(&mut r)?;
        let mut frames = Vec::new();
        while !r.is_empty() {
            frames.push(Frame::decode_in(&mut r, backing)?);
        }
        Ok(Packet {
            ty,
            dcid,
            pn,
            frames,
        })
    }
}

/// Encodes `packets` onto `w` (length-prefixed coalescing). Each packet
/// is encoded exactly once, directly into the output; hot paths pass a
/// recycled writer (see [`moqdns_wire::BufPool`]).
pub fn encode_datagram_into(packets: &[Packet], w: &mut Writer) {
    for p in packets {
        let len = p.encoded_len();
        VarInt::try_from(len).expect("packet fits varint").encode(w);
        let before = w.len();
        p.encode_into(w);
        debug_assert_eq!(w.len() - before, len, "encoded_len mismatch");
    }
}

/// Encodes `packets` into one UDP datagram (length-prefixed coalescing).
pub fn encode_datagram(packets: &[Packet]) -> Vec<u8> {
    let mut w = Writer::with_capacity(256);
    encode_datagram_into(packets, &mut w);
    w.into_vec()
}

/// Decodes all coalesced packets in a datagram, copying frame payloads.
pub fn decode_datagram(buf: &[u8]) -> WireResult<Vec<Packet>> {
    let mut r = Reader::new(buf);
    let mut out = Vec::new();
    while !r.is_empty() {
        let len = varint::get_varint(&mut r)? as usize;
        let bytes = r.get_bytes(len)?;
        out.push(Packet::decode(bytes)?);
    }
    Ok(out)
}

/// Peeks the destination connection id of the first packet in a
/// datagram without decoding frames — endpoint routing runs this once
/// per datagram, then hands the full zero-copy parse to the owning
/// connection.
pub fn peek_dcid(buf: &[u8]) -> Option<u64> {
    let mut r = Reader::new(buf);
    let _len = varint::get_varint(&mut r).ok()?;
    let ty = r.get_u8().ok()?;
    PacketType::from_u8(ty).ok()?;
    r.get_u64().ok()
}

/// Decodes all coalesced packets in a datagram delivered as a shared
/// [`Payload`]: DATAGRAM frame payloads come out as zero-copy sub-views
/// of `buf` (byte-for-byte identical to what [`decode_datagram`] copies
/// out — property-tested below).
pub fn decode_datagram_payload(buf: &Payload) -> WireResult<Vec<Packet>> {
    let mut r = Reader::new(buf.as_slice());
    let mut out = Vec::new();
    while !r.is_empty() {
        let len = varint::get_varint(&mut r)? as usize;
        let base = r.position();
        let bytes = r.get_bytes(len)?;
        out.push(Packet::decode_in(bytes, Some((buf, base)))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::streams::StreamId;
    use proptest::prelude::*;

    #[test]
    fn packet_roundtrip() {
        let p = Packet {
            ty: PacketType::OneRtt,
            dcid: 0xDEAD_BEEF_0000_0001,
            pn: 42,
            frames: vec![Frame::Ping, Frame::MaxData { max: 65536 }],
        };
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn datagram_coalescing_roundtrip() {
        let a = Packet {
            ty: PacketType::Initial,
            dcid: 7,
            pn: 0,
            frames: vec![Frame::Crypto {
                offset: 0,
                data: vec![1, 2, 3],
            }],
        };
        let b = Packet {
            ty: PacketType::ZeroRtt,
            dcid: 7,
            pn: 1,
            frames: vec![Frame::Stream {
                id: crate::streams::StreamId(0),
                offset: 0,
                fin: false,
                data: vec![9, 9].into(),
            }],
        };
        let dg = encode_datagram(&[a.clone(), b.clone()]);
        assert_eq!(decode_datagram(&dg).unwrap(), vec![a, b]);
    }

    #[test]
    fn rejects_unknown_type() {
        let mut bytes = Packet {
            ty: PacketType::OneRtt,
            dcid: 1,
            pn: 0,
            frames: vec![],
        }
        .encode();
        bytes[0] = 9;
        assert!(Packet::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated() {
        assert!(Packet::decode(&[0, 1, 2]).is_err());
        assert!(decode_datagram(&[5, 0]).is_err());
    }

    proptest! {
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = decode_datagram(&bytes);
            let _ = decode_datagram_payload(&Payload::from(&bytes[..]));
        }

        /// Zero-copy equivalence: the `Payload` receive path parses
        /// byte-for-byte identical packets to the copying path, and the
        /// DATAGRAM frame payloads it produces are sub-views of the
        /// incoming datagram's storage (no per-hop copies).
        #[test]
        fn prop_payload_decode_equals_copying_decode(
            dcid in any::<u64>(),
            pn in any::<u32>(),
            dgram_payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64), 1..4),
            stream_payload in proptest::collection::vec(any::<u8>(), 0..64),
            stream_offset in any::<u32>(),
            crypto in proptest::collection::vec(any::<u8>(), 0..32),
        ) {
            let packets = vec![
                Packet {
                    ty: PacketType::Initial,
                    dcid,
                    pn: pn as u64,
                    frames: vec![Frame::Crypto { offset: 0, data: crypto }],
                },
                Packet {
                    ty: PacketType::OneRtt,
                    dcid,
                    pn: pn as u64 + 1,
                    frames: dgram_payloads
                        .iter()
                        .map(|p| Frame::Datagram { data: p.clone().into() })
                        .chain([
                            Frame::Ping,
                            Frame::Stream {
                                id: StreamId(6),
                                offset: stream_offset as u64,
                                fin: true,
                                data: stream_payload.into(),
                            },
                            Frame::MaxData { max: 9000 },
                        ])
                        .collect(),
                },
            ];
            let wire = Payload::new(encode_datagram(&packets));
            let copied = decode_datagram(wire.as_slice()).unwrap();
            let shared = decode_datagram_payload(&wire).unwrap();
            prop_assert_eq!(&shared, &copied, "identical parse");
            prop_assert_eq!(&shared, &packets, "roundtrip");
            for p in &shared {
                for f in &p.frames {
                    match f {
                        Frame::Datagram { data } | Frame::Stream { data, .. } => {
                            prop_assert!(
                                data.shares_storage_with(&wire),
                                "datagram/stream payload must be a zero-copy view"
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
