//! Loss detection and congestion control (RFC 9002, simplified).
//!
//! * RTT estimation: SRTT/RTTVAR per RFC 6298-style smoothing;
//! * loss detection: packet threshold (default 3) plus a time threshold of
//!   9/8 · max(SRTT, latest RTT);
//! * probe timeout (PTO) with exponential backoff, capped at
//!   [`MAX_PTO_BACKOFF`]× the base PTO so a dark peer costs a bounded,
//!   steady probe cadence instead of an unbounded timer;
//! * congestion control: slow start + AIMD on loss (NewReno flavoured,
//!   without recovery-period subtleties — fine for the low-bandwidth DNS
//!   workloads this repo studies).

use moqdns_netsim::SimTime;
use std::collections::BTreeMap;
use std::time::Duration;

/// Ceiling on the PTO backoff multiplier: the probe interval never
/// exceeds `MAX_PTO_BACKOFF × pto()`. 8× a ~100 ms base PTO keeps probes
/// under a second while an order of magnitude sparser than the first
/// retry — enough damping to survive a multi-second link flap without a
/// retransmit storm, yet bounded so recovery after the flap is prompt.
pub const MAX_PTO_BACKOFF: u32 = 8;
/// `log2(MAX_PTO_BACKOFF)` — the exponent the per-PTO doubling is
/// clamped to.
const MAX_PTO_BACKOFF_EXP: u32 = MAX_PTO_BACKOFF.ilog2();

/// Record of one in-flight packet.
#[derive(Debug, Clone)]
pub struct SentPacket {
    /// Transmission time.
    pub time_sent: SimTime,
    /// Bytes on the wire.
    pub size: usize,
    /// Whether it elicits an ACK (only those are PTO-relevant).
    pub ack_eliciting: bool,
    /// Opaque retransmission token: which stream ranges / crypto ranges /
    /// frames this packet carried, so the connection can requeue on loss.
    pub retx: Vec<RetxInfo>,
}

/// What to retransmit if a packet is lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetxInfo {
    /// Crypto bytes [offset, offset+len).
    Crypto {
        /// Start offset.
        offset: u64,
        /// Length.
        len: u64,
    },
    /// Stream bytes [offset, offset+len) (+FIN).
    Stream {
        /// Stream id value.
        id: u64,
        /// Start offset.
        offset: u64,
        /// Length.
        len: u64,
        /// Whether the frame carried FIN.
        fin: bool,
    },
    /// A MAX_DATA update (resend with current value).
    MaxData,
    /// A MAX_STREAM_DATA update for a stream.
    MaxStreamData {
        /// Stream id value.
        id: u64,
    },
    /// HANDSHAKE_DONE (server only).
    HandshakeDone,
    /// A handshake reply (ServerHello) — must be retransmittable or the
    /// client hangs.
    ServerHello,
}

/// RTT estimator (RFC 9002 §5).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Duration,
    rttvar: Duration,
    latest: Duration,
    has_sample: bool,
}

impl RttEstimator {
    /// Creates an estimator seeded with `initial_rtt`.
    pub fn new(initial_rtt: Duration) -> RttEstimator {
        RttEstimator {
            srtt: initial_rtt,
            rttvar: initial_rtt / 2,
            latest: initial_rtt,
            has_sample: false,
        }
    }

    /// Feeds a new RTT sample.
    pub fn update(&mut self, sample: Duration) {
        self.latest = sample;
        if !self.has_sample {
            self.srtt = sample;
            self.rttvar = sample / 2;
            self.has_sample = true;
        } else {
            let diff = self.srtt.abs_diff(sample);
            self.rttvar = (self.rttvar * 3 + diff) / 4;
            self.srtt = (self.srtt * 7 + sample) / 8;
        }
    }

    /// Smoothed RTT.
    pub fn srtt(&self) -> Duration {
        self.srtt
    }

    /// Most recent sample.
    pub fn latest(&self) -> Duration {
        self.latest
    }

    /// Probe timeout: SRTT + max(4·RTTVAR, 1 ms).
    pub fn pto(&self) -> Duration {
        self.srtt + (self.rttvar * 4).max(Duration::from_millis(1))
    }

    /// Loss time threshold: 9/8 · max(SRTT, latest).
    pub fn loss_delay(&self) -> Duration {
        let base = self.srtt.max(self.latest);
        base + base / 8
    }
}

/// Outcome of processing an ACK or a timeout.
#[derive(Debug, Default)]
pub struct LossEvent {
    /// Packets newly declared lost (their retransmission info).
    pub lost: Vec<RetxInfo>,
    /// Retransmission info of packets newly acked — the connection feeds
    /// stream ranges back to `SendStream::on_ack` so send buffers drain
    /// and fully-delivered streams can be retired.
    pub acked: Vec<RetxInfo>,
    /// Number of packets newly acked.
    pub newly_acked: usize,
    /// Whether any loss occurred (for congestion response).
    pub had_loss: bool,
}

/// Sent-packet ledger + loss detection + congestion window.
#[derive(Debug)]
pub struct Recovery {
    sent: BTreeMap<u64, SentPacket>,
    largest_acked: Option<u64>,
    /// RTT state.
    pub rtt: RttEstimator,
    packet_threshold: u64,
    /// Congestion window, bytes.
    cwnd: u64,
    /// Slow start threshold.
    ssthresh: u64,
    bytes_in_flight: u64,
    pto_count: u32,
    /// Earliest potential time-threshold loss among in-flight packets.
    loss_time: Option<SimTime>,
}

impl Recovery {
    /// Creates recovery state.
    pub fn new(initial_rtt: Duration, initial_cwnd: u64, packet_threshold: u64) -> Recovery {
        Recovery {
            sent: BTreeMap::new(),
            largest_acked: None,
            rtt: RttEstimator::new(initial_rtt),
            packet_threshold,
            cwnd: initial_cwnd,
            ssthresh: u64::MAX,
            bytes_in_flight: 0,
            pto_count: 0,
            loss_time: None,
        }
    }

    /// Bytes currently in flight.
    pub fn bytes_in_flight(&self) -> u64 {
        self.bytes_in_flight
    }

    /// Current congestion window.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// True if congestion control permits sending `bytes` more.
    pub fn can_send(&self, bytes: usize) -> bool {
        self.bytes_in_flight + bytes as u64 <= self.cwnd
    }

    /// Updates the recorded send time of `pn` (the connection seals packets
    /// slightly before it stamps the datagram with the transmit time).
    pub fn touch_sent_time(&mut self, pn: u64, now: SimTime) {
        if let Some(p) = self.sent.get_mut(&pn) {
            p.time_sent = now;
        }
    }

    /// Records a transmitted packet.
    pub fn on_packet_sent(&mut self, pn: u64, pkt: SentPacket) {
        if pkt.ack_eliciting {
            self.bytes_in_flight += pkt.size as u64;
        }
        self.sent.insert(pn, pkt);
    }

    /// True if any ack-eliciting packets are unacknowledged.
    pub fn has_in_flight(&self) -> bool {
        self.sent.values().any(|p| p.ack_eliciting)
    }

    /// Processes ACK ranges; returns losses + ack accounting.
    pub fn on_ack_received(&mut self, now: SimTime, ranges: &[(u64, u64)]) -> LossEvent {
        let mut ev = LossEvent::default();
        let mut largest_newly_acked: Option<(u64, SimTime)> = None;

        for &(start, end) in ranges {
            // Collect to avoid borrowing issues.
            let pns: Vec<u64> = self.sent.range(start..=end).map(|(pn, _)| *pn).collect();
            for pn in pns {
                if let Some(pkt) = self.sent.remove(&pn) {
                    if pkt.ack_eliciting {
                        self.bytes_in_flight = self.bytes_in_flight.saturating_sub(pkt.size as u64);
                        // Congestion: slow start or avoidance.
                        if self.cwnd < self.ssthresh {
                            self.cwnd += pkt.size as u64;
                        } else {
                            self.cwnd += (pkt.size as u64 * pkt.size as u64 / self.cwnd).max(1);
                        }
                    }
                    ev.newly_acked += 1;
                    if largest_newly_acked.map(|(l, _)| pn > l).unwrap_or(true) {
                        largest_newly_acked = Some((pn, pkt.time_sent));
                    }
                    ev.acked.extend(pkt.retx);
                }
            }
        }

        if let Some((pn, time_sent)) = largest_newly_acked {
            if self.largest_acked.map(|l| pn > l).unwrap_or(true) {
                self.largest_acked = Some(pn);
                self.rtt.update(now - time_sent);
            }
            self.pto_count = 0;
        }

        self.detect_losses(now, &mut ev);
        ev
    }

    /// Declares losses by packet threshold and time threshold.
    fn detect_losses(&mut self, now: SimTime, ev: &mut LossEvent) {
        let Some(largest_acked) = self.largest_acked else {
            self.loss_time = None;
            return;
        };
        let delay = self.rtt.loss_delay();
        let mut lost_pns = Vec::new();
        self.loss_time = None;
        for (&pn, pkt) in &self.sent {
            if pn > largest_acked {
                break;
            }
            let by_count = largest_acked - pn >= self.packet_threshold;
            let lost_at = pkt.time_sent + delay;
            let by_time = lost_at <= now;
            if by_count || by_time {
                lost_pns.push(pn);
            } else {
                // Earliest pending time-threshold deadline.
                self.loss_time = Some(match self.loss_time {
                    Some(t) => t.min(lost_at),
                    None => lost_at,
                });
            }
        }
        for pn in lost_pns {
            let pkt = self.sent.remove(&pn).unwrap();
            if pkt.ack_eliciting {
                self.bytes_in_flight = self.bytes_in_flight.saturating_sub(pkt.size as u64);
            }
            ev.lost.extend(pkt.retx);
            ev.had_loss = true;
        }
        if ev.had_loss {
            // AIMD response once per loss event batch.
            self.ssthresh = (self.cwnd / 2).max(2 * 1200);
            self.cwnd = self.ssthresh;
        }
    }

    /// When the loss-detection timer should next fire (time-threshold or PTO).
    pub fn next_timeout(&self) -> Option<SimTime> {
        if let Some(t) = self.loss_time {
            return Some(t);
        }
        // PTO from the oldest ack-eliciting in-flight packet. The backoff
        // doubles per consecutive PTO but is capped at MAX_PTO_BACKOFF ×
        // the base PTO: against a dark peer the probe cadence settles to a
        // bounded, steady interval instead of growing without limit (the
        // hazard `core::links::redial` works around — an uncapped timer
        // under an hour-long idle timeout can exceed the idle window
        // itself, leaving a stalled dial retransmitting into a void for
        // minutes between probes).
        let oldest = self
            .sent
            .values()
            .filter(|p| p.ack_eliciting)
            .map(|p| p.time_sent)
            .min()?;
        let backoff = 2u32.saturating_pow(self.pto_count.min(MAX_PTO_BACKOFF_EXP));
        Some(oldest + self.rtt.pto() * backoff)
    }

    /// Handles the loss-detection timer firing: declares time-threshold
    /// losses; if none pending, treats it as a PTO (retransmit everything
    /// outstanding — aggressive but simple and correct).
    pub fn on_timeout(&mut self, now: SimTime) -> LossEvent {
        let mut ev = LossEvent::default();
        self.detect_losses(now, &mut ev);
        if !ev.had_loss && self.has_in_flight() {
            // PTO: requeue all outstanding data for retransmission.
            self.pto_count += 1;
            let pns: Vec<u64> = self.sent.keys().copied().collect();
            for pn in pns {
                let pkt = self.sent.remove(&pn).unwrap();
                if pkt.ack_eliciting {
                    self.bytes_in_flight = self.bytes_in_flight.saturating_sub(pkt.size as u64);
                }
                ev.lost.extend(pkt.retx);
            }
            ev.had_loss = true;
            self.ssthresh = (self.cwnd / 2).max(2 * 1200);
            self.cwnd = self.ssthresh;
        }
        ev
    }

    /// Number of tracked in-flight packets (diagnostics).
    pub fn tracked(&self) -> usize {
        self.sent.len()
    }
}

/// Tracks received packet numbers and builds ACK ranges.
#[derive(Debug, Default)]
pub struct AckTracker {
    /// Received ranges, merged, as start -> end (inclusive).
    ranges: BTreeMap<u64, u64>,
    /// Whether an ACK-eliciting packet arrived since the last ACK we sent.
    pub ack_pending: bool,
}

impl AckTracker {
    /// Records receipt of packet `pn`. Returns false for duplicates.
    pub fn on_packet(&mut self, pn: u64) -> bool {
        // Find a range that contains or abuts pn.
        if let Some((&s, &e)) = self.ranges.range(..=pn).next_back() {
            if pn <= e {
                return false; // duplicate
            }
            if pn == e + 1 {
                // Extend; maybe merge with the next range.
                let mut new_end = pn;
                if let Some((&ns, &ne)) = self.ranges.range(pn + 1..).next() {
                    if ns == pn + 1 {
                        self.ranges.remove(&ns);
                        new_end = ne;
                    }
                }
                self.ranges.insert(s, new_end);
                return true;
            }
        }
        // Maybe abuts the next range from below.
        if let Some((&ns, &ne)) = self.ranges.range(pn + 1..).next() {
            if ns == pn + 1 {
                self.ranges.remove(&ns);
                self.ranges.insert(pn, ne);
                return true;
            }
        }
        self.ranges.insert(pn, pn);
        true
    }

    /// ACK ranges, highest first, capped at 32 ranges.
    pub fn ack_ranges(&self) -> Vec<(u64, u64)> {
        self.ranges
            .iter()
            .rev()
            .take(32)
            .map(|(&s, &e)| (s, e))
            .collect()
    }

    /// True if anything has been received.
    pub fn any(&self) -> bool {
        !self.ranges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn pkt(time_ms: u64, size: usize) -> SentPacket {
        SentPacket {
            time_sent: t(time_ms),
            size,
            ack_eliciting: true,
            retx: vec![RetxInfo::Stream {
                id: 0,
                offset: 0,
                len: size as u64,
                fin: false,
            }],
        }
    }

    #[test]
    fn rtt_estimator_smoothing() {
        let mut rtt = RttEstimator::new(Duration::from_millis(100));
        rtt.update(Duration::from_millis(50));
        assert_eq!(rtt.srtt(), Duration::from_millis(50));
        rtt.update(Duration::from_millis(100));
        // 7/8*50 + 1/8*100 = 56.25
        assert!(rtt.srtt() > Duration::from_millis(55) && rtt.srtt() < Duration::from_millis(58));
        assert!(rtt.pto() > rtt.srtt());
        assert!(rtt.loss_delay() >= rtt.srtt());
    }

    #[test]
    fn ack_removes_and_grows_cwnd() {
        let mut r = Recovery::new(Duration::from_millis(100), 12_000, 3);
        r.on_packet_sent(0, pkt(0, 1200));
        assert_eq!(r.bytes_in_flight(), 1200);
        let ev = r.on_ack_received(t(100), &[(0, 0)]);
        assert_eq!(ev.newly_acked, 1);
        assert_eq!(r.bytes_in_flight(), 0);
        assert!(r.cwnd() > 12_000); // slow start growth
        assert_eq!(r.rtt.latest(), Duration::from_millis(100));
    }

    #[test]
    fn packet_threshold_loss() {
        let mut r = Recovery::new(Duration::from_millis(100), 12_000, 3);
        for pn in 0..5 {
            r.on_packet_sent(pn, pkt(pn, 1200));
        }
        // ACK only pn=4: pn 0 and 1 are ≥3 behind → lost.
        let ev = r.on_ack_received(t(100), &[(4, 4)]);
        assert!(ev.had_loss);
        assert_eq!(ev.lost.len(), 2);
        assert!(r.cwnd() < 12_000 + 1200); // multiplicative decrease happened
    }

    #[test]
    fn time_threshold_loss_via_timer() {
        let mut r = Recovery::new(Duration::from_millis(100), 12_000, 3);
        r.on_packet_sent(0, pkt(0, 500));
        r.on_packet_sent(1, pkt(1, 500));
        // ACK pn=1 quickly; pn=0 is only 1 behind (< threshold) but the
        // time threshold will catch it.
        let ev = r.on_ack_received(t(10), &[(1, 1)]);
        assert!(!ev.had_loss);
        let deadline = r.next_timeout().expect("loss timer armed");
        let ev = r.on_timeout(deadline);
        assert!(ev.had_loss);
        assert_eq!(ev.lost.len(), 1);
    }

    #[test]
    fn pto_requeues_everything() {
        let mut r = Recovery::new(Duration::from_millis(100), 12_000, 3);
        r.on_packet_sent(0, pkt(0, 500));
        let deadline = r.next_timeout().unwrap();
        let ev = r.on_timeout(deadline);
        assert!(ev.had_loss);
        assert_eq!(ev.lost.len(), 1);
        assert!(!r.has_in_flight());
        // Successive PTOs back off.
        r.on_packet_sent(1, pkt(deadline.as_millis(), 500));
        let d2 = r.next_timeout().unwrap();
        assert!(d2 - deadline > r.rtt.pto());
    }

    #[test]
    fn pto_backoff_is_capped_against_a_dark_peer() {
        // Regression for the unbounded-backoff hazard: a peer that stays
        // dark for many consecutive PTOs must leave the probe interval at
        // a bounded multiple of the base PTO, so revival is detected
        // promptly and each probe retransmits only the (bounded) set of
        // outstanding frames — never a burst that grows with how long the
        // peer was dark.
        let mut r = Recovery::new(Duration::from_millis(100), 12_000, 3);
        let mut now = t(0);
        let mut intervals = Vec::new();
        let mut largest_retx = 0usize;
        for pn in 0..32u64 {
            r.on_packet_sent(pn, pkt(now.as_millis(), 500));
            let deadline = r.next_timeout().expect("PTO armed while in flight");
            intervals.push(deadline - now);
            now = deadline;
            let ev = r.on_timeout(now);
            assert!(ev.had_loss, "every dark-peer timeout is a PTO");
            largest_retx = largest_retx.max(ev.lost.len());
        }
        let cap = r.rtt.pto() * MAX_PTO_BACKOFF;
        for (i, d) in intervals.iter().enumerate() {
            assert!(
                *d <= cap,
                "PTO {i} interval {d:?} exceeds the {MAX_PTO_BACKOFF}x cap {cap:?}"
            );
        }
        // The interval stops growing once the cap is reached …
        let tail = &intervals[MAX_PTO_BACKOFF.ilog2() as usize..];
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "interval kept growing past the cap: {tail:?}"
        );
        // … and each probe requeues exactly the one outstanding packet's
        // frames: no accumulation across 32 dark PTOs.
        assert_eq!(largest_retx, 1, "retransmit set grew while dark");
        // Revival: a single ACK resets the backoff to the base PTO.
        r.on_packet_sent(100, pkt(now.as_millis(), 500));
        r.on_ack_received(now + Duration::from_millis(100), &[(100, 100)]);
        r.on_packet_sent(
            101,
            pkt((now + Duration::from_millis(100)).as_millis(), 500),
        );
        let after = r.next_timeout().unwrap() - (now + Duration::from_millis(100));
        assert!(
            after <= r.rtt.pto() * 2,
            "backoff did not reset on revival: {after:?}"
        );
    }

    #[test]
    fn can_send_respects_cwnd() {
        let mut r = Recovery::new(Duration::from_millis(100), 2400, 3);
        assert!(r.can_send(1200));
        r.on_packet_sent(0, pkt(0, 1200));
        assert!(r.can_send(1200));
        r.on_packet_sent(1, pkt(0, 1200));
        assert!(!r.can_send(1));
    }

    #[test]
    fn ack_tracker_merges_ranges() {
        let mut a = AckTracker::default();
        assert!(a.on_packet(0));
        assert!(a.on_packet(1));
        assert!(a.on_packet(5));
        assert!(a.on_packet(3));
        assert!(!a.on_packet(1)); // duplicate
        assert_eq!(a.ack_ranges(), vec![(5, 5), (3, 3), (0, 1)]);
        assert!(a.on_packet(2)); // merges 0-1, 2, 3 into 0-3
        assert_eq!(a.ack_ranges(), vec![(5, 5), (0, 3)]);
        assert!(a.on_packet(4)); // merges all
        assert_eq!(a.ack_ranges(), vec![(0, 5)]);
    }

    #[test]
    fn ack_tracker_out_of_order_prepend() {
        let mut a = AckTracker::default();
        assert!(a.on_packet(5));
        assert!(a.on_packet(4)); // abuts from below
        assert_eq!(a.ack_ranges(), vec![(4, 5)]);
    }

    #[test]
    fn no_timer_when_nothing_in_flight() {
        let r = Recovery::new(Duration::from_millis(100), 12_000, 3);
        assert!(r.next_timeout().is_none());
    }
}
