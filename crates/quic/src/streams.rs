//! Stream state machines: ordered, reliable, flow-controlled byte streams.
//!
//! Stream id numbering follows RFC 9000 §2.1: the two low bits encode the
//! initiator (bit 0: 0 = client, 1 = server) and directionality (bit 1:
//! 0 = bidirectional, 1 = unidirectional).

use moqdns_wire::Payload;
use std::collections::BTreeMap;

/// Direction of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Both sides may send.
    Bi,
    /// Only the initiator sends.
    Uni,
}

/// A QUIC stream identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u64);

impl StreamId {
    /// Builds the `n`-th stream of the given kind.
    pub fn new(initiator_is_client: bool, dir: Dir, index: u64) -> StreamId {
        let mut v = index << 2;
        if !initiator_is_client {
            v |= 0b01;
        }
        if dir == Dir::Uni {
            v |= 0b10;
        }
        StreamId(v)
    }

    /// True if the client initiated this stream.
    pub fn initiated_by_client(self) -> bool {
        self.0 & 0b01 == 0
    }

    /// The stream's direction.
    pub fn dir(self) -> Dir {
        if self.0 & 0b10 == 0 {
            Dir::Bi
        } else {
            Dir::Uni
        }
    }

    /// The per-kind index (sequence number).
    pub fn index(self) -> u64 {
        self.0 >> 2
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Sender half of a stream.
#[derive(Debug)]
pub struct SendStream {
    /// Bytes not yet fully acknowledged; `base` is the stream offset of
    /// `buf[0]`.
    buf: Vec<u8>,
    base: u64,
    /// Total bytes written by the application.
    write_offset: u64,
    /// Ranges queued for (re)transmission, as (start, end) stream offsets.
    pending: Vec<(u64, u64)>,
    /// Acked ranges above `base` (sparse acks).
    acked: BTreeMap<u64, u64>,
    /// Application called finish at this offset.
    fin_offset: Option<u64>,
    /// Whether the FIN still needs to be (re)sent.
    fin_pending: bool,
    /// Whether FIN has been acknowledged.
    fin_acked: bool,
    /// Peer's flow control limit for this stream.
    pub max_stream_data: u64,
    /// Stream was reset (no more sending).
    pub reset: bool,
}

impl SendStream {
    /// Creates a sender with the peer-advertised window.
    pub fn new(max_stream_data: u64) -> SendStream {
        SendStream {
            buf: Vec::new(),
            base: 0,
            write_offset: 0,
            pending: Vec::new(),
            acked: BTreeMap::new(),
            fin_offset: None,
            fin_pending: false,
            fin_acked: false,
            max_stream_data,
            reset: false,
        }
    }

    /// Bytes the application may still write within stream flow control.
    pub fn writable_bytes(&self) -> u64 {
        self.max_stream_data.saturating_sub(self.write_offset)
    }

    /// Appends application data (caller must respect `writable_bytes`).
    /// Returns how many bytes were accepted.
    pub fn write(&mut self, data: &[u8]) -> usize {
        if self.fin_offset.is_some() || self.reset {
            return 0;
        }
        let allowed = (self.writable_bytes() as usize).min(data.len());
        if allowed == 0 {
            return 0;
        }
        self.buf.extend_from_slice(&data[..allowed]);
        let start = self.write_offset;
        self.write_offset += allowed as u64;
        self.pending.push((start, self.write_offset));
        allowed
    }

    /// Marks the stream finished at the current write offset.
    pub fn finish(&mut self) {
        if self.fin_offset.is_none() && !self.reset {
            self.fin_offset = Some(self.write_offset);
            self.fin_pending = true;
        }
    }

    /// True when everything (including FIN) has been acknowledged.
    pub fn is_fully_acked(&self) -> bool {
        self.fin_acked && self.base == self.fin_offset.unwrap_or(u64::MAX)
    }

    /// Bytes still buffered awaiting acknowledgement (the send backlog an
    /// unresponsive peer forces us to hold).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// True if data or FIN is waiting to be transmitted.
    pub fn has_pending(&self) -> bool {
        !self.reset && (!self.pending.is_empty() || self.fin_pending)
    }

    /// Takes up to `max_len` bytes of pending data for transmission.
    /// Returns `(offset, data, fin)`; `fin` is set when this transmission
    /// ends exactly at the FIN offset.
    pub fn pop_transmit(&mut self, max_len: usize) -> Option<(u64, Vec<u8>, bool)> {
        if self.reset {
            return None;
        }
        // Drop or trim ranges a late ACK already covered (base advanced
        // past them after the loss was queued).
        let base = self.base;
        self.pending.retain_mut(|(s, e)| {
            *s = (*s).max(base);
            e > s
        });
        if let Some(pos) = self.pending.iter().position(|(s, e)| e > s) {
            let (start, end) = self.pending[pos];
            let take = ((end - start) as usize).min(max_len) as u64;
            let tstart = start;
            let tend = start + take;
            if tend == end {
                self.pending.remove(pos);
            } else {
                self.pending[pos].0 = tend;
            }
            let data = self.slice(tstart, tend);
            let fin = self.fin_offset == Some(tend) && {
                self.fin_pending = false;
                true
            };
            return Some((tstart, data, fin));
        }
        if self.fin_pending {
            self.fin_pending = false;
            return Some((self.fin_offset.unwrap(), Vec::new(), true));
        }
        None
    }

    fn slice(&self, start: u64, end: u64) -> Vec<u8> {
        let s = (start - self.base) as usize;
        let e = (end - self.base) as usize;
        self.buf[s..e].to_vec()
    }

    /// Records an acknowledged range (and FIN if `fin`).
    pub fn on_ack(&mut self, offset: u64, len: u64, fin: bool) {
        if fin {
            self.fin_acked = true;
        }
        if len > 0 {
            let end = offset + len;
            *self.acked.entry(offset).or_insert(end) =
                self.acked.get(&offset).copied().unwrap_or(end).max(end);
        }
        // Advance base over contiguously acked prefix.
        while let Some((&s, &e)) = self.acked.iter().next() {
            if s <= self.base {
                if e > self.base {
                    let drop = (e - self.base) as usize;
                    self.buf.drain(..drop.min(self.buf.len()));
                    self.base = e;
                }
                self.acked.remove(&s);
            } else {
                break;
            }
        }
    }

    /// Re-queues a lost range (and FIN if `fin`) for retransmission.
    pub fn on_loss(&mut self, offset: u64, len: u64, fin: bool) {
        if self.reset {
            return;
        }
        if fin && !self.fin_acked {
            self.fin_pending = true;
        }
        if len == 0 {
            return;
        }
        let (mut start, end) = (offset, offset + len);
        if end <= self.base {
            return; // already acked via another copy
        }
        start = start.max(self.base);
        self.pending.push((start, end));
    }
}

/// Receiver half of a stream.
#[derive(Debug)]
pub struct RecvStream {
    /// Out-of-order segments: offset -> shared payload sub-view. Frames
    /// decoded from a datagram hand their [`Payload`] slice straight in —
    /// the receive path never copies stream bytes until the application
    /// reads them out.
    segments: BTreeMap<u64, Payload>,
    /// Next offset the application will read.
    read_offset: u64,
    /// Highest offset+len seen (for flow control accounting).
    highest_seen: u64,
    /// Stream length once FIN arrives.
    fin_offset: Option<u64>,
    /// Local flow control limit we advertised.
    pub max_stream_data: u64,
    /// Stream was reset by the peer.
    pub reset: Option<u64>,
}

impl RecvStream {
    /// Creates a receiver advertising `max_stream_data`.
    pub fn new(max_stream_data: u64) -> RecvStream {
        RecvStream {
            segments: BTreeMap::new(),
            read_offset: 0,
            highest_seen: 0,
            fin_offset: None,
            max_stream_data,
            reset: None,
        }
    }

    /// Ingests a STREAM frame. Returns `false` on a flow-control violation
    /// or inconsistent FIN. Accepts anything convertible into a
    /// [`Payload`]; passing the sub-view a frame decoder produced stores
    /// it zero-copy (the backing datagram buffer is shared, not cloned).
    pub fn on_stream_frame(&mut self, offset: u64, data: impl Into<Payload>, fin: bool) -> bool {
        let data: Payload = data.into();
        let end = offset + data.len() as u64;
        if end > self.max_stream_data {
            return false;
        }
        if let Some(f) = self.fin_offset {
            if end > f || (fin && end != f) {
                return false;
            }
        }
        if fin {
            match self.fin_offset {
                Some(f) if f != end => return false,
                _ => self.fin_offset = Some(end),
            }
        }
        self.highest_seen = self.highest_seen.max(end);
        if end > self.read_offset && !data.is_empty() {
            // Store; overlapping segments carry identical bytes (same
            // stream), so keeping the longer view at an offset is safe.
            match self.segments.get(&offset) {
                Some(existing) if existing.len() >= data.len() => {}
                _ => {
                    self.segments.insert(offset, data);
                }
            }
        }
        true
    }

    /// True if contiguous data is available at the read offset, or the
    /// stream is finished/reset.
    pub fn is_readable(&self) -> bool {
        self.reset.is_some()
            || self.fin_reached()
            || self
                .segments
                .range(..=self.read_offset)
                .any(|(s, d)| s + d.len() as u64 > self.read_offset)
    }

    fn fin_reached(&self) -> bool {
        self.fin_offset == Some(self.read_offset)
    }

    /// Reads up to `max` contiguous bytes. Returns `(data, finished)`.
    pub fn read(&mut self, max: usize) -> (Vec<u8>, bool) {
        let mut out = Vec::new();
        while out.len() < max {
            // Find a segment covering read_offset.
            let seg = self
                .segments
                .range(..=self.read_offset)
                .next_back()
                .map(|(s, d)| (*s, d.len() as u64));
            let Some((s, len)) = seg else { break };
            let seg_end = s + len;
            if seg_end <= self.read_offset {
                self.segments.remove(&s);
                continue;
            }
            let avail = (seg_end - self.read_offset) as usize;
            let take = avail.min(max - out.len());
            let data = self.segments.get(&s).unwrap();
            let from = (self.read_offset - s) as usize;
            out.extend_from_slice(&data[from..from + take]);
            self.read_offset += take as u64;
            if self.read_offset >= seg_end {
                self.segments.remove(&s);
            }
        }
        (out, self.fin_reached())
    }

    /// Total bytes consumed by the application.
    pub fn consumed(&self) -> u64 {
        self.read_offset
    }

    /// Highest received offset (for connection flow control).
    pub fn highest_seen(&self) -> u64 {
        self.highest_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stream_id_numbering_matches_rfc9000() {
        assert_eq!(StreamId::new(true, Dir::Bi, 0).0, 0);
        assert_eq!(StreamId::new(false, Dir::Bi, 0).0, 1);
        assert_eq!(StreamId::new(true, Dir::Uni, 0).0, 2);
        assert_eq!(StreamId::new(false, Dir::Uni, 0).0, 3);
        assert_eq!(StreamId::new(true, Dir::Bi, 1).0, 4);
        assert_eq!(StreamId::new(false, Dir::Uni, 2).0, 11);
        let id = StreamId::new(false, Dir::Uni, 5);
        assert!(!id.initiated_by_client());
        assert_eq!(id.dir(), Dir::Uni);
        assert_eq!(id.index(), 5);
    }

    #[test]
    fn send_write_transmit_ack_cycle() {
        let mut s = SendStream::new(1000);
        assert_eq!(s.write(b"hello world"), 11);
        let (off, data, fin) = s.pop_transmit(5).unwrap();
        assert_eq!((off, data.as_slice(), fin), (0, &b"hello"[..], false));
        let (off, data, _) = s.pop_transmit(100).unwrap();
        assert_eq!((off, data.as_slice()), (5, &b" world"[..]));
        assert!(s.pop_transmit(10).is_none());
        s.finish();
        let (off, data, fin) = s.pop_transmit(10).unwrap();
        assert_eq!((off, data.len(), fin), (11, 0, true));
        s.on_ack(0, 5, false);
        s.on_ack(5, 6, false);
        s.on_ack(11, 0, true);
        assert!(s.is_fully_acked());
    }

    #[test]
    fn send_flow_control_limits_writes() {
        let mut s = SendStream::new(4);
        assert_eq!(s.write(b"abcdef"), 4);
        assert_eq!(s.write(b"gh"), 0);
        s.max_stream_data = 10;
        assert_eq!(s.write(b"efgh"), 4);
    }

    #[test]
    fn send_loss_requeues_range() {
        let mut s = SendStream::new(1000);
        s.write(b"0123456789");
        let (o1, d1, _) = s.pop_transmit(4).unwrap();
        let (_o2, _d2, _) = s.pop_transmit(100).unwrap();
        assert!(!s.has_pending());
        // First packet lost: requeue.
        s.on_loss(o1, d1.len() as u64, false);
        let (ro, rd, _) = s.pop_transmit(100).unwrap();
        assert_eq!(ro, 0);
        assert_eq!(rd, b"0123");
    }

    #[test]
    fn send_loss_after_ack_is_ignored() {
        let mut s = SendStream::new(1000);
        s.write(b"abcd");
        let (o, d, _) = s.pop_transmit(100).unwrap();
        s.on_ack(o, d.len() as u64, false);
        s.on_loss(o, d.len() as u64, false);
        assert!(!s.has_pending());
    }

    #[test]
    fn send_fin_only_stream() {
        let mut s = SendStream::new(100);
        s.finish();
        let (off, data, fin) = s.pop_transmit(10).unwrap();
        assert_eq!((off, data.len(), fin), (0, 0, true));
        // FIN lost → retransmitted.
        s.on_loss(0, 0, true);
        assert!(s.has_pending());
        let (_, _, fin) = s.pop_transmit(10).unwrap();
        assert!(fin);
        s.on_ack(0, 0, true);
        assert!(s.is_fully_acked());
    }

    #[test]
    fn recv_in_order() {
        let mut r = RecvStream::new(1000);
        assert!(r.on_stream_frame(0, b"hel", false));
        assert!(r.on_stream_frame(3, b"lo", true));
        assert!(r.is_readable());
        let (data, fin) = r.read(100);
        assert_eq!(data, b"hello");
        assert!(fin);
    }

    #[test]
    fn recv_out_of_order_reassembly() {
        let mut r = RecvStream::new(1000);
        assert!(r.on_stream_frame(3, b"lo", true));
        assert!(!r.is_readable());
        assert!(r.on_stream_frame(0, b"hel", false));
        let (data, fin) = r.read(100);
        assert_eq!(data, b"hello");
        assert!(fin);
    }

    #[test]
    fn recv_duplicate_and_overlap() {
        let mut r = RecvStream::new(1000);
        assert!(r.on_stream_frame(0, b"abc", false));
        assert!(r.on_stream_frame(0, b"abc", false)); // exact duplicate
        assert!(r.on_stream_frame(2, b"cde", true)); // overlap
        let (data, fin) = r.read(100);
        assert_eq!(data, b"abcde");
        assert!(fin);
    }

    #[test]
    fn recv_flow_control_violation() {
        let mut r = RecvStream::new(4);
        assert!(!r.on_stream_frame(0, b"abcde", false));
        assert!(r.on_stream_frame(0, b"abcd", false));
    }

    #[test]
    fn recv_inconsistent_fin_rejected() {
        let mut r = RecvStream::new(100);
        assert!(r.on_stream_frame(0, b"abc", true));
        assert!(!r.on_stream_frame(0, b"abcd", false)); // beyond fin
        assert!(!r.on_stream_frame(0, b"ab", true)); // different fin point
    }

    #[test]
    fn recv_partial_reads() {
        let mut r = RecvStream::new(100);
        r.on_stream_frame(0, b"abcdef", true);
        let (d1, f1) = r.read(2);
        assert_eq!((d1.as_slice(), f1), (&b"ab"[..], false));
        let (d2, f2) = r.read(100);
        assert_eq!((d2.as_slice(), f2), (&b"cdef"[..], true));
        assert_eq!(r.consumed(), 6);
    }

    #[test]
    fn recv_empty_fin() {
        let mut r = RecvStream::new(100);
        assert!(r.on_stream_frame(0, b"", true));
        assert!(r.is_readable());
        let (d, fin) = r.read(10);
        assert!(d.is_empty());
        assert!(fin);
    }

    proptest! {
        /// Any segmentation and arrival order reassembles to the original.
        #[test]
        fn prop_reassembly(
            data in proptest::collection::vec(any::<u8>(), 1..200),
            cuts in proptest::collection::vec(1usize..199, 0..6),
            seed in any::<u64>(),
        ) {
            let mut cuts: Vec<usize> = cuts.into_iter().filter(|c| *c < data.len()).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let mut segments = Vec::new();
            let mut prev = 0;
            for c in cuts {
                segments.push((prev as u64, data[prev..c].to_vec(), false));
                prev = c;
            }
            segments.push((prev as u64, data[prev..].to_vec(), true));
            // Shuffle deterministically by seed.
            let mut order: Vec<usize> = (0..segments.len()).collect();
            let mut s = seed;
            for i in (1..order.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (s % (i as u64 + 1)) as usize);
            }
            let mut r = RecvStream::new(10_000);
            for &i in &order {
                let (off, seg, fin) = &segments[i];
                prop_assert!(r.on_stream_frame(*off, seg, *fin));
            }
            let (out, fin) = r.read(10_000);
            prop_assert!(fin);
            prop_assert_eq!(out, data);
        }

        /// The zero-copy ingest path (shared [`Payload`] sub-views of one
        /// backing buffer) reassembles byte-identically to the copying
        /// path (each segment copied into its own allocation), under any
        /// segmentation, arrival order, duplication, and read chunking —
        /// and the stored views really do share the backing storage.
        #[test]
        fn prop_zero_copy_ingest_equals_copying(
            data in proptest::collection::vec(any::<u8>(), 1..300),
            cuts in proptest::collection::vec(1usize..299, 0..8),
            dup in proptest::collection::vec(any::<bool>(), 0..8),
            seed in any::<u64>(),
            chunk in 1usize..64,
        ) {
            let backing = Payload::new(data.clone());
            let mut cuts: Vec<usize> = cuts.into_iter().filter(|c| *c < data.len()).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let bounds: Vec<(usize, usize)> = {
                let mut b = Vec::new();
                let mut prev = 0;
                for c in cuts {
                    b.push((prev, c));
                    prev = c;
                }
                b.push((prev, data.len()));
                b
            };
            // Segment list with seeded duplicates, shuffled by seed.
            let mut order: Vec<usize> = (0..bounds.len()).collect();
            for (i, d) in dup.iter().enumerate() {
                if *d {
                    order.push(i % bounds.len());
                }
            }
            let mut s = seed;
            for i in (1..order.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (s % (i as u64 + 1)) as usize);
            }
            let mut zc = RecvStream::new(10_000);
            let mut copying = RecvStream::new(10_000);
            for &i in &order {
                let (start, end) = bounds[i];
                let fin = end == data.len();
                let view = backing.slice(start..end);
                prop_assert!(view.shares_storage_with(&backing));
                prop_assert!(zc.on_stream_frame(start as u64, view, fin));
                prop_assert!(copying.on_stream_frame(start as u64, data[start..end].to_vec(), fin));
            }
            // Stored segments share the backing buffer: ingest copied nothing.
            for p in zc.segments.values() {
                prop_assert!(p.shares_storage_with(&backing));
            }
            loop {
                let (a, fa) = zc.read(chunk);
                let (b, fb) = copying.read(chunk);
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(fa, fb);
                if fa || a.is_empty() { break; }
            }
            prop_assert_eq!(zc.consumed(), data.len() as u64);
        }

        /// Writer + arbitrary transmit sizes + acks deliver everything.
        #[test]
        fn prop_send_delivers_all(
            data in proptest::collection::vec(any::<u8>(), 1..300),
            chunk in 1usize..64,
        ) {
            let mut s = SendStream::new(1_000_000);
            s.write(&data);
            s.finish();
            let mut r = RecvStream::new(1_000_000);
            while let Some((off, seg, fin)) = s.pop_transmit(chunk) {
                prop_assert!(r.on_stream_frame(off, &seg, fin));
                s.on_ack(off, seg.len() as u64, fin);
            }
            prop_assert!(s.is_fully_acked());
            let (out, fin) = r.read(usize::MAX);
            prop_assert!(fin);
            prop_assert_eq!(out, data);
        }
    }
}
