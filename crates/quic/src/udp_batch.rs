//! Batched UDP syscalls: `recvmmsg`/`sendmmsg` wrappers with a
//! single-datagram fallback.
//!
//! The live data plane pays one syscall per datagram on the PR 8 path:
//! `recv_from` in, `send_to` out. At saturation rates the syscall
//! dominates, so this module moves whole bursts per syscall:
//!
//! * [`RecvBatcher`]: one `recvmmsg(MSG_WAITFORONE)` blocks (under the
//!   socket's armed `SO_RCVTIMEO`) until the first datagram lands, then
//!   returns it *plus* everything else already queued — the burst the
//!   old path needed `1 + k` syscalls and a timeout re-arm to drain;
//! * [`SendBatcher`]: one `sendmmsg` flushes up to [`MAX_BATCH`]
//!   datagrams per syscall, each with its own destination, handling
//!   partial completion. Its rings are a few KiB (no receive slab), so
//!   a host holding many sockets can afford one per socket.
//!
//! The wrappers use raw `extern "C"` declarations (std links libc on
//! unix; no `libc` crate — the same idiom as the daemon's
//! `SO_REUSEPORT` bind). All buffers, iovecs and message headers are
//! preallocated in the batcher and reused across calls, so the hot loop
//! is allocation-free up to the one unavoidable copy of each received
//! datagram into its shared [`Payload`] handle.
//!
//! **Fallback:** construction honors the `MOQDNS_NO_MMSG` environment
//! variable, and a runtime `ENOSYS` from either syscall latches a
//! process-wide flag; both drop the batchers onto the single-datagram
//! path (`recv_from` + non-blocking `recvfrom` drain / `send_to` loop),
//! which is property-tested byte-identical to the batched path below.

use moqdns_wire::Payload;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};

/// Most datagrams moved per syscall, either direction.
pub const MAX_BATCH: usize = 64;
/// Per-datagram receive buffer. Comfortably above the transport's
/// `max_udp_payload` (1350); a datagram that still overflows is dropped
/// (`MSG_TRUNC`) rather than delivered corrupt.
const BUF_BYTES: usize = 4096;

/// Latched when a batched syscall reports `ENOSYS`: the kernel (or a
/// seccomp filter) lacks it, so every batcher in the process falls back.
static MMSG_UNAVAILABLE: AtomicBool = AtomicBool::new(false);

const ENOSYS: i32 = 38;

/// Reads the process-level opt-out. Checked at construction, not cached
/// globally, so tests can flip the environment between phases.
pub fn mmsg_disabled_by_env() -> bool {
    std::env::var_os("MOQDNS_NO_MMSG").is_some_and(|v| v != "0" && !v.is_empty())
}

fn batching_available(force_single: bool) -> bool {
    let _ = force_single;
    #[cfg(target_os = "linux")]
    {
        !force_single && !MMSG_UNAVAILABLE.load(Ordering::Relaxed)
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

// ---------------------------------------------------------------------
// Raw sockaddr plumbing (IPv4 + IPv6), unix only.
// ---------------------------------------------------------------------

#[cfg(unix)]
mod raw {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddrV4, SocketAddrV6};

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    pub const MSG_DONTWAIT: i32 = 0x40;
    #[cfg(target_os = "linux")]
    pub const MSG_WAITFORONE: i32 = 0x10000;
    #[cfg(target_os = "linux")]
    pub const MSG_TRUNC: i32 = 0x20;

    /// Big enough for `sockaddr_in6`; plays the `sockaddr_storage` role.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    pub struct SockaddrStorage(pub [u8; 28]);

    impl SockaddrStorage {
        pub const ZERO: SockaddrStorage = SockaddrStorage([0; 28]);

        /// Encodes `addr`; returns the valid length for `msg_namelen`.
        pub fn encode(addr: SocketAddr) -> (SockaddrStorage, u32) {
            let mut s = SockaddrStorage::ZERO;
            match addr {
                SocketAddr::V4(v4) => {
                    s.0[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                    s.0[2..4].copy_from_slice(&v4.port().to_be_bytes());
                    s.0[4..8].copy_from_slice(&v4.ip().octets());
                    (s, 16)
                }
                SocketAddr::V6(v6) => {
                    s.0[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                    s.0[2..4].copy_from_slice(&v6.port().to_be_bytes());
                    s.0[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
                    s.0[8..24].copy_from_slice(&v6.ip().octets());
                    s.0[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                    (s, 28)
                }
            }
        }

        /// Decodes the kernel-filled peer address, if it is a family we
        /// speak.
        pub fn decode(&self) -> Option<SocketAddr> {
            let family = u16::from_ne_bytes([self.0[0], self.0[1]]);
            let port = u16::from_be_bytes([self.0[2], self.0[3]]);
            match family {
                AF_INET => {
                    let ip = Ipv4Addr::new(self.0[4], self.0[5], self.0[6], self.0[7]);
                    Some(SocketAddr::V4(SocketAddrV4::new(ip, port)))
                }
                AF_INET6 => {
                    let mut octets = [0u8; 16];
                    octets.copy_from_slice(&self.0[8..24]);
                    let flowinfo = u32::from_ne_bytes([self.0[4], self.0[5], self.0[6], self.0[7]]);
                    let scope =
                        u32::from_ne_bytes([self.0[24], self.0[25], self.0[26], self.0[27]]);
                    Some(SocketAddr::V6(SocketAddrV6::new(
                        Ipv6Addr::from(octets),
                        port,
                        flowinfo,
                        scope,
                    )))
                }
                _ => None,
            }
        }
    }

    #[repr(C)]
    pub struct IoVec {
        pub base: *mut u8,
        pub len: usize,
    }

    /// Linux `struct msghdr` (repr(C) inserts the `msg_namelen` padding
    /// on 64-bit targets exactly as the C layout does).
    #[repr(C)]
    pub struct MsgHdr {
        pub name: *mut SockaddrStorage,
        pub namelen: u32,
        pub iov: *mut IoVec,
        pub iovlen: usize,
        pub control: *mut u8,
        pub controllen: usize,
        pub flags: i32,
    }

    #[repr(C)]
    pub struct MMsgHdr {
        pub hdr: MsgHdr,
        pub len: u32,
    }

    impl MMsgHdr {
        pub fn zeroed() -> MMsgHdr {
            MMsgHdr {
                hdr: MsgHdr {
                    name: std::ptr::null_mut(),
                    namelen: 0,
                    iov: std::ptr::null_mut(),
                    iovlen: 0,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            }
        }
    }

    /// Ring arrays shared by both batch directions: one header + iovec +
    /// address slot per in-flight datagram. The pointers inside `hdrs`
    /// are re-primed before every syscall, so the struct stays safely
    /// movable (no self-referential pointers persist across calls).
    pub struct Rings {
        pub names: Box<[SockaddrStorage]>,
        pub iovs: Box<[IoVec]>,
        #[cfg(target_os = "linux")]
        pub hdrs: Box<[MMsgHdr]>,
    }

    impl Rings {
        pub fn new() -> Rings {
            Rings {
                names: vec![SockaddrStorage::ZERO; MAX_BATCH].into_boxed_slice(),
                iovs: (0..MAX_BATCH)
                    .map(|_| IoVec {
                        base: std::ptr::null_mut(),
                        len: 0,
                    })
                    .collect(),
                #[cfg(target_os = "linux")]
                hdrs: (0..MAX_BATCH).map(|_| MMsgHdr::zeroed()).collect(),
            }
        }
    }

    extern "C" {
        /// POSIX single-datagram receive; used with `MSG_DONTWAIT` to
        /// drain a burst on the fallback path without timeout re-arms.
        pub fn recvfrom(
            fd: i32,
            buf: *mut u8,
            len: usize,
            flags: i32,
            src: *mut SockaddrStorage,
            srclen: *mut u32,
        ) -> isize;
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8,
        ) -> i32;
        pub fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    }
}

// ---------------------------------------------------------------------
// Receive side.
// ---------------------------------------------------------------------

/// Preallocated receive rings for one worker (the batcher holds no fd —
/// the socket is passed per call).
pub struct RecvBatcher {
    single: bool,
    /// `MAX_BATCH × BUF_BYTES` slab, reused every call.
    bufs: Box<[u8]>,
    #[cfg(unix)]
    rings: raw::Rings,
}

impl RecvBatcher {
    /// A fresh ring set. Honors `MOQDNS_NO_MMSG` (any non-empty value
    /// other than `0` forces the single-datagram path).
    pub fn new() -> RecvBatcher {
        RecvBatcher::with_mode(mmsg_disabled_by_env())
    }

    /// Explicitly forced mode (tests pin both paths with this).
    pub fn with_mode(force_single: bool) -> RecvBatcher {
        RecvBatcher {
            single: force_single,
            bufs: vec![0u8; MAX_BATCH * BUF_BYTES].into_boxed_slice(),
            #[cfg(unix)]
            rings: raw::Rings::new(),
        }
    }

    /// Whether this batcher is on the batched-syscall path right now.
    pub fn batched(&self) -> bool {
        batching_available(self.single)
    }

    /// Receives a burst: blocks (under the socket's armed read timeout)
    /// until at least one datagram arrives, then drains whatever else is
    /// already queued, up to [`MAX_BATCH`]. Appends `(peer, payload)`
    /// pairs to `out` and returns how many were appended (0 on timeout).
    ///
    /// Errors other than timeouts are returned; the caller treats them
    /// as a dead socket.
    pub fn recv_burst(
        &mut self,
        socket: &UdpSocket,
        out: &mut Vec<(SocketAddr, Payload)>,
    ) -> std::io::Result<usize> {
        #[cfg(target_os = "linux")]
        if self.batched() {
            match self.recv_burst_mmsg(socket, out) {
                Err(e) if e.raw_os_error() == Some(ENOSYS) => {
                    MMSG_UNAVAILABLE.store(true, Ordering::Relaxed);
                }
                other => return other,
            }
        }
        self.recv_burst_single(socket, out)
    }

    fn recv_burst_single(
        &mut self,
        socket: &UdpSocket,
        out: &mut Vec<(SocketAddr, Payload)>,
    ) -> std::io::Result<usize> {
        let buf = &mut self.bufs[..BUF_BYTES];
        let (n, from) = match socket.recv_from(buf) {
            Ok(v) => v,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(0)
            }
            Err(e) => return Err(e),
        };
        out.push((from, Payload::from(&buf[..n])));
        let mut got = 1;
        // Drain the rest of the queue without re-arming the socket
        // timeout: non-blocking single-datagram receives.
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            let fd = socket.as_raw_fd();
            while got < MAX_BATCH {
                let mut name = raw::SockaddrStorage::ZERO;
                let mut namelen = std::mem::size_of::<raw::SockaddrStorage>() as u32;
                let r = unsafe {
                    raw::recvfrom(
                        fd,
                        self.bufs.as_mut_ptr(),
                        BUF_BYTES,
                        raw::MSG_DONTWAIT,
                        &mut name,
                        &mut namelen,
                    )
                };
                if r < 0 {
                    break; // EAGAIN: queue drained
                }
                let Some(peer) = name.decode() else { continue };
                out.push((peer, Payload::from(&self.bufs[..r as usize])));
                got += 1;
            }
        }
        Ok(got)
    }

    #[cfg(target_os = "linux")]
    fn recv_burst_mmsg(
        &mut self,
        socket: &UdpSocket,
        out: &mut Vec<(SocketAddr, Payload)>,
    ) -> std::io::Result<usize> {
        use std::os::fd::AsRawFd;
        let rings = &mut self.rings;
        for i in 0..MAX_BATCH {
            rings.iovs[i].base = unsafe { self.bufs.as_mut_ptr().add(i * BUF_BYTES) };
            rings.iovs[i].len = BUF_BYTES;
            rings.names[i] = raw::SockaddrStorage::ZERO;
            let h = &mut rings.hdrs[i];
            h.hdr.name = &mut rings.names[i];
            h.hdr.namelen = std::mem::size_of::<raw::SockaddrStorage>() as u32;
            h.hdr.iov = &mut rings.iovs[i];
            h.hdr.iovlen = 1;
            h.hdr.control = std::ptr::null_mut();
            h.hdr.controllen = 0;
            h.hdr.flags = 0;
            h.len = 0;
        }
        let r = unsafe {
            raw::recvmmsg(
                socket.as_raw_fd(),
                rings.hdrs.as_mut_ptr(),
                MAX_BATCH as u32,
                raw::MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if r < 0 {
            let e = std::io::Error::last_os_error();
            return match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Ok(0),
                _ => Err(e),
            };
        }
        let mut got = 0;
        for i in 0..r as usize {
            let h = &rings.hdrs[i];
            if h.hdr.flags & raw::MSG_TRUNC != 0 {
                continue; // oversized datagram: dropped, not truncated
            }
            let Some(peer) = rings.names[i].decode() else {
                continue;
            };
            let row = &self.bufs[i * BUF_BYTES..i * BUF_BYTES + h.len as usize];
            out.push((peer, Payload::from(row)));
            got += 1;
        }
        Ok(got)
    }
}

impl Default for RecvBatcher {
    fn default() -> RecvBatcher {
        RecvBatcher::new()
    }
}

// The raw pointers inside the rings never outlive a syscall — they are
// re-primed to point into the batcher's own buffers (or the caller's
// frame slice) immediately before each call — so a batcher can move
// between threads freely.
#[cfg(unix)]
unsafe impl Send for RecvBatcher {}

// ---------------------------------------------------------------------
// Send side.
// ---------------------------------------------------------------------

/// Preallocated send rings (a few KiB: headers + iovecs + addresses, no
/// payload slab — iovecs point straight at the caller's frame bytes).
pub struct SendBatcher {
    single: bool,
    #[cfg(unix)]
    rings: raw::Rings,
}

impl SendBatcher {
    /// A fresh ring set honoring `MOQDNS_NO_MMSG`.
    pub fn new() -> SendBatcher {
        SendBatcher::with_mode(mmsg_disabled_by_env())
    }

    /// Explicitly forced mode (tests pin both paths with this).
    pub fn with_mode(force_single: bool) -> SendBatcher {
        SendBatcher {
            single: force_single,
            #[cfg(unix)]
            rings: raw::Rings::new(),
        }
    }

    /// Whether this batcher is on the batched-syscall path right now.
    pub fn batched(&self) -> bool {
        batching_available(self.single)
    }

    /// Sends every frame, batching where the syscall allows (bursts
    /// larger than [`MAX_BATCH`] split across syscalls). Returns the
    /// number of datagrams handed to the kernel. Per-datagram send
    /// errors drop that datagram (UDP semantics) without failing the
    /// rest of the flush.
    pub fn send_burst<B: AsRef<[u8]>>(
        &mut self,
        socket: &UdpSocket,
        frames: &[(SocketAddr, B)],
    ) -> u64 {
        if frames.is_empty() {
            return 0;
        }
        #[cfg(target_os = "linux")]
        if self.batched() {
            return self.send_burst_mmsg(socket, frames);
        }
        let mut sent = 0u64;
        for (peer, bytes) in frames {
            if socket.send_to(bytes.as_ref(), *peer).is_ok() {
                sent += 1;
            }
        }
        sent
    }

    #[cfg(target_os = "linux")]
    fn send_burst_mmsg<B: AsRef<[u8]>>(
        &mut self,
        socket: &UdpSocket,
        frames: &[(SocketAddr, B)],
    ) -> u64 {
        use std::os::fd::AsRawFd;
        let fd = socket.as_raw_fd();
        let rings = &mut self.rings;
        let mut sent = 0u64;
        let mut base = 0usize;
        while base < frames.len() {
            let n = (frames.len() - base).min(MAX_BATCH);
            for i in 0..n {
                let (peer, bytes) = &frames[base + i];
                let bytes = bytes.as_ref();
                let (name, namelen) = raw::SockaddrStorage::encode(*peer);
                rings.names[i] = name;
                // sendmsg never writes through the iovec; the mut cast
                // only satisfies the shared C struct layout.
                rings.iovs[i].base = bytes.as_ptr() as *mut u8;
                rings.iovs[i].len = bytes.len();
                let h = &mut rings.hdrs[i];
                h.hdr.name = &mut rings.names[i];
                h.hdr.namelen = namelen;
                h.hdr.iov = &mut rings.iovs[i];
                h.hdr.iovlen = 1;
                h.hdr.control = std::ptr::null_mut();
                h.hdr.controllen = 0;
                h.hdr.flags = 0;
                h.len = 0;
            }
            let r = unsafe { raw::sendmmsg(fd, rings.hdrs.as_mut_ptr(), n as u32, 0) };
            if r < 0 {
                let e = std::io::Error::last_os_error();
                if e.raw_os_error() == Some(ENOSYS) {
                    MMSG_UNAVAILABLE.store(true, Ordering::Relaxed);
                    for (peer, bytes) in &frames[base..] {
                        if socket.send_to(bytes.as_ref(), *peer).is_ok() {
                            sent += 1;
                        }
                    }
                    return sent;
                }
                base += 1; // this datagram refused: drop it, keep going
            } else if r == 0 {
                base += 1; // defensive: never spin
            } else {
                sent += r as u64;
                base += r as usize;
            }
        }
        sent
    }
}

impl Default for SendBatcher {
    fn default() -> SendBatcher {
        SendBatcher::new()
    }
}

// See the `RecvBatcher` impl: ring pointers are re-primed per syscall.
#[cfg(unix)]
unsafe impl Send for SendBatcher {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let aa = a.local_addr().unwrap();
        let ba = b.local_addr().unwrap();
        (a, b, aa, ba)
    }

    fn drain(socket: &UdpSocket, want: usize, batcher: &mut RecvBatcher) -> Vec<Vec<u8>> {
        socket
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut got: Vec<(SocketAddr, Payload)> = Vec::new();
        while got.len() < want {
            let before = got.len();
            batcher.recv_burst(socket, &mut got).unwrap();
            if got.len() == before {
                break; // timeout: whatever arrived is the answer
            }
        }
        got.into_iter().map(|(_, p)| p.to_vec()).collect()
    }

    #[test]
    fn sockaddr_roundtrip_v4_and_v6() {
        #[cfg(unix)]
        {
            for addr in [
                "127.0.0.1:4470".parse::<SocketAddr>().unwrap(),
                "[::1]:9944".parse::<SocketAddr>().unwrap(),
            ] {
                let (enc, _len) = raw::SockaddrStorage::encode(addr);
                assert_eq!(enc.decode(), Some(addr));
            }
        }
    }

    #[test]
    fn batched_send_single_recv_parity() {
        // sendmmsg out, plain recv_from in: bytes and order identical.
        let (tx, rx, _, rxa) = pair();
        let frames: Vec<(SocketAddr, Vec<u8>)> = (0..10u8)
            .map(|i| (rxa, vec![i; 100 + i as usize]))
            .collect();
        let mut b = SendBatcher::with_mode(false);
        let sent = b.send_burst(&tx, &frames);
        assert_eq!(sent, frames.len() as u64);
        let mut single = RecvBatcher::with_mode(true);
        let got = drain(&rx, frames.len(), &mut single);
        assert_eq!(
            got,
            frames.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_send_batched_recv_parity() {
        // send_to loop out, recvmmsg in: bytes and order identical.
        let (tx, rx, _, rxa) = pair();
        let frames: Vec<(SocketAddr, Vec<u8>)> =
            (0..17u8).map(|i| (rxa, vec![0xA0 ^ i; 33])).collect();
        let mut single = SendBatcher::with_mode(true);
        assert_eq!(single.send_burst(&tx, &frames), frames.len() as u64);
        let mut b = RecvBatcher::with_mode(false);
        let got = drain(&rx, frames.len(), &mut b);
        assert_eq!(
            got,
            frames.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn oversized_batches_split_across_syscalls() {
        let (tx, rx, _, rxa) = pair();
        let count = MAX_BATCH + 9;
        let frames: Vec<(SocketAddr, Vec<u8>)> = (0..count)
            .map(|i| (rxa, vec![(i % 251) as u8; 64]))
            .collect();
        let mut b = SendBatcher::with_mode(false);
        assert_eq!(b.send_burst(&tx, &frames), count as u64);
        let got = drain(&rx, count, &mut RecvBatcher::with_mode(false));
        assert_eq!(got.len(), count);
        for (i, g) in got.iter().enumerate() {
            assert_eq!(g, &frames[i].1);
        }
    }

    proptest! {
        /// The batched path and the single-datagram path deliver the
        /// same bytes in the same order, whichever side batches.
        #[test]
        fn mmsg_and_single_paths_are_byte_identical(
            sizes in proptest::collection::vec(1usize..1400, 1..24),
            batch_tx in any::<bool>(),
            batch_rx in any::<bool>(),
        ) {
            let (tx, rx, _, rxa) = pair();
            let frames: Vec<(SocketAddr, Vec<u8>)> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| (rxa, ((i as u32).to_le_bytes().iter().cycle().take(n).copied()).collect()))
                .collect();
            let mut sender = SendBatcher::with_mode(!batch_tx);
            prop_assert_eq!(sender.send_burst(&tx, &frames), frames.len() as u64);
            let mut receiver = RecvBatcher::with_mode(!batch_rx);
            let got = drain(&rx, frames.len(), &mut receiver);
            let want: Vec<Vec<u8>> = frames.into_iter().map(|(_, b)| b).collect();
            prop_assert_eq!(got, want);
        }
    }
}
