//! A blocking driver that runs an [`Endpoint`] over a real UDP socket.
//!
//! The protocol core is sans-io; this driver supplies the io: one thread
//! loops over a batched receive ([`RecvBatcher`], `recvmmsg` with a
//! single-datagram fallback) with a timeout derived from `poll_timeout`,
//! feeding whole bursts in under **one endpoint lock** and flushing
//! `poll_transmit` out through a [`SendBatcher`] (`sendmmsg`). Time is
//! mapped onto [`SimTime`] as nanoseconds since driver start, so the same
//! state machines run unmodified against the wall clock.
//!
//! This powers the `live_udp_loopback` example — proof that the stack is a
//! real transport, not only a simulation artifact.

use crate::endpoint::Endpoint;
use crate::udp_batch::{RecvBatcher, SendBatcher};
use moqdns_netsim::SimTime;
use moqdns_wire::Payload;
use parking_lot::Mutex;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared handle to an endpoint driven by [`UdpDriver`].
pub type SharedEndpoint = Arc<Mutex<Endpoint<SocketAddr>>>;

/// Runs an endpoint over a UDP socket on a background thread.
pub struct UdpDriver {
    endpoint: SharedEndpoint,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    local_addr: SocketAddr,
    epoch: Instant,
}

impl UdpDriver {
    /// Binds `addr` and starts the io thread.
    pub fn start(endpoint: Endpoint<SocketAddr>, addr: &str) -> std::io::Result<UdpDriver> {
        let socket = UdpSocket::bind(addr)?;
        let local_addr = socket.local_addr()?;
        let endpoint = Arc::new(Mutex::new(endpoint));
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();

        let ep = Arc::clone(&endpoint);
        let st = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut recv = RecvBatcher::new();
            let mut send = SendBatcher::new();
            // Reused across iterations: inbound burst and outbound burst.
            // Transmissions are collected under the endpoint lock but
            // written to the socket after it is released, so a slow flush
            // never blocks the other driver threads (or the application)
            // out of the endpoint.
            let mut inbox: Vec<(SocketAddr, Payload)> = Vec::new();
            let mut out: Vec<(SocketAddr, Payload)> = Vec::new();
            // The kernel keeps the last armed read timeout; re-arming it
            // every iteration is a syscall per loop for nothing. Only
            // re-arm when the computed wait actually changes.
            let mut armed_wait: Option<Duration> = None;
            while !st.load(Ordering::Relaxed) {
                let now = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
                // Fire due timers and collect the pending burst.
                let deadline = {
                    let mut ep = ep.lock();
                    ep.handle_timeout(now);
                    while let Some((peer, dg)) = ep.poll_transmit(now) {
                        out.push((peer, dg));
                    }
                    ep.poll_timeout()
                };
                send.send_burst(&socket, &out);
                out.clear();
                // Sleep until the next protocol deadline (bounded).
                let wait = deadline
                    .map(|d| d.saturating_duration_since(now))
                    .unwrap_or(Duration::from_millis(50))
                    .clamp(Duration::from_millis(1), Duration::from_millis(50));
                if armed_wait != Some(wait) {
                    socket
                        .set_read_timeout(Some(wait))
                        .expect("set_read_timeout");
                    armed_wait = Some(wait);
                }
                // One batched receive blocks for the first datagram and
                // drains whatever queued behind it; the whole burst is
                // then fed to the endpoint under a single lock.
                match recv.recv_burst(&socket, &mut inbox) {
                    Ok(0) => {}
                    Ok(_) => {
                        let now = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
                        {
                            let mut ep = ep.lock();
                            for (from, dg) in inbox.drain(..) {
                                ep.handle_datagram(now, from, &dg);
                            }
                            while let Some((peer, dg)) = ep.poll_transmit(now) {
                                out.push((peer, dg));
                            }
                        }
                        send.send_burst(&socket, &out);
                        out.clear();
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(UdpDriver {
            endpoint,
            stop,
            handle: Some(handle),
            local_addr,
            epoch,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The driver's current virtual time (nanoseconds since start).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Shared access to the endpoint (lock before use).
    pub fn endpoint(&self) -> SharedEndpoint {
        Arc::clone(&self.endpoint)
    }

    /// Blocks until `pred` returns `Some`, polling the endpoint, or until
    /// the timeout elapses (returns `None`).
    pub fn wait_for<T>(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&mut Endpoint<SocketAddr>) -> Option<T>,
    ) -> Option<T> {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if let Some(v) = pred(&mut self.endpoint.lock()) {
                return Some(v);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        None
    }

    /// Stops the io thread and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for UdpDriver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransportConfig;
    use crate::connection::Event;
    use crate::streams::Dir;

    fn alpns() -> crate::connection::AlpnList {
        crate::connection::alpn_list(&[b"moq-dns/1"])
    }

    #[test]
    fn real_udp_loopback_roundtrip() {
        let server_ep: Endpoint<SocketAddr> =
            Endpoint::server(TransportConfig::default(), alpns(), 2);
        let server = UdpDriver::start(server_ep, "127.0.0.1:0").expect("bind server");
        let server_addr = server.local_addr();

        let client_ep: Endpoint<SocketAddr> = Endpoint::client(TransportConfig::default(), 1);
        let client = UdpDriver::start(client_ep, "127.0.0.1:0").expect("bind client");

        // Connect and send a request.
        let ch = {
            let ep = client.endpoint();
            let mut ep = ep.lock();
            let now = client.now();
            ep.connect(now, server_addr, alpns(), false)
        };
        let established = client.wait_for(Duration::from_secs(5), |ep| {
            ep.conn(ch).filter(|c| c.is_established()).map(|_| ())
        });
        assert!(established.is_some(), "handshake over real loopback");

        let id = {
            let ep = client.endpoint();
            let mut ep = ep.lock();
            let conn = ep.conn_mut(ch).unwrap();
            let id = conn.open_stream(Dir::Bi).unwrap();
            conn.send_stream(id, b"ping over real udp").unwrap();
            conn.finish_stream(id).unwrap();
            id
        };

        // Server sees the stream and echoes.
        let sh = server
            .wait_for(Duration::from_secs(5), |ep| ep.poll_incoming())
            .expect("incoming connection");
        let got = server.wait_for(Duration::from_secs(5), |ep| {
            let conn = ep.conn_mut(sh)?;
            let (data, fin) = conn.read_stream(id, 1024).ok()?;
            if fin {
                Some(data)
            } else {
                None
            }
        });
        assert_eq!(got.as_deref(), Some(&b"ping over real udp"[..]));

        {
            let ep = server.endpoint();
            let mut ep = ep.lock();
            let conn = ep.conn_mut(sh).unwrap();
            conn.send_stream(id, b"pong").unwrap();
            conn.finish_stream(id).unwrap();
        }
        let reply = client.wait_for(Duration::from_secs(5), |ep| {
            let conn = ep.conn_mut(ch)?;
            let (data, fin) = conn.read_stream(id, 1024).ok()?;
            if fin {
                Some(data)
            } else {
                None
            }
        });
        assert_eq!(reply.as_deref(), Some(&b"pong"[..]));

        client.shutdown();
        server.shutdown();
    }

    #[test]
    fn driver_events_surface() {
        let server_ep: Endpoint<SocketAddr> =
            Endpoint::server(TransportConfig::default(), alpns(), 2);
        let server = UdpDriver::start(server_ep, "127.0.0.1:0").unwrap();
        let server_addr = server.local_addr();
        let client_ep: Endpoint<SocketAddr> = Endpoint::client(TransportConfig::default(), 3);
        let client = UdpDriver::start(client_ep, "127.0.0.1:0").unwrap();
        {
            let ep = client.endpoint();
            let mut ep = ep.lock();
            let now = client.now();
            ep.connect(now, server_addr, alpns(), false);
        }
        let connected = client.wait_for(Duration::from_secs(5), |ep| {
            while let Some((_, ev)) = ep.poll_event() {
                if matches!(ev, Event::Connected { .. }) {
                    return Some(());
                }
            }
            None
        });
        assert!(connected.is_some());
        client.shutdown();
        server.shutdown();
    }
}
