//! Model-based interleaving test of the QUIC connection state machine.
//!
//! Random op scripts drive a client/server [`Connection`] pair — transmit
//! polls, delayed and *dropped* datagram deliveries, timer fires, local
//! closes, app writes — and every step is checked against the machine's
//! contract (`Handshaking → Established → Draining → Closed`):
//!
//! 1. **no panic** on any interleaving (the checked `transition` helper
//!    turns an illegal edge into a debug assert, so this also pins edge
//!    legality);
//! 2. **monotone lifecycle** — `conn_state()` never moves backwards;
//! 3. **closing rejects the app** — once `is_closed()`, `open_stream` /
//!    `send_stream` / `send_datagram` return `ConnectionError::Closed`
//!    and `poll_timeout()` is `None` (timers are off);
//! 4. **`Draining` flushes exactly once** — the first `poll_transmit`
//!    after a local close completes the move to `Closed`;
//! 5. **`Closed` is inert** — `poll_transmit` yields nothing;
//! 6. **exactly one `Closed` event** per connection, ever.
//!
//! The frame/packet decoders get their own fuzz in the `packet` module;
//! this drives the lifecycle layer above them.

use moqdns_netsim::SimTime;
use moqdns_quic::connection::{alpn_list, AlpnList, ConnState, Connection, ConnectionError, Event};
use moqdns_quic::streams::Dir;
use moqdns_quic::TransportConfig;
use moqdns_wire::Payload;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::time::Duration;

fn alpns() -> AlpnList {
    alpn_list(&[b"moq-dns/1"])
}

/// One endpoint under test plus its observed-contract bookkeeping.
struct Harness {
    conn: Connection,
    /// Highest lifecycle phase seen so far (monotonicity check).
    high_water: ConnState,
    /// `Closed` events drained so far (must end ≤ 1).
    closed_events: u64,
}

impl Harness {
    fn new(conn: Connection) -> Harness {
        Harness {
            conn,
            high_water: ConnState::Handshaking,
            closed_events: 0,
        }
    }

    /// Drains app events and checks the per-step state contract.
    fn check(&mut self, now: SimTime) {
        while let Some(e) = self.conn.poll_event() {
            if matches!(e, Event::Closed { .. }) {
                self.closed_events += 1;
            }
        }
        prop_assert!(
            self.closed_events <= 1,
            "more than one Closed event emitted"
        );
        let s = self.conn.conn_state();
        // Contract 2: the lifecycle only moves forward.
        prop_assert!(
            s >= self.high_water,
            "state moved backwards: {:?} after {:?}",
            s,
            self.high_water
        );
        self.high_water = s;
        // Accessors agree with the phase.
        prop_assert_eq!(self.conn.is_established(), s == ConnState::Established);
        prop_assert_eq!(self.conn.is_closed(), s >= ConnState::Draining);
        if self.conn.is_closed() {
            // Contract 3: app API rejects, timers are off.
            prop_assert_eq!(self.conn.poll_timeout(), None);
            prop_assert_eq!(
                self.conn.open_stream(Dir::Uni).err(),
                Some(ConnectionError::Closed)
            );
            prop_assert_eq!(
                self.conn.send_datagram(vec![1u8, 2, 3]).err(),
                Some(ConnectionError::Closed)
            );
            // A Closed event must have accompanied the phase change.
            prop_assert_eq!(self.closed_events, 1);
        }
        // Contracts 4 + 5: Draining flushes at most one datagram and
        // lands in Closed; Closed emits nothing. (Calling poll_transmit
        // here is part of the model — it is idempotent once closing.)
        if s == ConnState::Draining {
            let _flush = self.conn.poll_transmit(now);
            prop_assert_eq!(self.conn.conn_state(), ConnState::Closed);
            self.high_water = ConnState::Closed;
        }
        if self.conn.conn_state() == ConnState::Closed {
            prop_assert!(self.conn.poll_transmit(now).is_none());
        }
    }
}

/// Runs one op script against a fresh client/server pair.
fn run_script(script: &[u8]) {
    let cfg = || TransportConfig::default().keep_alive(Duration::from_secs(5));
    let mut now = SimTime::ZERO;
    let mut client = Harness::new(Connection::client(7, cfg(), alpns(), None, now));
    let mut server = Harness::new(Connection::server(7, cfg(), alpns(), 99, now));
    // In-flight datagrams, per direction.
    let mut c2s: VecDeque<Payload> = VecDeque::new();
    let mut s2c: VecDeque<Payload> = VecDeque::new();

    for (i, &op) in script.iter().enumerate() {
        match op % 16 {
            // Transmit polls (queue whatever comes out).
            0 | 1 => {
                if let Some(d) = client.conn.poll_transmit(now) {
                    c2s.push_back(d);
                }
            }
            2 | 3 => {
                if let Some(d) = server.conn.poll_transmit(now) {
                    s2c.push_back(d);
                }
            }
            // Deliveries, after a small propagation delay.
            4 | 5 => {
                if let Some(d) = c2s.pop_front() {
                    now += Duration::from_millis(5);
                    server.conn.handle_datagram(now, &d);
                }
            }
            6 | 7 => {
                if let Some(d) = s2c.pop_front() {
                    now += Duration::from_millis(5);
                    client.conn.handle_datagram(now, &d);
                }
            }
            // Loss: drop an in-flight datagram on the floor.
            8 => {
                c2s.pop_front();
            }
            9 => {
                s2c.pop_front();
            }
            // Timer fires after a modest advance (PTO / keep-alive).
            10 => {
                now += Duration::from_millis(200);
                client.conn.handle_timeout(now);
                server.conn.handle_timeout(now);
            }
            // Big silence: trips the 30 s default idle timeout.
            11 => {
                now += Duration::from_secs(40);
                client.conn.handle_timeout(now);
                server.conn.handle_timeout(now);
            }
            // Local closes.
            12 => client.conn.close(0, "model client close"),
            13 => server.conn.close(0, "model server close"),
            // Application traffic (ignore Closed rejections — the
            // contract for them is asserted in `check`).
            14 => {
                if let Ok(id) = client.conn.open_stream(Dir::Uni) {
                    let _ = client.conn.send_stream(id, &[i as u8; 32]);
                    let _ = client.conn.finish_stream(id);
                }
            }
            _ => {
                let _ = server.conn.send_datagram(vec![i as u8; 16]);
            }
        }
        client.check(now);
        server.check(now);
    }
}

proptest! {
    #[test]
    fn prop_connection_machine_contract(
        script in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        run_script(&script);
    }

    /// Close-heavy scripts: every prefix ends with a local close on both
    /// sides, so the Draining flush and Closed inertness paths are hit on
    /// every case, not just when the random script happens to close.
    #[test]
    fn prop_close_is_terminal_from_any_prefix(
        script in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut full = script.clone();
        full.push(12); // client close
        full.push(13); // server close
        full.push(0); // post-close polls stay inert
        full.push(2);
        run_script(&full);
    }
}

/// Deterministic spot-checks of the canonical paths (not property-based,
/// so failures here localize immediately).
#[test]
fn canonical_lifecycle_paths() {
    let now = SimTime::ZERO;
    let mk = || {
        (
            Connection::client(1, TransportConfig::default(), alpns(), None, now),
            Connection::server(1, TransportConfig::default(), alpns(), 9, now),
        )
    };

    // Handshake: both sides reach Established.
    let (mut c, mut s) = mk();
    assert_eq!(c.conn_state(), ConnState::Handshaking);
    let ch = c.poll_transmit(now).expect("client hello");
    s.handle_datagram(now, &ch);
    assert_eq!(s.conn_state(), ConnState::Established);
    let sh = s.poll_transmit(now).expect("server hello");
    c.handle_datagram(now, &sh);
    assert_eq!(c.conn_state(), ConnState::Established);

    // Local close: Draining until the flush, then Closed; the flushed
    // datagram closes the peer directly (no Draining on the receiver).
    c.close(0, "done");
    assert_eq!(c.conn_state(), ConnState::Draining);
    assert!(c.is_closed());
    let fin = c.poll_transmit(now).expect("terminal close datagram");
    assert_eq!(c.conn_state(), ConnState::Closed);
    assert!(c.poll_transmit(now).is_none());
    s.handle_datagram(now, &fin);
    assert_eq!(s.conn_state(), ConnState::Closed);
    assert!(s.poll_transmit(now).is_none());

    // Idle timeout: silent, straight to Closed, nothing transmitted.
    let (mut c, _s) = mk();
    let late = now + Duration::from_secs(60);
    c.handle_timeout(late);
    assert_eq!(c.conn_state(), ConnState::Closed);
    assert!(c.poll_transmit(late).is_none());
}
