//! The live load generator. See `moqdns_relayd::engine`.
//!
//! ```text
//! moqdns-loadgen --server 127.0.0.1:4471 --rounds 5 \
//!                --check --json results/live_smoke.json
//! ```
//!
//! Replays the workload crate's live plan (Zipf track popularity, Poisson
//! joins, churn bounces) against a running `moqdns-relayd`, then exits
//! nonzero if any zero-loss/convergence invariant failed.

fn main() {
    let opts = moqdns_relayd::engine::LoadgenOpts::from_args();
    std::process::exit(moqdns_relayd::engine::run(opts));
}
