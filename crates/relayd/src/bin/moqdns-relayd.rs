//! The relay/auth daemon over real sockets. See `moqdns_relayd::daemon`.
//!
//! ```text
//! moqdns-relayd --mode auth  --listen 127.0.0.1:4470 --workers 2 \
//!               --tracks 8 --rounds 5 --interval-ms 400
//! moqdns-relayd --mode relay --listen 127.0.0.1:4471 --workers 2 \
//!               --parent 127.0.0.1:4470
//! ```
//!
//! Runs until SIGTERM/SIGINT, then drains every session through the
//! state machine and exits 0 on a clean drain.

fn main() {
    let opts = moqdns_relayd::daemon::DaemonOpts::from_args();
    std::process::exit(moqdns_relayd::daemon::run(opts));
}
