//! The `moqdns-relayd` daemon: an [`AuthServer`] or [`RelayNode`] served
//! over sharded real sockets.
//!
//! One process hosts one protocol node. In `auth` mode it owns the test
//! zone and republishes every track for a fixed number of rounds — each
//! version is a TXT record `["v=<round>", "ts=<unix nanos>"]`, so a load
//! generator on the same host can measure update-delivery lag from the
//! payload alone. In `relay` mode it fronts a parent daemon (usually the
//! auth) and serves downstream subscribers with the exact coalescing
//! behaviour proven in the simulator — it is the same `RelayNode` type.
//!
//! Shutdown: SIGTERM/SIGINT trips a latch; the control loop calls the
//! node's `shutdown` verb (closing every session through the PR 6 state
//! machine), gives the workers a short grace window to flush the
//! CONNECTION_CLOSE datagrams, then stops them. The process exits 0 only
//! when every worker drained cleanly.
//!
//! Crash semantics: SIGKILL skips all of that — no CONNECTION_CLOSE, no
//! drain — and the daemon is expected to be restarted on the same
//! address while its peers still hold connections to the corpse. Two
//! things make that survivable: peers detect the silence via their idle
//! timeout and redial (`ci/live_chaos.sh` gates the whole loop), and
//! each incarnation perturbs its QUIC cid seed with process entropy so
//! the restart never replays the dead process's cid sequence into a
//! peer's stale demux table (see the comment in [`run`]).

use crate::netio::{bind_sharded, HostCore, LiveHost};
use crate::signal;
use moqdns_core::auth::AuthServer;
use moqdns_core::relay_node::RelayNode;
use moqdns_core::MOQT_PORT;
use moqdns_dns::name::Name;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_netsim::{Addr, NodeId};
use moqdns_quic::TransportConfig;
use std::net::SocketAddr;
use std::time::{Duration, SystemTime};

/// Which protocol node this process hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Authoritative origin: owns the zone, publishes update rounds.
    Auth,
    /// Relay: subscribes upstream on demand, coalesces downstream.
    Relay,
}

/// Parsed daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonOpts {
    /// Node flavour.
    pub mode: Mode,
    /// Real listen address (`127.0.0.1:4470`-style).
    pub listen: String,
    /// Socket shards / worker threads.
    pub workers: usize,
    /// Parent daemon address (required in relay mode).
    pub parent: Option<SocketAddr>,
    /// Zone origin served in auth mode.
    pub zone: String,
    /// Number of published names (`t<i>.<zone>`).
    pub tracks: usize,
    /// Update rounds the auth publishes after start-up.
    pub rounds: u64,
    /// Gap between publish rounds.
    pub interval: Duration,
    /// Settling time before round 1 (lets subscribers join).
    pub start_delay: Duration,
    /// Relay object cache size per track.
    pub cache: usize,
    /// RNG seed (connection ids etc.).
    pub seed: u64,
}

impl Default for DaemonOpts {
    fn default() -> DaemonOpts {
        DaemonOpts {
            mode: Mode::Auth,
            listen: "127.0.0.1:4470".into(),
            workers: 2,
            parent: None,
            zone: "live.moqdns.test".into(),
            tracks: 8,
            rounds: 5,
            interval: Duration::from_millis(400),
            start_delay: Duration::from_millis(1500),
            cache: 4,
            seed: 92,
        }
    }
}

impl DaemonOpts {
    /// Parses process arguments (panics with a usage hint on bad input).
    pub fn from_args() -> DaemonOpts {
        let mut o = DaemonOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut val = |flag: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{flag} requires a value"))
            };
            match a.as_str() {
                "--mode" => {
                    o.mode = match val("--mode").as_str() {
                        "auth" => Mode::Auth,
                        "relay" => Mode::Relay,
                        other => panic!("--mode must be auth|relay, got {other}"),
                    }
                }
                "--listen" => o.listen = val("--listen"),
                "--workers" => o.workers = val("--workers").parse().expect("--workers N"),
                "--parent" => o.parent = Some(val("--parent").parse().expect("--parent addr:port")),
                "--zone" => o.zone = val("--zone"),
                "--tracks" => o.tracks = val("--tracks").parse().expect("--tracks N"),
                "--rounds" => o.rounds = val("--rounds").parse().expect("--rounds N"),
                "--interval-ms" => {
                    o.interval = Duration::from_millis(val("--interval-ms").parse().expect("ms"))
                }
                "--start-delay-ms" => {
                    o.start_delay =
                        Duration::from_millis(val("--start-delay-ms").parse().expect("ms"))
                }
                "--cache" => o.cache = val("--cache").parse().expect("--cache N"),
                "--seed" => o.seed = val("--seed").parse().expect("--seed N"),
                other => panic!("unknown flag {other} (see crates/relayd/src/daemon.rs)"),
            }
        }
        if o.mode == Mode::Relay && o.parent.is_none() {
            panic!("--mode relay requires --parent addr:port");
        }
        o
    }
}

/// Nanoseconds since the unix epoch (the cross-process lag clock).
pub fn unix_nanos() -> u128 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_nanos()
}

/// The TXT payload published for `round` (`v=<round>`, `ts=<nanos>`).
pub fn txt_strings(round: u64) -> Vec<Vec<u8>> {
    vec![
        format!("v={round}").into_bytes(),
        format!("ts={}", unix_nanos()).into_bytes(),
    ]
}

/// The published name of track `idx` under `zone`.
pub fn track_name(zone: &str, idx: usize) -> Name {
    format!("t{idx}.{zone}").parse().expect("valid track name")
}

fn build_zone(opts: &DaemonOpts) -> Zone {
    let mut zone = Zone::with_default_soa(opts.zone.parse().expect("valid zone origin"));
    for i in 0..opts.tracks {
        zone.add_record(Record::new(
            track_name(&opts.zone, i),
            60,
            RData::TXT(txt_strings(0)),
        ));
    }
    zone
}

fn transport() -> TransportConfig {
    TransportConfig::default()
        .idle_timeout(Duration::from_secs(3600))
        .keep_alive(Duration::from_secs(25))
}

/// Runs the daemon until SIGTERM/SIGINT; returns the process exit code
/// (0 = clean drain).
pub fn run(opts: DaemonOpts) -> i32 {
    signal::install();
    let mut core = HostCore::new(opts.seed, true);

    // Connection ids are generated deterministically from the stack seed.
    // A live process restarted with the same `--seed` (the common case:
    // same config, same supervisor) would replay its dead predecessor's
    // exact cid sequence — and a peer that never saw a CONNECTION_CLOSE
    // (SIGKILL sends nothing) still maps those cids to zombie
    // connections, so the fresh handshake gets demuxed into a dead
    // session and silently swallowed. Mix process-unique entropy into
    // the stack seed so no two daemon incarnations share cid space; the
    // simulator is unaffected (sim nodes are seeded directly, not here).
    let stack_seed = opts.seed ^ (std::process::id() as u64) ^ (unix_nanos() as u64);

    let node: NodeId = match opts.mode {
        Mode::Auth => core.live().add_node(
            "auth",
            Box::new(AuthServer::new(
                Authority::single(build_zone(&opts)),
                transport(),
                stack_seed,
            )),
        ),
        Mode::Relay => {
            let parent_sa = opts.parent.expect("relay mode has a parent");
            let parent = core.register_remote(parent_sa);
            core.live().add_node(
                "relay",
                Box::new(RelayNode::new(
                    Addr::new(parent, MOQT_PORT),
                    opts.cache,
                    stack_seed,
                )),
            )
        }
    };

    let (sockets, local) = match bind_sharded(&opts.listen, opts.workers) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("moqdns-relayd: bind {}: {e}", opts.listen);
            return 2;
        }
    };
    // Every shard fronts the one daemon node; outbound frames are
    // DCID-steered across the shards by the io layer.
    let fronts = vec![vec![node]; sockets.len()];
    let host = LiveHost::start(core, sockets, fronts);
    println!(
        "moqdns-relayd: {:?} listening on {local} ({} worker(s))",
        opts.mode, opts.workers
    );

    // Control loop: tick the publish schedule (auth) and watch the latch.
    let mut next_round: u64 = 1;
    loop {
        if signal::terminated() {
            break;
        }
        if opts.mode == Mode::Auth && next_round <= opts.rounds {
            let due = opts.start_delay + opts.interval * (next_round - 1) as u32;
            if host.now() >= due {
                let round = next_round;
                let zone_origin = opts.zone.clone();
                let tracks = opts.tracks;
                host.with_core(|core| {
                    core.live().with_node::<AuthServer, _>(node, |auth, ctx| {
                        auth.update_zone(ctx, |authority| {
                            for i in 0..tracks {
                                let name = track_name(&zone_origin, i);
                                if let Some(z) = authority.find_zone_mut(&name) {
                                    z.set_records(
                                        &name,
                                        RecordType::TXT,
                                        vec![Record::new(
                                            name.clone(),
                                            60,
                                            RData::TXT(txt_strings(round)),
                                        )],
                                    );
                                }
                            }
                        });
                    });
                });
                println!("moqdns-relayd: published round {round}/{}", opts.rounds);
                next_round += 1;
                continue;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Drain: close every session through the state machine, give the
    // workers a grace window to flush the close datagrams, then stop.
    println!("moqdns-relayd: draining");
    host.with_core(|core| match opts.mode {
        Mode::Auth => core
            .live()
            .with_node::<AuthServer, _>(node, |auth, ctx| auth.shutdown(ctx)),
        Mode::Relay => core
            .live()
            .with_node::<RelayNode, _>(node, |relay, ctx| relay.shutdown(ctx)),
    });
    std::thread::sleep(Duration::from_millis(300));
    let (rx, tx) = host.stats();
    let clean = host.stop();
    println!("moqdns-relayd: stopped (rx={rx} tx={tx} datagrams, clean={clean})");
    if clean {
        0
    } else {
        1
    }
}
