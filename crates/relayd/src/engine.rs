//! The `moqdns-loadgen` engine: replays a [`LivePlan`] against a running
//! daemon over real loopback sockets and gates the outcome.
//!
//! Each planned client is a full [`StubResolver`] — the same node the
//! simulator experiments measure — behind a UDP socket, so the daemon
//! sees real remote traffic. By default every client gets its own socket;
//! `--clients-per-socket K` shares one socket across K stubs (inbound
//! demuxed by DCID in the io layer) so a 10k-client saturation run does
//! not exhaust file descriptors. The engine executes the plan (staggered
//! joins, churn bounces), waits until every subscription has converged on
//! the auth's final published version, and reports through the shared
//! [`InvariantGate`]:
//!
//! * **gated (deterministic, final-state)**: every planned `(client,
//!   track)` pair holds an answer; every pair reaches the final TXT
//!   version; pushed versions are strictly monotone per track; no MoQT
//!   lookup failed; no inbound datagram was unroutable; every io worker
//!   drained cleanly. These hold however the wall clock interleaves,
//!   because a late joiner's fetch also returns the newest version.
//! * **reported only (wall-clock)**: pps, p50/p99/p999 query latency,
//!   update-delivery lag (TXT `ts=` stamps against this host's clock),
//!   datagram counts, and the saturation phase's offered vs achieved
//!   rate. CI uploads them but never exact-diffs them.
//!
//! **Saturation profile** (`--rate <pps> --duration <s>`): after the plan
//! converges, the engine open-loop issues [`StubResolver::probe`]
//! standalone fetches — each one a full wire round-trip, immune to the
//! §5.2 local-answer short-circuit — at the target rate, round-robin
//! across the planned `(client, track)` pairs, without waiting for
//! replies. `--ramp` instead searches for the knee: the offered rate
//! doubles each step until achieved pps falls under 90% of offered, and
//! the last sustainable step is reported as the knee.
//!
//! **Chaos profile** (`--idle-ms --keep-alive-ms --redial-ms`): clients
//! run a short-idle transport and auto-redial after a connection loss,
//! so a harness that SIGKILLs and restarts the daemon mid-run
//! (`ci/live_chaos.sh`) can gate that every client redials, the retry
//! count stays bounded, and the replay still converges on the final TXT
//! version — crash/restart recovery end to end over real sockets.
//!
//! A churn bounce reuses the stub's §4.4 suspension hooks: the QUIC
//! connection is dropped silently and local state forgotten, so the
//! rejoin exercises reconnection with a fresh joining fetch against the
//! live daemon.

use crate::daemon::unix_nanos;
use crate::netio::{HostCore, LiveHost};
use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_core::metrics::AnswerSource;
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_core::teardown::TeardownPolicy;
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::RecordType;
use moqdns_netsim::{Addr, NodeId};
use moqdns_quic::TransportConfig;
use moqdns_stats::Summary;
use moqdns_workload::live::{LivePlan, LiveSpec};
use std::collections::BTreeMap;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Parsed load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenOpts {
    /// The daemon to load (auth or relay listen address).
    pub server: SocketAddr,
    /// Final TXT version the auth publishes (must match the daemon's
    /// `--rounds`); convergence is declared when every pair reaches it.
    pub rounds: u64,
    /// Hard wall-clock budget for the replay; hitting it fails the
    /// completeness gates.
    pub deadline: Duration,
    /// Profile label — the gate scenario is `live_<profile>`.
    pub profile: String,
    /// Stub clients sharing one UDP socket (1 = a socket per client).
    pub clients_per_socket: usize,
    /// Saturation: sustained offered probe rate after convergence.
    pub rate: Option<u64>,
    /// Saturation: how long to hold each offered rate.
    pub duration: Duration,
    /// Saturation: ramp-search for the max sustainable rate instead of
    /// holding one target.
    pub ramp: bool,
    /// Client QUIC idle timeout override (chaos runs shorten it so a
    /// SIGKILLed daemon is detected in seconds, not the patient hour).
    pub idle: Option<Duration>,
    /// Client QUIC keep-alive override (paired with a short idle).
    pub keep_alive: Option<Duration>,
    /// When set, clients auto-redial this long after a connection loss
    /// and re-subscribe; redial gates are armed (chaos profile).
    pub redial: Option<Duration>,
    /// The replay plan parameters.
    pub spec: LiveSpec,
    /// Shared bench flags (`--check`, `--json`, `--smoke`).
    pub bench: BenchOpts,
}

impl LoadgenOpts {
    /// Parses process arguments (bench flags are parsed by
    /// [`BenchOpts::from_args`], which ignores the loadgen-specific ones).
    pub fn from_args() -> LoadgenOpts {
        let bench = BenchOpts::from_args();
        let mut o = LoadgenOpts {
            server: "127.0.0.1:4471".parse().expect("valid default"),
            rounds: 5,
            deadline: Duration::from_secs(20),
            profile: "smoke".into(),
            clients_per_socket: 1,
            rate: None,
            duration: Duration::from_secs(10),
            ramp: false,
            idle: None,
            keep_alive: None,
            redial: None,
            spec: LiveSpec::smoke(),
            bench,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut val = |flag: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{flag} requires a value"))
            };
            match a.as_str() {
                "--server" => o.server = val("--server").parse().expect("--server addr:port"),
                "--rounds" => o.rounds = val("--rounds").parse().expect("--rounds N"),
                "--deadline-ms" => {
                    o.deadline = Duration::from_millis(val("--deadline-ms").parse().expect("ms"))
                }
                "--profile" => o.profile = val("--profile"),
                "--clients" => o.spec.clients = val("--clients").parse().expect("--clients N"),
                "--tracks" => o.spec.tracks = val("--tracks").parse().expect("--tracks N"),
                "--zone" => o.spec.zone = val("--zone"),
                "--clients-per-socket" => {
                    o.clients_per_socket = val("--clients-per-socket")
                        .parse()
                        .expect("--clients-per-socket K");
                    assert!(o.clients_per_socket >= 1, "--clients-per-socket K >= 1");
                }
                "--rate" => o.rate = Some(val("--rate").parse().expect("--rate pps")),
                "--idle-ms" => {
                    o.idle = Some(Duration::from_millis(val("--idle-ms").parse().expect("ms")))
                }
                "--keep-alive-ms" => {
                    o.keep_alive = Some(Duration::from_millis(
                        val("--keep-alive-ms").parse().expect("ms"),
                    ))
                }
                "--redial-ms" => {
                    o.redial = Some(Duration::from_millis(
                        val("--redial-ms").parse().expect("ms"),
                    ))
                }
                "--duration" => {
                    o.duration =
                        Duration::from_secs(val("--duration").parse().expect("--duration s"))
                }
                "--ramp" => o.ramp = true,
                // Bench flags, already handled by BenchOpts::from_args.
                "--smoke" | "--check" => {}
                "--par" | "--json" => {
                    let _ = val(&a);
                }
                a if a.starts_with("--par=") || a.starts_with("--json=") => {}
                other => panic!("unknown flag {other} (see crates/relayd/src/engine.rs)"),
            }
        }
        o
    }
}

/// One scheduled plan step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Connect + subscribe all planned tracks.
    Join,
    /// Silently drop the connection and forget local state (§4.4 churn).
    Drop,
    /// Re-subscribe everything after a bounce.
    Rejoin,
}

/// Latest TXT observation for one `(client, track)` pair.
#[derive(Debug, Clone, Copy, Default)]
struct Observed {
    version: Option<u64>,
    answered: bool,
}

/// Parses `["v=<n>", "ts=<nanos>"]` out of a TXT answer.
fn parse_txt(records: &[moqdns_dns::rr::Record]) -> Option<(u64, u128)> {
    for r in records {
        if let RData::TXT(strings) = &r.rdata {
            let mut v = None;
            let mut ts = None;
            for s in strings {
                let s = std::str::from_utf8(s).ok()?;
                if let Some(x) = s.strip_prefix("v=") {
                    v = x.parse::<u64>().ok();
                } else if let Some(x) = s.strip_prefix("ts=") {
                    ts = x.parse::<u128>().ok();
                }
            }
            if let (Some(v), Some(ts)) = (v, ts) {
                return Some((v, ts));
            }
        }
    }
    None
}

/// Outcome of one sustained-rate probe phase (wall-clock measurements).
#[derive(Debug, Clone, Copy)]
struct PhaseStats {
    /// The target rate this phase held.
    offered_pps: u64,
    /// Probes actually issued (sessions not yet up are skipped).
    issued: u64,
    /// Probes whose reply landed inside the measurement window + grace.
    completed: u64,
    /// Probes the server refused (FETCH_ERROR — gated to zero elsewhere).
    failed: u64,
    /// Completed probes over the phase wall time.
    achieved_pps: u64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

/// Open-loop sustained-rate phase: issues [`StubResolver::probe`]s at
/// `rate` pps for `duration`, round-robin over `pairs`, never waiting for
/// replies (a 1 ms tick with fractional carry sets the pacing; each
/// tick's quota shares one core lock). Returns the measured stats after a
/// short grace window for in-flight replies.
fn run_rate_phase(
    host: &LiveHost,
    nodes: &[NodeId],
    questions: &BTreeMap<usize, Question>,
    pairs: &[(usize, usize)],
    rate: u64,
    duration: Duration,
) -> PhaseStats {
    let start = host.now();
    let mut issued = 0u64;
    let mut carry = 0.0f64;
    let mut rr = 0usize;
    let mut last = start;
    loop {
        let now = host.now();
        if now - start >= duration {
            break;
        }
        carry += (now - last).as_secs_f64() * rate as f64;
        last = now;
        let quota = carry as u64;
        if quota > 0 {
            carry -= quota as f64;
            host.with_core(|core| {
                for _ in 0..quota {
                    let (c, t) = pairs[rr % pairs.len()];
                    rr += 1;
                    let ok = core
                        .live()
                        .with_node::<StubResolver, _>(nodes[c], |stub, ctx| {
                            stub.probe(ctx, questions[&t].clone())
                        });
                    if ok {
                        issued += 1;
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let end = host.now();
    // Grace: let in-flight replies land before counting completions.
    std::thread::sleep(Duration::from_millis(150));
    host.with_core(|_| {});

    let (w0, w1) = (start.as_nanos() as u64, end.as_nanos() as u64);
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut lat_us: Vec<f64> = Vec::new();
    host.with_core(|core| {
        for &n in nodes {
            let stub: &StubResolver = core.live().node_ref(n);
            for l in &stub.metrics.lookups {
                if l.source != AnswerSource::Moqt {
                    continue;
                }
                let t = l.started.as_nanos();
                if t < w0 || t >= w1 {
                    continue;
                }
                if l.ok {
                    completed += 1;
                    lat_us.push((l.finished.as_nanos() - l.started.as_nanos()) as f64 / 1_000.0);
                } else {
                    failed += 1;
                }
            }
        }
    });
    let secs = (end - start).as_secs_f64().max(1e-9);
    let lat = Summary::from(lat_us);
    let pct = |p: f64| {
        if lat.is_empty() {
            0
        } else {
            lat.percentile(p) as u64
        }
    };
    PhaseStats {
        offered_pps: rate,
        issued,
        completed,
        failed,
        achieved_pps: (completed as f64 / secs) as u64,
        p50_us: pct(50.0),
        p99_us: pct(99.0),
        p999_us: pct(99.9),
    }
}

/// A ramp step is sustainable when achieved pps holds ≥ 90% of offered —
/// the knee is the last step that does.
fn sustainable(p: &PhaseStats) -> bool {
    p.achieved_pps as f64 >= 0.9 * p.offered_pps as f64
}

/// Runs the load, writes the gate JSON, returns the process exit code.
pub fn run(opts: LoadgenOpts) -> i32 {
    let plan = LivePlan::generate(opts.spec.clone());
    let mut gate = InvariantGate::new(format!("live_{}", opts.profile), &opts.bench);

    // One stub node per planned client; sockets shared K-to-1.
    let mut core = HostCore::new(opts.spec.seed, false);
    let server = core.register_remote(opts.server);
    let server_addr = Addr::new(server, MOQT_PORT);
    let transport = TransportConfig::default()
        .idle_timeout(opts.idle.unwrap_or(Duration::from_secs(3600)))
        .keep_alive(opts.keep_alive.unwrap_or(Duration::from_secs(25)));
    let nodes: Vec<NodeId> = (0..plan.clients.len())
        .map(|i| {
            let mut stub = StubResolver::with_transport(
                StubMode::Moqt,
                server_addr,
                1000 + i as u64,
                TeardownPolicy::Never,
                transport.clone(),
            );
            if let Some(delay) = opts.redial {
                stub = stub.redial_after(delay);
            }
            core.live().add_node(format!("client{i}"), Box::new(stub))
        })
        .collect();
    let fronts: Vec<Vec<NodeId>> = nodes
        .chunks(opts.clients_per_socket)
        .map(|chunk| chunk.to_vec())
        .collect();
    let sockets: Vec<UdpSocket> = (0..fronts.len())
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind client socket"))
        .collect();
    let host = LiveHost::start(core, sockets, fronts.clone());

    // Flatten the plan into a time-ordered action list.
    let questions: BTreeMap<usize, Question> = (0..plan.spec.tracks)
        .map(|t| {
            (
                t,
                Question::new(
                    plan.track_name(t).parse().expect("valid name"),
                    RecordType::TXT,
                ),
            )
        })
        .collect();
    let mut schedule: Vec<(Duration, usize, Action)> = Vec::new();
    for (c, cp) in plan.clients.iter().enumerate() {
        schedule.push((cp.join_at, c, Action::Join));
        if let Some(b) = cp.bounce_at {
            schedule.push((b, c, Action::Drop));
            schedule.push((b + plan.spec.bounce_after, c, Action::Rejoin));
        }
    }
    schedule.sort_by_key(|&(at, c, _)| (at, c));

    // Drive the plan and poll convergence.
    let pairs: Vec<(usize, usize)> = plan
        .clients
        .iter()
        .enumerate()
        .flat_map(|(c, cp)| cp.tracks.iter().map(move |&t| (c, t)))
        .collect();
    let mut observed: BTreeMap<(usize, usize), Observed> = BTreeMap::new();
    let mut lag_us: Vec<f64> = Vec::new();
    let mut next_action = 0usize;
    let mut bounces = 0u64;
    let converged = loop {
        let now = host.now();
        if now > opts.deadline {
            break false;
        }
        while next_action < schedule.len() && schedule[next_action].0 <= now {
            let (_, c, action) = schedule[next_action];
            next_action += 1;
            let node = nodes[c];
            let tracks = &plan.clients[c].tracks;
            host.with_core(|core| {
                core.live()
                    .with_node::<StubResolver, _>(node, |stub, ctx| match action {
                        Action::Join | Action::Rejoin => {
                            for &t in tracks {
                                stub.lookup(ctx, questions[&t].clone());
                            }
                        }
                        Action::Drop => {
                            stub.debug_drop_connection();
                            stub.debug_forget_subscriptions();
                            bounces += 1;
                        }
                    });
            });
        }
        // Poll every pair's latest answer; sample lag on version changes.
        let mut all_final = true;
        host.with_core(|core| {
            for &(c, t) in &pairs {
                let stub: &StubResolver = core.live().node_ref(nodes[c]);
                let obs = observed.entry((c, t)).or_default();
                if let Some(records) = stub.answer(&questions[&t]) {
                    obs.answered = true;
                    if let Some((v, ts)) = parse_txt(records) {
                        if obs.version != Some(v) {
                            obs.version = Some(v);
                            let now_ns = unix_nanos();
                            if v > 0 && now_ns > ts {
                                lag_us.push((now_ns - ts) as f64 / 1_000.0);
                            }
                        }
                        if v < opts.rounds {
                            all_final = false;
                        }
                    } else {
                        all_final = false;
                    }
                } else {
                    all_final = false;
                }
            }
        });
        if all_final && next_action == schedule.len() {
            break true;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let converge_wall = host.now();
    if !converged {
        // Deadline diagnostics for the CI artifact: which pairs are
        // stuck, and what their client's connection state looks like.
        host.with_core(|core| {
            for &(c, t) in &pairs {
                let stub: &StubResolver = core.live().node_ref(nodes[c]);
                let v = observed.get(&(c, t)).and_then(|o| o.version);
                if v == Some(opts.rounds) {
                    continue;
                }
                println!(
                    "moqdns-loadgen: STUCK client{c} track{t} at v{:?} \
                     (subs={} redials={})",
                    v,
                    stub.subscription_count(),
                    stub.redials,
                );
            }
        });
    }

    // ---- Saturation phase (after convergence, before harvest) ---------
    let mut phase: Option<PhaseStats> = None;
    let mut ramp_steps = 0u64;
    if converged && (opts.rate.is_some() || opts.ramp) {
        let base = opts.rate.unwrap_or(2000);
        if opts.ramp {
            // Double the offered rate until the plane stops keeping up;
            // report the knee (last sustainable step).
            let mut rate = base;
            let mut knee: Option<PhaseStats> = None;
            for _ in 0..20 {
                let p = run_rate_phase(&host, &nodes, &questions, &pairs, rate, opts.duration);
                ramp_steps += 1;
                println!(
                    "moqdns-loadgen: ramp step offered={} achieved={} p99={}us",
                    p.offered_pps, p.achieved_pps, p.p99_us
                );
                let ok = sustainable(&p);
                if ok {
                    knee = Some(p);
                    rate *= 2;
                } else {
                    // Keep the failing step if nothing ever sustained.
                    if knee.is_none() {
                        knee = Some(p);
                    }
                    break;
                }
            }
            phase = knee;
        } else {
            phase = Some(run_rate_phase(
                &host,
                &nodes,
                &questions,
                &pairs,
                base,
                opts.duration,
            ));
        }
    }
    let wall = host.now();

    // Harvest per-client metrics.
    let mut moqt_ok = 0u64;
    let mut moqt_failed = 0u64;
    let mut latency_us: Vec<f64> = Vec::new();
    let mut non_monotone = 0u64;
    let mut updates_received = 0u64;
    let mut redial_total = 0u64;
    let mut redialed_clients = 0u64;
    host.with_core(|core| {
        for &n in &nodes {
            let stub: &StubResolver = core.live().node_ref(n);
            redial_total += stub.redials;
            if stub.redials > 0 {
                redialed_clients += 1;
            }
            for l in &stub.metrics.lookups {
                match l.source {
                    AnswerSource::Moqt if l.ok => {
                        moqt_ok += 1;
                        latency_us
                            .push((l.finished.as_nanos() - l.started.as_nanos()) as f64 / 1_000.0);
                    }
                    AnswerSource::Moqt => moqt_failed += 1,
                    _ => {}
                }
            }
            let mut last: BTreeMap<Question, u64> = BTreeMap::new();
            for u in &stub.metrics.updates {
                updates_received += 1;
                if let Some(&prev) = last.get(&u.question) {
                    if u.version <= prev {
                        non_monotone += 1;
                    }
                }
                last.insert(u.question.clone(), u.version);
            }
        }
    });
    let (rx, tx) = host.stats();
    let unrouted = host.unrouted();
    let clean = host.stop();

    // ---- Gated invariants (deterministic, final-state) ----------------
    let answered = observed.values().filter(|o| o.answered).count() as u64;
    let at_final = observed
        .values()
        .filter(|o| o.version == Some(opts.rounds))
        .count() as u64;
    gate.check_true(
        "converged_before_deadline",
        converged,
        format!(
            "converged={converged} after {} ms",
            converge_wall.as_millis()
        ),
    );
    gate.check_eq("answers_complete", pairs.len() as u64, answered);
    gate.check_eq("final_version_complete", pairs.len() as u64, at_final);
    gate.check_eq("update_non_monotone", 0, non_monotone);
    gate.check_eq("moqt_lookup_failures", 0, moqt_failed);
    gate.check_eq("inbound_unrouted", 0, unrouted);
    gate.check_true(
        "clean_worker_drain",
        clean,
        format!("all {} io workers stopped cleanly", fronts.len()),
    );
    if let Some(redial) = opts.redial {
        // Chaos profile: the script kills the daemon mid-run, so every
        // client's connection dies and must come back through the redial
        // path. The bound is the worst-case retry count — one failed
        // dial per idle window across the whole deadline, plus slack for
        // the first detection.
        let idle = opts.idle.unwrap_or(Duration::from_secs(3600));
        let per_client =
            (opts.deadline.as_millis() / (idle + redial).as_millis().max(1)) as u64 + 2;
        gate.check_eq(
            "clients_redialed",
            plan.clients.len() as u64,
            redialed_clients,
        );
        gate.check_ge("stub_redials", redialed_clients, redial_total);
        gate.check_le(
            "stub_redials_bounded",
            plan.clients.len() as u64 * per_client,
            redial_total,
        );
    }

    // ---- Deterministic metrics (baseline-diffed) ----------------------
    gate.metric("clients", plan.clients.len() as u64);
    gate.metric("planned_subscriptions", pairs.len() as u64);
    gate.metric("tracks", plan.spec.tracks as u64);
    gate.metric("final_version", opts.rounds);
    gate.metric("bounces", bounces);
    gate.metric("clients_per_socket", opts.clients_per_socket as u64);
    if opts.redial.is_some() {
        // Wall-clock shaped (retry count depends on kill/restart timing)
        // but bounded by the gates above; never baseline-diffed.
        gate.metric("stub_redials", redial_total);
    }
    if let Some(rate) = opts.rate {
        gate.metric("probe_rate_pps", rate);
        gate.metric("probe_duration_ms", opts.duration.as_millis() as u64);
    }

    // ---- Wall-clock metrics (reported, never diffed) ------------------
    gate.metric("wall_ms", wall.as_millis() as u64);
    gate.metric("converge_ms", converge_wall.as_millis() as u64);
    gate.metric("rx_datagrams", rx);
    gate.metric("tx_datagrams", tx);
    gate.metric(
        "wire_pps",
        ((rx + tx) as f64 / wall.as_secs_f64().max(1e-9)) as u64,
    );
    gate.metric("moqt_lookups_ok", moqt_ok);
    gate.metric("updates_received", updates_received);
    let lat = Summary::from(latency_us);
    if !lat.is_empty() {
        gate.metric("query_latency_p50_us", lat.percentile(50.0) as u64);
        gate.metric("query_latency_p99_us", lat.percentile(99.0) as u64);
        gate.metric("query_latency_p999_us", lat.percentile(99.9) as u64);
    }
    let lag = Summary::from(lag_us);
    if !lag.is_empty() {
        gate.metric("update_lag_p50_us", lag.percentile(50.0) as u64);
        gate.metric("update_lag_p99_us", lag.percentile(99.0) as u64);
        gate.metric("update_lag_p999_us", lag.percentile(99.9) as u64);
    }
    if let Some(p) = &phase {
        gate.metric("offered_pps", p.offered_pps);
        gate.metric("achieved_pps", p.achieved_pps);
        gate.metric("probes_issued", p.issued);
        gate.metric("probes_completed", p.completed);
        gate.metric(
            "probe_drops",
            p.issued.saturating_sub(p.completed + p.failed),
        );
        gate.metric("probe_p50_us", p.p50_us);
        gate.metric("probe_p99_us", p.p99_us);
        gate.metric("probe_p999_us", p.p999_us);
        if opts.ramp {
            gate.metric("ramp_steps", ramp_steps);
        }
    }

    println!(
        "moqdns-loadgen: {} clients, {}/{} pairs at v{}, {} updates, rx={rx} tx={tx}, {} ms",
        plan.clients.len(),
        at_final,
        pairs.len(),
        opts.rounds,
        updates_received,
        wall.as_millis()
    );
    if let Some(p) = &phase {
        println!(
            "moqdns-loadgen: saturation offered={} achieved={} pps, p50={}us p99={}us p999={}us, issued={} completed={}",
            p.offered_pps, p.achieved_pps, p.p50_us, p.p99_us, p.p999_us, p.issued, p.completed
        );
    }
    if gate.finish() {
        0
    } else {
        1
    }
}
