//! # moqdns-relayd
//!
//! The production shape of the stack: the sans-io `RelayNode` /
//! `AuthServer` / `StubResolver` state machines — byte-identical to the
//! ones every simulated invariant was proven on — run over **real UDP
//! sockets** on the wall clock.
//!
//! * [`netio`] — sharded socket io: N `SO_REUSEPORT` sockets, one worker
//!   thread each, batched recv/inject/drain around one shared
//!   [`LiveSim`](moqdns_netsim::LiveSim) bridge;
//! * [`daemon`] — the `moqdns-relayd` binary's core: auth/relay modes,
//!   the TXT publish schedule, and the SIGTERM drain path;
//! * [`engine`] — the `moqdns-loadgen` binary's core: replays a
//!   [`LivePlan`](moqdns_workload::live::LivePlan) of staggered joins and
//!   churn bounces, then gates zero-loss/convergence invariants through
//!   [`InvariantGate`](moqdns_bench::gate::InvariantGate) — the
//!   `BENCH_live` family;
//! * [`signal`] — an async-signal-safe SIGTERM latch (no `libc` crate).
//!
//! The CI `live` job builds both binaries and runs three loopback
//! drills: `ci/live_smoke.sh` (auth daemon → relay daemon → loadgen,
//! 30 s budget), `ci/live_saturation.sh` (open-loop sustained-rate probe
//! through the mmsg + DCID-demux path), and `ci/live_chaos.sh` (SIGKILL
//! the relay mid-run, restart it, gate that every short-idle client
//! redials and reconverges on the final TXT version). Each uploads its
//! `results/live_<profile>.json` and enforces the hard invariants.

pub mod daemon;
pub mod engine;
pub mod netio;
pub mod signal;

pub use daemon::{DaemonOpts, Mode};
pub use engine::LoadgenOpts;
pub use netio::{bind_sharded, HostCore, LiveHost};
