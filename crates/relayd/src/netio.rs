//! Sharded UDP io for live protocol nodes.
//!
//! A [`LiveHost`] owns N real sockets, one worker thread per socket, all
//! feeding one shared [`LiveSim`] bridge behind a
//! mutex. The hot path is batched to amortize both syscalls and lock
//! acquisitions, per the daemon design:
//!
//! * a worker blocks in `recv_from` with a timeout derived from the
//!   bridge's next protocol deadline, re-arming `SO_RCVTIMEO` **only when
//!   the computed wait changes** (the kernel keeps the last value);
//! * on wakeup it drains a burst of datagrams (tiny follow-up timeout)
//!   before taking the lock **once** for the whole batch: advance the
//!   clock, inject every frame, pump events, drain the outbound queue;
//! * outbound datagrams are written to the wire *after* the lock is
//!   released, so a slow `send_to` never blocks the other workers.
//!
//! For a daemon, the N sockets are `SO_REUSEPORT` shards of one
//! listen address ([`bind_sharded`]): the kernel hashes each peer flow to
//! one socket, every worker replies from its own socket (the bound
//! address is identical), and cross-worker outbound hand-off is safe
//! because any worker may send on any shard. For a load generator, each
//! socket instead fronts one client node, so inbound routing is the
//! socket itself.

use moqdns_core::MOQT_PORT;
use moqdns_netsim::{Addr, LiveSim, NodeId, Payload};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Most datagrams a worker drains per lock acquisition.
const BATCH: usize = 64;
/// Follow-up read timeout while draining a burst.
const TAIL_WAIT: Duration = Duration::from_micros(1);
/// Ceiling on a worker's sleep: bounds how late an action armed by the
/// control thread (publish round, plan step) can fire.
const MAX_WAIT: Duration = Duration::from_millis(25);
/// Floor: `SO_RCVTIMEO` of zero would mean "block forever".
const MIN_WAIT: Duration = Duration::from_millis(1);

/// Shared datagram counters (wire-level, both directions).
#[derive(Debug, Default)]
pub struct HostStats {
    /// Datagrams read off the wire.
    pub rx: AtomicU64,
    /// Datagrams written to the wire.
    pub tx: AtomicU64,
}

/// The mutable heart of a [`LiveHost`]: the sim bridge plus the
/// `NodeId ↔ SocketAddr` registry for remote peers.
pub struct HostCore {
    live: LiveSim,
    /// Allocate remote slots for unknown senders on demand (a daemon
    /// accepts anyone; a load generator talks only to registered peers).
    learn_remotes: bool,
    by_addr: BTreeMap<SocketAddr, NodeId>,
    by_node: BTreeMap<u32, SocketAddr>,
}

impl HostCore {
    /// A fresh core around an empty bridge.
    pub fn new(seed: u64, learn_remotes: bool) -> HostCore {
        HostCore {
            live: LiveSim::new(seed),
            learn_remotes,
            by_addr: BTreeMap::new(),
            by_node: BTreeMap::new(),
        }
    }

    /// The underlying bridge (add nodes before [`LiveHost::start`]).
    pub fn live(&mut self) -> &mut LiveSim {
        &mut self.live
    }

    /// Registers (or looks up) the remote slot for a peer socket address.
    pub fn register_remote(&mut self, peer: SocketAddr) -> NodeId {
        if let Some(&id) = self.by_addr.get(&peer) {
            return id;
        }
        let id = self.live.add_remote();
        self.by_addr.insert(peer, id);
        self.by_node.insert(id.index() as u32, peer);
        id
    }

    fn remote_for(&mut self, peer: SocketAddr) -> Option<NodeId> {
        match self.by_addr.get(&peer) {
            Some(&id) => Some(id),
            None if self.learn_remotes => Some(self.register_remote(peer)),
            None => None,
        }
    }

    fn peer_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.by_node.get(&(node.index() as u32)).copied()
    }
}

/// A resolved outbound frame: which socket sends what where.
struct WireFrame {
    peer: SocketAddr,
    egress: usize,
    payload: Payload,
}

struct Shared {
    core: Mutex<HostCore>,
    stop: AtomicBool,
    stats: HostStats,
    /// Set when a worker dies on a socket error (drain is then unclean).
    failed: AtomicBool,
}

/// N sockets + N workers around one shared [`HostCore`].
pub struct LiveHost {
    shared: Arc<Shared>,
    sockets: Vec<Arc<UdpSocket>>,
    /// Local node each socket's inbound traffic is injected into.
    targets: Vec<NodeId>,
    epoch: Instant,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl LiveHost {
    /// Starts one worker per socket. `targets[i]` is the local node that
    /// receives everything arriving on `sockets[i]`.
    pub fn start(core: HostCore, sockets: Vec<UdpSocket>, targets: Vec<NodeId>) -> LiveHost {
        assert_eq!(sockets.len(), targets.len(), "one target per socket");
        assert!(!sockets.is_empty(), "need at least one socket");
        let sockets: Vec<Arc<UdpSocket>> = sockets.into_iter().map(Arc::new).collect();
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            stop: AtomicBool::new(false),
            stats: HostStats::default(),
            failed: AtomicBool::new(false),
        });
        let epoch = Instant::now();
        let handles = (0..sockets.len())
            .map(|k| {
                let shared = Arc::clone(&shared);
                let sockets = sockets.clone();
                let targets = targets.clone();
                std::thread::Builder::new()
                    .name(format!("udp-worker-{k}"))
                    .spawn(move || worker_loop(k, &shared, &sockets, &targets, epoch))
                    .expect("spawn worker")
            })
            .collect();
        LiveHost {
            shared,
            sockets,
            targets,
            epoch,
            handles,
        }
    }

    /// Wall-clock time on the bridge's clock.
    pub fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Wire datagram counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.shared.stats.rx.load(Ordering::Relaxed),
            self.shared.stats.tx.load(Ordering::Relaxed),
        )
    }

    /// Runs `f` against the core with the clock advanced to wall time,
    /// then flushes any outbound datagrams the action generated. This is
    /// how control threads (publisher, plan driver) call node verbs.
    pub fn with_core<R>(&self, f: impl FnOnce(&mut HostCore) -> R) -> R {
        let (r, frames) = {
            let mut core = self.shared.core.lock();
            let now = moqdns_netsim::SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64);
            core.live.run_until(now);
            let r = f(&mut core);
            core.live.run_until(now);
            let frames = resolve_outbound(&mut core, &self.targets, 0);
            (r, frames)
        };
        self.send_frames(&frames);
        r
    }

    fn send_frames(&self, frames: &[WireFrame]) {
        for fr in frames {
            if self.sockets[fr.egress]
                .send_to(&fr.payload, fr.peer)
                .is_ok()
            {
                self.shared.stats.tx.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Stops and joins every worker. Returns `true` when all workers ran
    /// until asked to stop (no socket errors — a clean drain).
    pub fn stop(mut self) -> bool {
        self.shared.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        !self.shared.failed.load(Ordering::Relaxed)
    }
}

impl Drop for LiveHost {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Resolves the bridge's parked outbound datagrams into wire frames.
/// `me` is the calling worker's socket index: a frame whose source node
/// owns several shards (the daemon case) goes out the caller's own socket
/// — every shard is bound to the same address, and using the local socket
/// avoids cross-thread contention on one "primary" fd.
fn resolve_outbound(core: &mut HostCore, targets: &[NodeId], me: usize) -> Vec<WireFrame> {
    let out = core.live.take_outbound();
    let mut frames = Vec::with_capacity(out.len());
    for dg in out {
        let Some(peer) = core.peer_of(dg.to.node) else {
            continue; // remote vanished (never registered); drop
        };
        let egress = if targets[me] == dg.from.node {
            me
        } else {
            targets
                .iter()
                .position(|&t| t == dg.from.node)
                .unwrap_or(me)
        };
        frames.push(WireFrame {
            peer,
            egress,
            payload: dg.payload,
        });
    }
    frames
}

fn worker_loop(
    k: usize,
    shared: &Shared,
    sockets: &[Arc<UdpSocket>],
    targets: &[NodeId],
    epoch: Instant,
) {
    let socket = &sockets[k];
    let mut buf = [0u8; 65_536];
    let mut inbox: Vec<(SocketAddr, Payload)> = Vec::with_capacity(BATCH);
    let mut armed: Option<Duration> = None;
    // Arm the initial wait before the first blocking read.
    let mut wait = MIN_WAIT;
    while !shared.stop.load(Ordering::Relaxed) {
        if armed != Some(wait) {
            if socket.set_read_timeout(Some(wait)).is_err() {
                shared.failed.store(true, Ordering::Relaxed);
                return;
            }
            armed = Some(wait);
        }
        match socket.recv_from(&mut buf) {
            Ok((n, from)) => {
                inbox.push((from, Payload::from(&buf[..n])));
                // Burst drain: keep reading with a tiny timeout so one
                // lock acquisition below covers the whole batch.
                if socket.set_read_timeout(Some(TAIL_WAIT)).is_ok() {
                    armed = Some(TAIL_WAIT);
                    while inbox.len() < BATCH {
                        match socket.recv_from(&mut buf) {
                            Ok((n, from)) => inbox.push((from, Payload::from(&buf[..n]))),
                            Err(_) => break,
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                shared.failed.store(true, Ordering::Relaxed);
                return;
            }
        }
        shared
            .stats
            .rx
            .fetch_add(inbox.len() as u64, Ordering::Relaxed);

        // One lock for the whole batch: clock, injects, pump, outbound.
        let (frames, next) = {
            let mut core = shared.core.lock();
            let now = moqdns_netsim::SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
            core.live.run_until(now);
            for (from, payload) in inbox.drain(..) {
                if let Some(remote) = core.remote_for(from) {
                    core.live.inject(
                        Addr::new(remote, MOQT_PORT),
                        Addr::new(targets[k], MOQT_PORT),
                        payload,
                    );
                }
            }
            core.live.run_until(now);
            let frames = resolve_outbound(&mut core, targets, k);
            (frames, core.live.next_event_at())
        };
        for fr in &frames {
            if sockets[fr.egress].send_to(&fr.payload, fr.peer).is_ok() {
                shared.stats.tx.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Sleep until the next protocol deadline (bounded both ways).
        let now = epoch.elapsed();
        wait = next
            .map(|at| Duration::from_nanos(at.as_nanos()).saturating_sub(now))
            .unwrap_or(MAX_WAIT)
            .clamp(MIN_WAIT, MAX_WAIT);
    }
}

/// Binds `workers` sockets to one `addr:port` via `SO_REUSEPORT`, so the
/// kernel shards inbound flows across them. With `workers == 1` this is a
/// plain bind. Returns the sockets plus the (single) bound address.
pub fn bind_sharded(addr: &str, workers: usize) -> std::io::Result<(Vec<UdpSocket>, SocketAddr)> {
    assert!(workers >= 1, "need at least one worker");
    if workers == 1 {
        let s = UdpSocket::bind(addr)?;
        let local = s.local_addr()?;
        return Ok((vec![s], local));
    }
    let first = bind_reuseport(addr)?;
    let local = first.local_addr()?;
    let mut sockets = vec![first];
    for _ in 1..workers {
        // Re-bind the *resolved* address: with an ephemeral request
        // (`:0`) every shard must land on the port the first bind got.
        sockets.push(bind_reuseport(&local.to_string())?);
    }
    Ok((sockets, local))
}

/// Binds a UDP socket with `SO_REUSEPORT` set before `bind` (std has no
/// API for this ordering, so the socket is created with raw syscalls and
/// then adopted). IPv4 only — the daemon's listeners are loopback/LAN
/// addresses.
#[cfg(target_os = "linux")]
fn bind_reuseport(addr: &str) -> std::io::Result<UdpSocket> {
    use std::os::fd::FromRawFd;

    let parsed: SocketAddr = addr
        .parse()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
    let SocketAddr::V4(v4) = parsed else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "SO_REUSEPORT sharding supports IPv4 listen addresses only",
        ));
    };

    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_CLOEXEC: i32 = 0x80000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEPORT: i32 = 15;

    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        /// Network byte order.
        port: u16,
        /// Network byte order.
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn close(fd: i32) -> i32;
    }

    unsafe {
        let fd = socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        if setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEPORT,
            &one,
            std::mem::size_of::<i32>() as u32,
        ) != 0
        {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        let sa = SockaddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be(),
            addr: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) != 0 {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        Ok(UdpSocket::from_raw_fd(fd))
    }
}

#[cfg(not(target_os = "linux"))]
fn bind_reuseport(_addr: &str) -> std::io::Result<UdpSocket> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "SO_REUSEPORT sharding is implemented for Linux only; use --workers 1",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_shards_share_one_port() {
        let (sockets, local) = bind_sharded("127.0.0.1:0", 3).expect("bind shards");
        assert_eq!(sockets.len(), 3);
        for s in &sockets {
            assert_eq!(s.local_addr().unwrap(), local);
        }
    }

    #[test]
    fn single_worker_needs_no_reuseport() {
        let (sockets, local) = bind_sharded("127.0.0.1:0", 1).expect("bind");
        assert_eq!(sockets.len(), 1);
        assert_ne!(local.port(), 0);
    }
}
