//! Sharded UDP io for live protocol nodes.
//!
//! A [`LiveHost`] owns N real sockets, one worker thread per socket, all
//! feeding one shared [`LiveSim`] bridge behind a mutex. The hot path
//! batches whole syscalls and keeps the lock off the wire, per the
//! saturation design:
//!
//! * a worker blocks in `recvmmsg` ([`RecvBatcher`]) with a timeout
//!   derived from the bridge's next protocol deadline, re-arming
//!   `SO_RCVTIMEO` **only when the computed wait changes** (the kernel
//!   keeps the last value); one syscall returns the first datagram plus
//!   everything already queued behind it;
//! * it then takes the core lock **once** for the whole burst: advance
//!   the clock, inject every frame, pump events, and stage the parked
//!   outbound datagrams onto per-socket send queues — appended *under*
//!   the lock, so queue order is protocol order;
//! * the wire write happens *after* the lock is released: each touched
//!   socket's queue is drained through a [`SendBatcher`] (`sendmmsg`)
//!   under a per-socket flush mutex. Only the flush-mutex holder
//!   dequeues, so per-socket wire order matches protocol order even when
//!   several workers staged frames; sockets with nothing staged are
//!   never touched.
//!
//! Outbound frames are steered by peeked DCID ([`peek_dcid`]) when the
//! source node fronts several sockets (the `SO_REUSEPORT` daemon case),
//! pinning a connection's packets to one socket so reordering cannot
//! regress the deterministic gates. Inbound, a socket fronting several
//! local nodes (the load generator's `--clients-per-socket` mode)
//! demuxes by the same DCID, learned from each connection's *outbound*
//! first flight — the client always transmits first, so the mapping
//! exists before any reply arrives.
//!
//! For a daemon, the N sockets are `SO_REUSEPORT` shards of one listen
//! address ([`bind_sharded`]): the kernel hashes each peer flow to one
//! socket, every worker replies from its own shard (the bound address is
//! identical), and cross-worker hand-off rides the send queues.

use moqdns_core::MOQT_PORT;
use moqdns_netsim::{Addr, LiveSim, NodeId, OutboundDatagram, Payload};
use moqdns_quic::packet::peek_dcid;
use moqdns_quic::udp_batch::{RecvBatcher, SendBatcher, MAX_BATCH};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ceiling on a worker's sleep: bounds how late an action armed by the
/// control thread (publish round, plan step) can fire.
const MAX_WAIT: Duration = Duration::from_millis(25);
/// Floor: `SO_RCVTIMEO` of zero would mean "block forever".
const MIN_WAIT: Duration = Duration::from_millis(1);

/// Shared datagram counters (wire-level, both directions).
#[derive(Debug, Default)]
pub struct HostStats {
    /// Datagrams read off the wire.
    pub rx: AtomicU64,
    /// Datagrams written to the wire.
    pub tx: AtomicU64,
    /// Inbound datagrams dropped because a shared socket could not map
    /// their DCID to a local node (never the socket's fault: the peer
    /// spoke before the fronted client did, which the protocol forbids).
    pub unrouted: AtomicU64,
}

/// The mutable heart of a [`LiveHost`]: the sim bridge plus the
/// `NodeId ↔ SocketAddr` registry for remote peers and the learned
/// `DCID → local node` demux table.
pub struct HostCore {
    live: LiveSim,
    /// Allocate remote slots for unknown senders on demand (a daemon
    /// accepts anyone; a load generator talks only to registered peers).
    learn_remotes: bool,
    by_addr: BTreeMap<SocketAddr, NodeId>,
    by_node: BTreeMap<u32, SocketAddr>,
    /// DCID → owning local node, learned from outbound datagrams. Only
    /// populated when some socket fronts more than one node.
    dcid_owner: BTreeMap<u64, NodeId>,
    /// Whether any socket needs DCID demux (set by [`LiveHost::start`]).
    demux: bool,
}

impl HostCore {
    /// A fresh core around an empty bridge.
    pub fn new(seed: u64, learn_remotes: bool) -> HostCore {
        HostCore {
            live: LiveSim::new(seed),
            learn_remotes,
            by_addr: BTreeMap::new(),
            by_node: BTreeMap::new(),
            dcid_owner: BTreeMap::new(),
            demux: false,
        }
    }

    /// The underlying bridge (add nodes before [`LiveHost::start`]).
    pub fn live(&mut self) -> &mut LiveSim {
        &mut self.live
    }

    /// Registers (or looks up) the remote slot for a peer socket address.
    pub fn register_remote(&mut self, peer: SocketAddr) -> NodeId {
        if let Some(&id) = self.by_addr.get(&peer) {
            return id;
        }
        let id = self.live.add_remote();
        self.by_addr.insert(peer, id);
        self.by_node.insert(id.index() as u32, peer);
        id
    }

    fn remote_for(&mut self, peer: SocketAddr) -> Option<NodeId> {
        match self.by_addr.get(&peer) {
            Some(&id) => Some(id),
            None if self.learn_remotes => Some(self.register_remote(peer)),
            None => None,
        }
    }

    fn peer_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.by_node.get(&(node.index() as u32)).copied()
    }

    /// Inbound routing for one datagram arriving on socket `k`.
    fn route_inbound(&self, fronts_k: &[NodeId], payload: &Payload) -> Option<NodeId> {
        if fronts_k.len() == 1 {
            return Some(fronts_k[0]);
        }
        // Shared socket: the DCID names the connection, and the owning
        // node was learned when that connection's first outbound flight
        // was staged. Delivery only needs the right *node* — which
        // socket carried the datagram is irrelevant to the state machine.
        self.dcid_owner.get(&peek_dcid(payload)?).copied()
    }
}

/// One socket's outbound lane: a staging queue appended under the core
/// lock (so order is protocol order) and a flusher that drains it to the
/// wire outside the lock. Only the flush-mutex holder dequeues, which
/// keeps per-socket wire order intact across workers.
struct SendShard {
    queue: Mutex<Vec<(SocketAddr, Payload)>>,
    flusher: Mutex<SendBatcher>,
}

struct Shared {
    core: Mutex<HostCore>,
    /// One outbound lane per socket.
    sends: Vec<SendShard>,
    /// Local node index → sockets fronting it (egress candidates).
    egress_of: BTreeMap<u32, Vec<usize>>,
    /// `fronts[k]` = local nodes whose inbound traffic socket `k` carries.
    fronts: Vec<Vec<NodeId>>,
    stop: AtomicBool,
    stats: HostStats,
    /// Set when a worker dies on a socket error (drain is then unclean).
    failed: AtomicBool,
}

/// Reusable per-caller scratch for the stage-then-flush outbound path,
/// so the steady state allocates nothing.
struct OutboundScratch {
    /// Parked datagrams drained from the bridge.
    parked: Vec<OutboundDatagram>,
    /// Frames grouped by egress socket before the queue append.
    staged: Vec<Vec<(SocketAddr, Payload)>>,
    /// Egress indices with non-empty staging this round.
    touched: Vec<usize>,
}

impl OutboundScratch {
    fn new(sockets: usize) -> OutboundScratch {
        OutboundScratch {
            parked: Vec::with_capacity(MAX_BATCH),
            staged: (0..sockets).map(|_| Vec::new()).collect(),
            touched: Vec::with_capacity(sockets),
        }
    }
}

/// N sockets + N workers around one shared [`HostCore`].
pub struct LiveHost {
    shared: Arc<Shared>,
    sockets: Vec<Arc<UdpSocket>>,
    epoch: Instant,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl LiveHost {
    /// Starts one worker per socket. `fronts[i]` lists the local nodes
    /// whose traffic `sockets[i]` carries: inbound datagrams are routed
    /// to the single entry directly, or demuxed by DCID when a socket
    /// fronts several nodes; outbound frames from a node go out one of
    /// the sockets fronting it (DCID-steered when there are several).
    pub fn start(
        mut core: HostCore,
        sockets: Vec<UdpSocket>,
        fronts: Vec<Vec<NodeId>>,
    ) -> LiveHost {
        assert_eq!(sockets.len(), fronts.len(), "one front list per socket");
        assert!(!sockets.is_empty(), "need at least one socket");
        assert!(
            fronts.iter().all(|f| !f.is_empty()),
            "every socket must front at least one node"
        );
        core.demux = fronts.iter().any(|f| f.len() > 1);
        let mut egress_of: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (k, list) in fronts.iter().enumerate() {
            for node in list {
                let lanes = egress_of.entry(node.index() as u32).or_default();
                if !lanes.contains(&k) {
                    lanes.push(k);
                }
            }
        }
        let sockets: Vec<Arc<UdpSocket>> = sockets.into_iter().map(Arc::new).collect();
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            sends: (0..sockets.len())
                .map(|_| SendShard {
                    queue: Mutex::new(Vec::new()),
                    flusher: Mutex::new(SendBatcher::new()),
                })
                .collect(),
            egress_of,
            fronts,
            stop: AtomicBool::new(false),
            stats: HostStats::default(),
            failed: AtomicBool::new(false),
        });
        let epoch = Instant::now();
        let handles = (0..sockets.len())
            .map(|k| {
                let shared = Arc::clone(&shared);
                let sockets = sockets.clone();
                std::thread::Builder::new()
                    .name(format!("udp-worker-{k}"))
                    .spawn(move || worker_loop(k, &shared, &sockets, epoch))
                    .expect("spawn worker")
            })
            .collect();
        LiveHost {
            shared,
            sockets,
            epoch,
            handles,
        }
    }

    /// Wall-clock time on the bridge's clock.
    pub fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Wire datagram counters (rx, tx).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.shared.stats.rx.load(Ordering::Relaxed),
            self.shared.stats.tx.load(Ordering::Relaxed),
        )
    }

    /// Inbound datagrams a shared socket could not route by DCID.
    pub fn unrouted(&self) -> u64 {
        self.shared.stats.unrouted.load(Ordering::Relaxed)
    }

    /// Runs `f` against the core with the clock advanced to wall time,
    /// then flushes any outbound datagrams the action generated. This is
    /// how control threads (publisher, plan driver) call node verbs.
    pub fn with_core<R>(&self, f: impl FnOnce(&mut HostCore) -> R) -> R {
        // Control path: a fresh scratch per call is fine (not hot).
        let mut scratch = OutboundScratch::new(self.sockets.len());
        let r = {
            let mut core = self.shared.core.lock();
            let now = moqdns_netsim::SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64);
            core.live.run_until(now);
            let r = f(&mut core);
            core.live.run_until(now);
            stage_outbound(&mut core, &self.shared, &mut scratch, 0);
            r
        };
        flush_touched(&self.shared, &self.sockets, &scratch.touched);
        r
    }

    /// Stops and joins every worker. Returns `true` when all workers ran
    /// until asked to stop (no socket errors — a clean drain).
    pub fn stop(mut self) -> bool {
        self.shared.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        !self.shared.failed.load(Ordering::Relaxed)
    }
}

impl Drop for LiveHost {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Drains the bridge's parked outbound datagrams onto per-socket send
/// queues. Must run with the core lock held — the append order *is* the
/// per-socket wire order. `me` is the caller's socket index, the egress
/// of last resort for a source node no socket claims to front.
///
/// Fills `scratch.touched` with the egress indices that received frames;
/// untouched sockets are skipped entirely by the flush.
fn stage_outbound(core: &mut HostCore, shared: &Shared, scratch: &mut OutboundScratch, me: usize) {
    scratch.touched.clear();
    scratch.parked.clear();
    if core.live.take_outbound_into(&mut scratch.parked) == 0 {
        return; // empty batch: no queue locks, no flush
    }
    for dg in scratch.parked.drain(..) {
        let Some(peer) = core.peer_of(dg.to.node) else {
            continue; // remote vanished (never registered); drop
        };
        if core.demux {
            // Learn the demux table from the first outbound flight: the
            // client transmits before the server can reply, so the entry
            // exists before any inbound datagram needs it.
            if let Some(dcid) = peek_dcid(&dg.payload) {
                core.dcid_owner.entry(dcid).or_insert(dg.from.node);
            }
        }
        let egress = match shared.egress_of.get(&(dg.from.node.index() as u32)) {
            Some(lanes) if lanes.len() == 1 => lanes[0],
            Some(lanes) => {
                // Several shards front this node (the daemon): pin the
                // connection to one socket by its DCID so its packets
                // never interleave across send queues.
                let dcid = peek_dcid(&dg.payload).unwrap_or(0);
                lanes[(dcid % lanes.len() as u64) as usize]
            }
            None => me,
        };
        scratch.staged[egress].push((peer, dg.payload));
    }
    for (k, frames) in scratch.staged.iter_mut().enumerate() {
        if frames.is_empty() {
            continue;
        }
        shared.sends[k].queue.lock().append(frames);
        scratch.touched.push(k);
    }
}

/// Flushes the touched sockets' queues to the wire. Runs *without* the
/// core lock. The per-socket flush mutex serializes drains so wire order
/// matches queue order; the drain loop re-checks the queue after each
/// burst, so frames staged by another worker mid-flush are still sent by
/// whoever holds the mutex (or by their own blocking acquisition next).
fn flush_touched(shared: &Shared, sockets: &[Arc<UdpSocket>], touched: &[usize]) {
    let mut burst: Vec<(SocketAddr, Payload)> = Vec::new();
    for &k in touched {
        let shard = &shared.sends[k];
        let mut flusher = shard.flusher.lock();
        loop {
            {
                let mut queue = shard.queue.lock();
                std::mem::swap(&mut *queue, &mut burst);
            }
            if burst.is_empty() {
                break;
            }
            let sent = flusher.send_burst(&sockets[k], &burst);
            shared.stats.tx.fetch_add(sent, Ordering::Relaxed);
            burst.clear();
        }
    }
}

fn worker_loop(k: usize, shared: &Shared, sockets: &[Arc<UdpSocket>], epoch: Instant) {
    let socket = &sockets[k];
    let fronts_k = &shared.fronts[k];
    let mut recv = RecvBatcher::new();
    let mut inbox: Vec<(SocketAddr, Payload)> = Vec::with_capacity(MAX_BATCH);
    let mut scratch = OutboundScratch::new(sockets.len());
    let mut armed: Option<Duration> = None;
    // Arm the initial wait before the first blocking read.
    let mut wait = MIN_WAIT;
    while !shared.stop.load(Ordering::Relaxed) {
        if armed != Some(wait) {
            if socket.set_read_timeout(Some(wait)).is_err() {
                shared.failed.store(true, Ordering::Relaxed);
                return;
            }
            armed = Some(wait);
        }
        // One recvmmsg returns the first datagram plus the queue behind
        // it (or times out); the fallback path drains non-blocking.
        match recv.recv_burst(socket, &mut inbox) {
            Ok(_) => {}
            Err(_) => {
                shared.failed.store(true, Ordering::Relaxed);
                return;
            }
        }
        shared
            .stats
            .rx
            .fetch_add(inbox.len() as u64, Ordering::Relaxed);

        // One lock for the whole burst: clock, injects, pump, staging.
        let next = {
            let mut core = shared.core.lock();
            let now = moqdns_netsim::SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
            core.live.run_until(now);
            for (from, payload) in inbox.drain(..) {
                let Some(remote) = core.remote_for(from) else {
                    continue;
                };
                let Some(target) = core.route_inbound(fronts_k, &payload) else {
                    shared.stats.unrouted.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                core.live.inject(
                    Addr::new(remote, MOQT_PORT),
                    Addr::new(target, MOQT_PORT),
                    payload,
                );
            }
            core.live.run_until(now);
            stage_outbound(&mut core, shared, &mut scratch, k);
            core.live.next_event_at()
        };
        // Wire writes happen outside the lock; untouched sockets (and
        // entirely empty batches) cost nothing.
        flush_touched(shared, sockets, &scratch.touched);

        // Sleep until the next protocol deadline (bounded both ways).
        let now = epoch.elapsed();
        wait = next
            .map(|at| Duration::from_nanos(at.as_nanos()).saturating_sub(now))
            .unwrap_or(MAX_WAIT)
            .clamp(MIN_WAIT, MAX_WAIT);
    }
}

/// Binds `workers` sockets to one `addr:port` via `SO_REUSEPORT`, so the
/// kernel shards inbound flows across them. With `workers == 1` this is a
/// plain bind. Returns the sockets plus the (single) bound address.
pub fn bind_sharded(addr: &str, workers: usize) -> std::io::Result<(Vec<UdpSocket>, SocketAddr)> {
    assert!(workers >= 1, "need at least one worker");
    if workers == 1 {
        let s = UdpSocket::bind(addr)?;
        let local = s.local_addr()?;
        return Ok((vec![s], local));
    }
    let first = bind_reuseport(addr)?;
    let local = first.local_addr()?;
    let mut sockets = vec![first];
    for _ in 1..workers {
        // Re-bind the *resolved* address: with an ephemeral request
        // (`:0`) every shard must land on the port the first bind got.
        sockets.push(bind_reuseport(&local.to_string())?);
    }
    Ok((sockets, local))
}

/// Binds a UDP socket with `SO_REUSEPORT` set before `bind` (std has no
/// API for this ordering, so the socket is created with raw syscalls and
/// then adopted). IPv4 only — the daemon's listeners are loopback/LAN
/// addresses.
#[cfg(target_os = "linux")]
fn bind_reuseport(addr: &str) -> std::io::Result<UdpSocket> {
    use std::os::fd::FromRawFd;

    let parsed: SocketAddr = addr
        .parse()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
    let SocketAddr::V4(v4) = parsed else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "SO_REUSEPORT sharding supports IPv4 listen addresses only",
        ));
    };

    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_CLOEXEC: i32 = 0x80000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEPORT: i32 = 15;

    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        /// Network byte order.
        port: u16,
        /// Network byte order.
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn close(fd: i32) -> i32;
    }

    unsafe {
        let fd = socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        if setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEPORT,
            &one,
            std::mem::size_of::<i32>() as u32,
        ) != 0
        {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        let sa = SockaddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be(),
            addr: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) != 0 {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        Ok(UdpSocket::from_raw_fd(fd))
    }
}

#[cfg(not(target_os = "linux"))]
fn bind_reuseport(_addr: &str) -> std::io::Result<UdpSocket> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "SO_REUSEPORT sharding is implemented for Linux only; use --workers 1",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_shards_share_one_port() {
        let (sockets, local) = bind_sharded("127.0.0.1:0", 3).expect("bind shards");
        assert_eq!(sockets.len(), 3);
        for s in &sockets {
            assert_eq!(s.local_addr().unwrap(), local);
        }
    }

    #[test]
    fn single_worker_needs_no_reuseport() {
        let (sockets, local) = bind_sharded("127.0.0.1:0", 1).expect("bind");
        assert_eq!(sockets.len(), 1);
        assert_ne!(local.port(), 0);
    }
}
