//! Minimal async-signal-safe SIGTERM/SIGINT latch.
//!
//! The container has no `libc` crate, so the handler is registered
//! through a raw `signal(2)` declaration (std links libc on unix). The
//! handler only stores to a static `AtomicBool` — async-signal-safe —
//! and the daemon's control loop polls the flag to begin its drain.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    TERM.store(true, Ordering::Relaxed);
}

/// Installs handlers for SIGTERM and SIGINT. Returns the latch; safe to
/// call more than once.
pub fn install() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler: extern "C" fn(i32) = on_signal;
        unsafe {
            signal(SIGTERM, handler as usize);
            signal(SIGINT, handler as usize);
        }
    }
    &TERM
}

/// Whether a termination signal has been received.
pub fn terminated() -> bool {
    TERM.load(Ordering::Relaxed)
}

/// Test/driver hook: trip the latch programmatically.
pub fn request_shutdown() {
    TERM.store(true, Ordering::Relaxed);
}
