//! Tier-1 integration: a 3-node chain — auth daemon → relay daemon (2
//! sharded workers) → loadgen stubs — over **real loopback sockets**.
//!
//! This is the live counterpart of the simulator chain scenarios: the
//! same node types, the io layer swapped for `LiveHost` workers. The
//! loadgen engine runs in plain (non-`--check`) mode, so any violated
//! invariant (incomplete delivery, non-monotone updates, failed lookups,
//! unclean worker drain) panics with its name. The daemons must then
//! drain to exit code 0 on the shutdown latch, all inside a bounded
//! wall-clock budget.

use moqdns_bench::cli::BenchOpts;
use moqdns_relayd::daemon::{self, DaemonOpts, Mode};
use moqdns_relayd::engine::{self, LoadgenOpts};
use moqdns_relayd::signal;
use moqdns_workload::live::LiveSpec;
use std::time::{Duration, Instant};

#[test]
fn three_node_chain_over_real_loopback() {
    let start = Instant::now();
    let auth_opts = DaemonOpts {
        mode: Mode::Auth,
        listen: "127.0.0.1:46470".into(),
        workers: 1,
        tracks: 4,
        rounds: 3,
        interval: Duration::from_millis(200),
        start_delay: Duration::from_millis(800),
        ..DaemonOpts::default()
    };
    let relay_opts = DaemonOpts {
        mode: Mode::Relay,
        listen: "127.0.0.1:46471".into(),
        workers: 2,
        parent: Some("127.0.0.1:46470".parse().unwrap()),
        ..DaemonOpts::default()
    };
    let auth = std::thread::spawn(move || daemon::run(auth_opts));
    std::thread::sleep(Duration::from_millis(100));
    let relay = std::thread::spawn(move || daemon::run(relay_opts));
    std::thread::sleep(Duration::from_millis(100));

    let mut spec = LiveSpec::smoke();
    spec.clients = 6;
    spec.tracks = 4;
    spec.subs_per_client = 2;
    let code = engine::run(LoadgenOpts {
        server: "127.0.0.1:46471".parse().unwrap(),
        rounds: 3,
        deadline: Duration::from_secs(15),
        profile: "chain_test".into(),
        spec,
        bench: BenchOpts::default(),
    });
    assert_eq!(code, 0, "loadgen invariants hold over the live chain");

    // SIGTERM equivalent: trip the latch, both daemons must drain clean.
    signal::request_shutdown();
    assert_eq!(auth.join().unwrap(), 0, "auth drained cleanly");
    assert_eq!(relay.join().unwrap(), 0, "relay drained cleanly");
    assert!(
        start.elapsed() < Duration::from_secs(25),
        "chain converged and drained within the wall-clock budget (took {:?})",
        start.elapsed()
    );
}
