//! Tier-1 integration: a 3-node chain — auth daemon → relay daemon (2
//! sharded workers) → loadgen stubs — over **real loopback sockets**.
//!
//! This is the live counterpart of the simulator chain scenarios: the
//! same node types, the io layer swapped for `LiveHost` workers. The
//! loadgen engine runs in plain (non-`--check`) mode, so any violated
//! invariant (incomplete delivery, non-monotone updates, failed lookups,
//! unclean worker drain) panics with its name. After the replay, a burst
//! phase fires a 256-datagram salvo at the relay — 256 stubs connecting
//! in one staged flush, over sockets shared 32-to-1 (DCID demux) — once
//! on the `recvmmsg`/`sendmmsg` path and once on the single-datagram
//! fallback (`MOQDNS_NO_MMSG`), and both must deliver completely. The
//! daemons must then drain to exit code 0 on the shutdown latch, all
//! inside a bounded wall-clock budget.

use moqdns_bench::cli::BenchOpts;
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::rr::RecordType;
use moqdns_netsim::{Addr, NodeId};
use moqdns_relayd::daemon::{self, DaemonOpts, Mode};
use moqdns_relayd::engine::{self, LoadgenOpts};
use moqdns_relayd::netio::{HostCore, LiveHost};
use moqdns_relayd::signal;
use moqdns_workload::live::LiveSpec;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

/// Fires a 256-client salvo at `server`: every stub connects and
/// subscribes in ONE staged flush (≥ 256 datagrams leave in a single
/// burst, split across `sendmmsg` chunks), then all answers must arrive.
/// `force_single` pins the io layer to the single-datagram fallback via
/// `MOQDNS_NO_MMSG` (read at batcher construction, so it takes effect
/// for the host started after the flip). `seed_base` must differ between
/// salvos: connection ids derive from the stub seeds, and a reused cid
/// would route the daemon's replies to the previous salvo's dead
/// sockets (the connection handle IS the cid in this transport).
fn salvo_delivers_completely(server: &str, force_single: bool, seed_base: u64) {
    if force_single {
        std::env::set_var("MOQDNS_NO_MMSG", "1");
    } else {
        std::env::remove_var("MOQDNS_NO_MMSG");
    }
    const CLIENTS: usize = 256;
    const PER_SOCKET: usize = 32;

    let mut core = HostCore::new(777, false);
    let remote = core.register_remote(server.parse().unwrap());
    let server_addr = Addr::new(remote, MOQT_PORT);
    let nodes: Vec<NodeId> = (0..CLIENTS)
        .map(|i| {
            core.live().add_node(
                format!("salvo{i}"),
                Box::new(StubResolver::new(
                    StubMode::Moqt,
                    server_addr,
                    seed_base + i as u64,
                )),
            )
        })
        .collect();
    let fronts: Vec<Vec<NodeId>> = nodes.chunks(PER_SOCKET).map(|c| c.to_vec()).collect();
    let sockets: Vec<UdpSocket> = (0..fronts.len())
        .map(|_| UdpSocket::bind("127.0.0.1:0").unwrap())
        .collect();
    let host = LiveHost::start(core, sockets, fronts);

    let question = Question::new("t0.live.moqdns.test".parse().unwrap(), RecordType::TXT);
    // The salvo: all 256 first flights staged under one core lock and
    // flushed together.
    host.with_core(|core| {
        for &n in &nodes {
            let q = question.clone();
            core.live()
                .with_node::<StubResolver, _>(n, |stub, ctx| stub.lookup(ctx, q));
        }
    });

    let deadline = Instant::now() + Duration::from_secs(10);
    let mode = if force_single { "fallback" } else { "mmsg" };
    loop {
        let answered = host.with_core(|core| {
            nodes
                .iter()
                .filter(|&&n| {
                    core.live()
                        .node_ref::<StubResolver>(n)
                        .answer(&question)
                        .is_some()
                })
                .count()
        });
        if answered == CLIENTS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{mode} salvo: only {answered}/{CLIENTS} answers arrived"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        host.unrouted(),
        0,
        "{mode} salvo: every shared-socket datagram demuxed by DCID"
    );
    assert!(host.stop(), "{mode} salvo: io workers drained cleanly");
    std::env::remove_var("MOQDNS_NO_MMSG");
}

#[test]
fn three_node_chain_over_real_loopback() {
    let start = Instant::now();
    let auth_opts = DaemonOpts {
        mode: Mode::Auth,
        listen: "127.0.0.1:46470".into(),
        workers: 1,
        tracks: 4,
        rounds: 3,
        interval: Duration::from_millis(200),
        start_delay: Duration::from_millis(800),
        ..DaemonOpts::default()
    };
    let relay_opts = DaemonOpts {
        mode: Mode::Relay,
        listen: "127.0.0.1:46471".into(),
        workers: 2,
        parent: Some("127.0.0.1:46470".parse().unwrap()),
        ..DaemonOpts::default()
    };
    let auth = std::thread::spawn(move || daemon::run(auth_opts));
    std::thread::sleep(Duration::from_millis(100));
    let relay = std::thread::spawn(move || daemon::run(relay_opts));
    std::thread::sleep(Duration::from_millis(100));

    let mut spec = LiveSpec::smoke();
    spec.clients = 6;
    spec.tracks = 4;
    spec.subs_per_client = 2;
    let code = engine::run(LoadgenOpts {
        server: "127.0.0.1:46471".parse().unwrap(),
        rounds: 3,
        deadline: Duration::from_secs(15),
        profile: "chain_test".into(),
        clients_per_socket: 2,
        rate: None,
        duration: Duration::from_secs(1),
        ramp: false,
        idle: None,
        keep_alive: None,
        redial: None,
        spec,
        bench: BenchOpts::default(),
    });
    assert_eq!(code, 0, "loadgen invariants hold over the live chain");

    // Burst phase: the 256-datagram salvo must deliver completely on
    // both io paths (rounds already published, so answers are immediate).
    salvo_delivers_completely("127.0.0.1:46471", false, 50_000);
    salvo_delivers_completely("127.0.0.1:46471", true, 150_000);

    // SIGTERM equivalent: trip the latch, both daemons must drain clean.
    signal::request_shutdown();
    assert_eq!(auth.join().unwrap(), 0, "auth drained cleanly");
    assert_eq!(relay.join().unwrap(), 0, "relay drained cleanly");
    assert!(
        start.elapsed() < Duration::from_secs(40),
        "chain converged, salvoed, and drained within the wall-clock budget (took {:?})",
        start.elapsed()
    );
}
