//! Empirical CDFs for plotting-style output.

/// An empirical cumulative distribution function.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples.
    pub fn from(samples: impl IntoIterator<Item = f64>) -> Cdf {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted }
    }

    /// Fraction of samples `<= x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|v| *v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Evenly spaced `(value, fraction)` points for plotting/export.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let len = self.sorted.len();
        (1..=n)
            .map(|i| {
                let idx = (i * len / n).max(1) - 1;
                (self.sorted[idx], (idx + 1) as f64 / len as f64)
            })
            .collect()
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let c = Cdf::from([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.5), 0.5);
        assert_eq!(c.at(100.0), 1.0);
    }

    #[test]
    fn points_span_distribution() {
        let c = Cdf::from((1..=100).map(|x| x as f64));
        let pts = c.points(4);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[3], (100.0, 1.0));
        assert_eq!(pts[1].1, 0.5);
    }

    #[test]
    fn empty() {
        let c = Cdf::from([]);
        assert_eq!(c.at(1.0), 0.0);
        assert!(c.points(5).is_empty());
    }
}
