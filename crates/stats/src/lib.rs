//! # moqdns-stats
//!
//! Small statistics and reporting toolkit for the experiment harness:
//! percentiles/summaries, CDFs, rate formatting, and markdown/CSV tables.

pub mod cdf;
pub mod rates;
pub mod summary;
pub mod table;

pub use cdf::Cdf;
pub use rates::{format_bps, format_duration};
pub use summary::Summary;
pub use table::Table;
