//! Human-readable rate and duration formatting for experiment output.

/// Formats bits per second with a binary-free SI unit (kbps/Mbps/Gbps).
pub fn format_bps(bps: f64) -> String {
    let abs = bps.abs();
    if abs >= 1e9 {
        format!("{:.2} Gbps", bps / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2} Mbps", bps / 1e6)
    } else if abs >= 1e3 {
        format!("{:.2} kbps", bps / 1e3)
    } else {
        format!("{bps:.0} bps")
    }
}

/// Formats seconds using the most readable unit.
pub fn format_duration(secs: f64) -> String {
    if secs >= 60.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs > 0.0 {
        format!("{:.0} us", secs * 1e6)
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bps_units() {
        assert_eq!(format_bps(5.5e9), "5.50 Gbps");
        assert_eq!(format_bps(240e3), "240.00 kbps");
        assert_eq!(format_bps(1.2e6), "1.20 Mbps");
        assert_eq!(format_bps(900.0), "900 bps");
    }

    #[test]
    fn duration_units() {
        assert_eq!(format_duration(120.0), "2.0 min");
        assert_eq!(format_duration(2.5), "2.50 s");
        assert_eq!(format_duration(0.040), "40.00 ms");
        assert_eq!(format_duration(25e-6), "25 us");
        assert_eq!(format_duration(0.0), "0");
    }
}
