//! Percentiles and summary statistics over f64 samples.

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    sorted: Vec<f64>,
}

impl Summary {
    /// Builds a summary from samples (NaNs are dropped).
    pub fn from(samples: impl IntoIterator<Item = f64>) -> Summary {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Summary { sorted }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Minimum (0 for empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum (0 for empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// The `p`-th percentile (0–100), nearest-rank method.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        let idx = rank.max(1).min(self.sorted.len()) - 1;
        self.sorted[idx]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.sorted.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
            / (self.sorted.len() - 1) as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let s = Summary::from((1..=100).map(|x| x as f64));
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(90.0), 90.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(1.0), 1.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.median(), 50.0);
    }

    #[test]
    fn mean_and_stddev() {
        let s = Summary::from([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138).abs() < 0.01);
    }

    #[test]
    fn empty_is_zeroes() {
        let s = Summary::from([]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(90.0), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn nan_dropped() {
        let s = Summary::from([1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from([7.0]);
        assert_eq!(s.percentile(1.0), 7.0);
        assert_eq!(s.percentile(99.0), 7.0);
    }
}
