//! Table rendering: markdown for the terminal/EXPERIMENTS.md, CSV for
//! `results/`.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-oriented results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.into(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of display-able values.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Table {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown with padded columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&dashes, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders CSV (RFC 4180-ish; quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV form to `path` (creating parent directories).
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Latency", &["mode", "rtt"]);
        t.push(&["udp", "1"]);
        t.push(&["moqt-cold", "3"]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.contains("### Latency"));
        assert!(md.contains("| mode      | rtt |"));
        assert!(md.contains("| moqt-cold | 3   |"));
        assert!(md.lines().count() >= 5);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["plain".into(), "with,comma \"q\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("plain,\"with,comma \"\"q\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("moqdns-stats-test");
        let path = dir.join("t.csv");
        sample().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("mode,rtt"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
