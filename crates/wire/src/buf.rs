//! Bounded byte cursors for encoding and decoding.
//!
//! [`Reader`] wraps a borrowed slice and fails with
//! [`WireError::UnexpectedEnd`](crate::WireError) instead of panicking when
//! input runs out — malformed network input must never crash a server.
//! [`Writer`] wraps a growable `Vec<u8>` with big-endian put helpers.

use crate::{WireError, WireResult};

/// A bounded, non-panicking read cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current read position (bytes consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The unconsumed tail of the buffer.
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// The full underlying buffer (independent of position).
    pub fn full(&self) -> &'a [u8] {
        self.buf
    }

    fn check(&self, n: usize) -> WireResult<()> {
        if self.remaining() < n {
            Err(WireError::UnexpectedEnd {
                needed: n - self.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> WireResult<u8> {
        self.check(1)?;
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u16.
    pub fn get_u16(&mut self) -> WireResult<u16> {
        let b = self.get_bytes(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian u32.
    pub fn get_u32(&mut self) -> WireResult<u32> {
        let b = self.get_bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian u64.
    pub fn get_u64(&mut self) -> WireResult<u64> {
        let b = self.get_bytes(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads exactly `n` bytes, advancing the cursor.
    pub fn get_bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.check(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads exactly `n` bytes into an owned vector.
    pub fn get_vec(&mut self, n: usize) -> WireResult<Vec<u8>> {
        Ok(self.get_bytes(n)?.to_vec())
    }

    /// Consumes and returns all remaining bytes.
    pub fn take_rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> WireResult<()> {
        self.check(n)?;
        self.pos += n;
        Ok(())
    }

    /// Moves the cursor to an absolute position (used by DNS name
    /// decompression, which follows pointers backwards).
    pub fn seek(&mut self, pos: usize) -> WireResult<()> {
        if pos > self.buf.len() {
            return Err(WireError::Invalid {
                what: "seek position",
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Returns an error if any bytes remain unconsumed.
    pub fn expect_end(&self) -> WireResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    /// Runs `f` on a sub-reader restricted to the next `n` bytes, then
    /// advances past them. The sub-reader must be fully consumed.
    pub fn sub<T>(
        &mut self,
        n: usize,
        f: impl FnOnce(&mut Reader<'a>) -> WireResult<T>,
    ) -> WireResult<T> {
        let bytes = self.get_bytes(n)?;
        let mut sub = Reader::new(bytes);
        let v = f(&mut sub)?;
        sub.expect_end()?;
        Ok(v)
    }
}

/// A growable big-endian write cursor.
#[derive(Debug, Clone, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes of pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Creates a writer over a recycled buffer: the contents are cleared
    /// but the allocation is kept, so hot encode paths that hand buffers
    /// back (see [`crate::BufPool`]) stop paying per-message allocations.
    pub fn reuse(mut buf: Vec<u8>) -> Writer {
        buf.clear();
        Writer { buf }
    }

    /// Clears the written bytes, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Bytes of allocated capacity (diagnostics for pooling).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a byte slice verbatim.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// View of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Mutable view (used to patch length prefixes after the fact).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Overwrites the big-endian u16 at `pos` (for patching length fields).
    pub fn patch_u16(&mut self, pos: usize, v: u16) {
        self.buf[pos..pos + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Consumes the writer, returning the underlying bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_integers() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_slice(b"xyz");
        assert_eq!(w.len(), 1 + 2 + 4 + 8 + 3);

        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_bytes(3).unwrap(), b"xyz");
        assert!(r.is_empty());
        r.expect_end().unwrap();
    }

    #[test]
    fn underflow_is_error_not_panic() {
        let buf = [1u8, 2];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.get_u32(),
            Err(WireError::UnexpectedEnd { needed: 2 })
        ));
        // Position must be unchanged after a failed read.
        assert_eq!(r.position(), 0);
        assert_eq!(r.get_u16().unwrap(), 0x0102);
    }

    #[test]
    fn take_rest_and_skip() {
        let buf = [1u8, 2, 3, 4, 5];
        let mut r = Reader::new(&buf);
        r.skip(2).unwrap();
        assert_eq!(r.take_rest(), &[3, 4, 5]);
        assert!(r.is_empty());
        assert!(r.skip(1).is_err());
    }

    #[test]
    fn seek_for_compression_pointers() {
        let buf = [9u8, 8, 7];
        let mut r = Reader::new(&buf);
        r.skip(3).unwrap();
        r.seek(1).unwrap();
        assert_eq!(r.get_u8().unwrap(), 8);
        assert!(r.seek(4).is_err());
        r.seek(3).unwrap(); // seeking to end is fine
        assert!(r.is_empty());
    }

    #[test]
    fn expect_end_reports_trailing() {
        let buf = [0u8; 3];
        let r = Reader::new(&buf);
        assert!(matches!(
            r.expect_end(),
            Err(WireError::TrailingBytes { remaining: 3 })
        ));
    }

    #[test]
    fn sub_reader_scopes_and_requires_full_consumption() {
        let buf = [2u8, 0xAA, 0xBB, 0xCC];
        let mut r = Reader::new(&buf);
        let n = r.get_u8().unwrap() as usize;
        let v = r.sub(n, |s| s.get_u16()).unwrap();
        assert_eq!(v, 0xAABB);
        assert_eq!(r.remaining(), 1);

        // Under-consumption inside sub() is an error.
        let buf2 = [0x01u8, 0x02, 0x03];
        let mut r2 = Reader::new(&buf2);
        assert!(r2.sub(3, |s| s.get_u16()).is_err());
    }

    #[test]
    fn patch_u16() {
        let mut w = Writer::new();
        w.put_u16(0);
        w.put_u8(9);
        w.patch_u16(0, 0xBEEF);
        assert_eq!(w.as_slice(), &[0xBE, 0xEF, 9]);
    }
}
