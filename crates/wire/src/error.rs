//! Common error type for encode/decode failures.

use std::fmt;

/// Errors produced while encoding or decoding wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a complete value could be read.
    UnexpectedEnd {
        /// How many more bytes were needed (best effort).
        needed: usize,
    },
    /// A value was outside the range representable in the target encoding.
    ValueTooLarge {
        /// Human-readable description of the field.
        what: &'static str,
    },
    /// The bytes read do not form a valid value for the expected type.
    Invalid {
        /// Human-readable description of what was being decoded.
        what: &'static str,
    },
    /// Trailing bytes remained after a full message was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { needed } => {
                write!(f, "unexpected end of input ({needed} more bytes needed)")
            }
            WireError::ValueTooLarge { what } => write!(f, "value too large for {what}"),
            WireError::Invalid { what } => write!(f, "invalid {what}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            WireError::UnexpectedEnd { needed: 3 }.to_string(),
            "unexpected end of input (3 more bytes needed)"
        );
        assert_eq!(
            WireError::ValueTooLarge { what: "varint" }.to_string(),
            "value too large for varint"
        );
        assert_eq!(
            WireError::Invalid { what: "frame" }.to_string(),
            "invalid frame"
        );
        assert_eq!(
            WireError::TrailingBytes { remaining: 7 }.to_string(),
            "7 trailing bytes after message"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(WireError::Invalid { what: "x" });
    }
}
