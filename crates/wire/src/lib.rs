//! # moqdns-wire
//!
//! Shared wire-format primitives used by every protocol crate in the
//! workspace: QUIC variable-length integers (RFC 9000 §16), bounded
//! byte cursors for encoding and decoding, shared zero-copy payload
//! handles ([`Payload`]), reusable buffer pools ([`BufPool`]), and a
//! common error type.
//!
//! The cursors are deliberately minimal: they operate on plain byte
//! slices / `Vec<u8>` so that protocol state machines stay sans-io and
//! allocation patterns stay obvious. [`Payload`] is the one shared-
//! ownership concession: an `Arc<[u8]>` slice handle so that object
//! fan-out across N subscribers clones a refcount, not the bytes.

pub mod buf;
pub mod error;
pub mod payload;
pub mod pool;
pub mod varint;

pub use buf::{Reader, Writer};
pub use error::WireError;
pub use payload::Payload;
pub use pool::BufPool;
pub use varint::VarInt;

/// Convenience result alias for wire-format operations.
pub type WireResult<T> = Result<T, WireError>;
