//! # moqdns-wire
//!
//! Shared wire-format primitives used by every protocol crate in the
//! workspace: QUIC variable-length integers (RFC 9000 §16), bounded
//! byte cursors for encoding and decoding, and a common error type.
//!
//! The cursors are deliberately minimal: they operate on plain byte
//! slices / `Vec<u8>` so that protocol state machines stay sans-io and
//! allocation patterns stay obvious.

pub mod buf;
pub mod error;
pub mod varint;

pub use buf::{Reader, Writer};
pub use error::WireError;
pub use varint::VarInt;

/// Convenience result alias for wire-format operations.
pub type WireResult<T> = Result<T, WireError>;
