//! Cheaply-clonable shared byte payloads.
//!
//! [`Payload`] is an `Arc<[u8]>`-backed slice handle (offset + length into
//! shared storage). Cloning bumps a reference count instead of copying
//! bytes, and [`Payload::slice`] carves zero-copy sub-views out of a
//! decoded buffer. This is what lets a relay fan one published DNS object
//! out to N subscribers with **zero per-subscriber payload copies** — the
//! object is encoded once and every forward shares the same backing
//! storage.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, Range};
use std::sync::Arc;

/// A shared, immutable byte string: `Arc<[u8]>` plus an offset/length
/// window. `Clone` is O(1); equality and hashing are by content.
#[derive(Clone)]
pub struct Payload {
    bytes: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Payload {
    /// Creates a payload from `bytes`. Construction copies the bytes
    /// once into the shared `Arc<[u8]>` allocation; every subsequent
    /// clone/slice is then a refcount bump.
    pub fn new(bytes: Vec<u8>) -> Payload {
        let len = bytes.len();
        Payload {
            bytes: bytes.into(),
            offset: 0,
            len,
        }
    }

    /// The empty payload (no allocation is shared, but none is needed).
    pub fn empty() -> Payload {
        Payload {
            bytes: Arc::new([]),
            offset: 0,
            len: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the payload has no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The payload's bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[self.offset..self.offset + self.len]
    }

    /// A zero-copy sub-view of this payload. Panics if `range` is out of
    /// bounds (mirroring slice indexing).
    pub fn slice(&self, range: Range<usize>) -> Payload {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "payload slice {range:?} out of bounds (len {})",
            self.len
        );
        Payload {
            bytes: Arc::clone(&self.bytes),
            offset: self.offset + range.start,
            len: range.end - range.start,
        }
    }

    /// Copies the bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Number of handles sharing the backing storage (diagnostics; the
    /// fan-out tests assert sharing instead of copying through this).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.bytes)
    }

    /// True if `other` shares this payload's backing storage (zero-copy
    /// lineage check).
    pub fn shares_storage_with(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.bytes, &other.bytes)
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::empty()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::new(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(s: &[u8]) -> Payload {
        Payload {
            bytes: Arc::from(s),
            offset: 0,
            len: s.len(),
        }
    }
}

impl From<&Vec<u8>> for Payload {
    fn from(v: &Vec<u8>) -> Payload {
        Payload::from(v.as_slice())
    }
}

impl From<&Payload> for Payload {
    fn from(p: &Payload) -> Payload {
        p.clone()
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(a: &[u8; N]) -> Payload {
        Payload::from(a.as_slice())
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} B: {:?})", self.len, self.as_slice())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        // Same storage + same window is equality without touching bytes —
        // the common case when comparing a republished object against the
        // handle remembered from the last push.
        (self.shares_storage_with(other) && self.offset == other.offset && self.len == other.len)
            || self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Payload {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let p = Payload::new(vec![1, 2, 3, 4]);
        let q = p.clone();
        assert!(p.shares_storage_with(&q));
        assert_eq!(p.ref_count(), 2);
        assert_eq!(q, p);
    }

    #[test]
    fn slice_is_zero_copy() {
        let p = Payload::new((0..100).collect());
        let s = p.slice(10..20);
        assert!(s.shares_storage_with(&p));
        assert_eq!(s.as_slice(), &(10..20).collect::<Vec<u8>>()[..]);
        // Nested slices stay anchored to the original storage.
        let ss = s.slice(5..10);
        assert!(ss.shares_storage_with(&p));
        assert_eq!(ss.as_slice(), &[15, 16, 17, 18, 19]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_checked() {
        Payload::new(vec![0; 4]).slice(2..6);
    }

    #[test]
    fn equality_against_byte_types() {
        let p = Payload::new(b"abc".to_vec());
        assert_eq!(p, *b"abc");
        assert_eq!(p, b"abc");
        assert_eq!(p, b"abc".to_vec());
        assert_eq!(p, b"abc"[..]);
        assert_ne!(p, b"abd");
    }

    #[test]
    fn empty_and_default() {
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::default().len(), 0);
        assert_eq!(Payload::empty(), Payload::new(vec![]));
    }

    #[test]
    fn hash_matches_content() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Payload::new(vec![1, 2]));
        assert!(set.contains(&Payload::from(&[1u8, 2][..])));
    }
}
