//! A small free-list of byte buffers for hot encode paths.
//!
//! Protocol state machines here are single-threaded per connection, so the
//! pool is deliberately not synchronized: each `Connection`/`Session` owns
//! one. `take` hands out a cleared buffer with its previous allocation
//! intact; `recycle` returns it. Buffers that grew beyond
//! [`BufPool::MAX_RETAINED_CAP`] are dropped instead of retained so one
//! jumbo message cannot pin memory forever.

use crate::buf::Writer;

/// A bounded stack of reusable byte buffers.
#[derive(Debug)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    default_capacity: usize,
}

impl BufPool {
    /// Buffers that grew beyond this capacity are not retained.
    pub const MAX_RETAINED_CAP: usize = 64 * 1024;

    /// Creates a pool retaining at most `max_buffers` buffers, each
    /// starting at `default_capacity` bytes.
    pub fn new(max_buffers: usize, default_capacity: usize) -> BufPool {
        BufPool {
            free: Vec::new(),
            max_buffers,
            default_capacity,
        }
    }

    /// Takes a cleared buffer (recycled allocation when available).
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut b) => {
                b.clear();
                b
            }
            None => Vec::with_capacity(self.default_capacity),
        }
    }

    /// Takes a [`Writer`] over a recycled buffer.
    pub fn writer(&mut self) -> Writer {
        Writer::reuse(self.take())
    }

    /// Returns a buffer to the pool (dropped when full or oversized).
    pub fn recycle(&mut self, buf: Vec<u8>) {
        if self.free.len() < self.max_buffers && buf.capacity() <= Self::MAX_RETAINED_CAP {
            self.free.push(buf);
        }
    }

    /// Returns a writer's buffer to the pool.
    pub fn recycle_writer(&mut self, w: Writer) {
        self.recycle(w.into_vec());
    }

    /// Number of buffers currently retained.
    pub fn retained(&self) -> usize {
        self.free.len()
    }
}

impl Default for BufPool {
    fn default() -> BufPool {
        BufPool::new(8, 2048)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_allocations() {
        let mut pool = BufPool::new(2, 64);
        let mut a = pool.take();
        a.extend_from_slice(&[1; 100]);
        let cap = a.capacity();
        let ptr = a.as_ptr() as usize;
        pool.recycle(a);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffers are cleared");
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr() as usize, ptr, "same allocation handed back");
    }

    #[test]
    fn bounded_retention() {
        let mut pool = BufPool::new(1, 16);
        pool.recycle(vec![0; 8]);
        pool.recycle(vec![0; 8]);
        assert_eq!(pool.retained(), 1, "pool keeps at most max_buffers");
        pool.recycle(Vec::with_capacity(BufPool::MAX_RETAINED_CAP + 1));
        assert_eq!(pool.retained(), 1, "oversized buffers are dropped");
    }

    #[test]
    fn writer_roundtrip() {
        let mut pool = BufPool::new(4, 32);
        let mut w = pool.writer();
        w.put_u32(0xAABB_CCDD);
        assert_eq!(w.len(), 4);
        pool.recycle_writer(w);
        let w2 = pool.writer();
        assert!(w2.is_empty());
        assert!(w2.capacity() >= 32);
    }
}
