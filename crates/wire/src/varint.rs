//! QUIC variable-length integers (RFC 9000 §16).
//!
//! Values up to 2^62 - 1 are encoded in 1, 2, 4 or 8 bytes; the two most
//! significant bits of the first byte carry the length exponent. MoQT
//! reuses this encoding for all of its wire format, and our QUIC-like
//! transport uses it for frame fields.

use crate::{Reader, WireError, WireResult, Writer};
use std::fmt;

/// Maximum value representable as a QUIC varint: `2^62 - 1`.
pub const MAX_VARINT: u64 = (1 << 62) - 1;

/// A QUIC variable-length integer (RFC 9000 §16).
///
/// Guaranteed by construction to hold a value `<= 2^62 - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VarInt(u64);

impl VarInt {
    /// The largest representable varint.
    pub const MAX: VarInt = VarInt(MAX_VARINT);
    /// Zero.
    pub const ZERO: VarInt = VarInt(0);

    /// Creates a varint, returning an error if `v` exceeds `2^62 - 1`.
    pub fn new(v: u64) -> WireResult<VarInt> {
        if v > MAX_VARINT {
            Err(WireError::ValueTooLarge { what: "varint" })
        } else {
            Ok(VarInt(v))
        }
    }

    /// Creates a varint from a value statically known to fit (panics otherwise).
    ///
    /// Use for protocol constants; prefer [`VarInt::new`] for runtime data.
    pub const fn from_const(v: u64) -> VarInt {
        assert!(v <= MAX_VARINT);
        VarInt(v)
    }

    /// Returns the contained value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Number of bytes this value occupies on the wire (1, 2, 4 or 8).
    pub const fn size(self) -> usize {
        let v = self.0;
        if v < (1 << 6) {
            1
        } else if v < (1 << 14) {
            2
        } else if v < (1 << 30) {
            4
        } else {
            8
        }
    }

    /// Encodes `self` onto `w`.
    pub fn encode(self, w: &mut Writer) {
        let v = self.0;
        match self.size() {
            1 => w.put_u8(v as u8),
            2 => w.put_u16(0b01 << 14 | v as u16),
            4 => w.put_u32(0b10 << 30 | v as u32),
            8 => w.put_u64(0b11 << 62 | v),
            _ => unreachable!(),
        }
    }

    /// Decodes a varint from `r`.
    pub fn decode(r: &mut Reader<'_>) -> WireResult<VarInt> {
        let first = r.get_u8()?;
        let tag = first >> 6;
        let rest = (first & 0b0011_1111) as u64;
        let v = match tag {
            0b00 => rest,
            0b01 => rest << 8 | r.get_u8()? as u64,
            0b10 => {
                let mut v = rest;
                for _ in 0..3 {
                    v = v << 8 | r.get_u8()? as u64;
                }
                v
            }
            0b11 => {
                let mut v = rest;
                for _ in 0..7 {
                    v = v << 8 | r.get_u8()? as u64;
                }
                v
            }
            _ => unreachable!(),
        };
        Ok(VarInt(v))
    }
}

impl fmt::Display for VarInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<u8> for VarInt {
    fn from(v: u8) -> Self {
        VarInt(v as u64)
    }
}

impl From<u16> for VarInt {
    fn from(v: u16) -> Self {
        VarInt(v as u64)
    }
}

impl From<u32> for VarInt {
    fn from(v: u32) -> Self {
        VarInt(v as u64)
    }
}

impl TryFrom<u64> for VarInt {
    type Error = WireError;
    fn try_from(v: u64) -> WireResult<VarInt> {
        VarInt::new(v)
    }
}

impl TryFrom<usize> for VarInt {
    type Error = WireError;
    fn try_from(v: usize) -> WireResult<VarInt> {
        VarInt::new(v as u64)
    }
}

impl From<VarInt> for u64 {
    fn from(v: VarInt) -> u64 {
        v.0
    }
}

/// Wire length of `v` as a varint (1, 2, 4 or 8 bytes). Lets encoders
/// size packets arithmetically instead of encoding twice.
pub fn varint_len(v: u64) -> usize {
    VarInt::try_from(v).expect("varint fits").size()
}

/// Encodes `v` as a varint onto `w`, panicking if out of range.
///
/// Convenience for call sites where the value is structurally bounded
/// (lengths of buffers we just built, enum discriminants, ...).
pub fn put_varint(w: &mut Writer, v: u64) {
    VarInt::new(v).expect("varint out of range").encode(w);
}

/// Decodes a varint from `r` and returns its raw value.
pub fn get_varint(r: &mut Reader<'_>) -> WireResult<u64> {
    Ok(VarInt::decode(r)?.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: u64) -> u64 {
        let vi = VarInt::new(v).unwrap();
        let mut w = Writer::new();
        vi.encode(&mut w);
        assert_eq!(w.as_slice().len(), vi.size());
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let out = VarInt::decode(&mut r).unwrap();
        assert!(r.is_empty());
        out.value()
    }

    #[test]
    fn rfc9000_appendix_a_examples() {
        // Examples from RFC 9000 Appendix A.1.
        let cases: &[(&[u8], u64)] = &[
            (
                &[0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c],
                151_288_809_941_952_652,
            ),
            (&[0x9d, 0x7f, 0x3e, 0x7d], 494_878_333),
            (&[0x7b, 0xbd], 15_293),
            (&[0x25], 37),
        ];
        for (bytes, want) in cases {
            let mut r = Reader::new(bytes);
            assert_eq!(VarInt::decode(&mut r).unwrap().value(), *want);
            let mut w = Writer::new();
            VarInt::new(*want).unwrap().encode(&mut w);
            assert_eq!(w.as_slice(), *bytes);
        }
    }

    #[test]
    fn boundaries() {
        for v in [
            0,
            63,
            64,
            16_383,
            16_384,
            1_073_741_823,
            1_073_741_824,
            MAX_VARINT,
        ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn sizes() {
        assert_eq!(VarInt::from_const(0).size(), 1);
        assert_eq!(VarInt::from_const(63).size(), 1);
        assert_eq!(VarInt::from_const(64).size(), 2);
        assert_eq!(VarInt::from_const(16_383).size(), 2);
        assert_eq!(VarInt::from_const(16_384).size(), 4);
        assert_eq!(VarInt::from_const(1_073_741_823).size(), 4);
        assert_eq!(VarInt::from_const(1_073_741_824).size(), 8);
        assert_eq!(VarInt::MAX.size(), 8);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(VarInt::new(MAX_VARINT + 1).is_err());
        assert!(VarInt::new(u64::MAX).is_err());
    }

    #[test]
    fn decode_truncated_fails() {
        // 4-byte length prefix with only 2 bytes present.
        let buf = [0x9d, 0x7f];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            VarInt::decode(&mut r),
            Err(WireError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn conversions() {
        assert_eq!(VarInt::from(7u8).value(), 7);
        assert_eq!(VarInt::from(700u16).value(), 700);
        assert_eq!(VarInt::from(70_000u32).value(), 70_000);
        assert!(VarInt::try_from(u64::MAX).is_err());
        assert_eq!(u64::from(VarInt::from_const(9)), 9);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in 0u64..=MAX_VARINT) {
            prop_assert_eq!(roundtrip(v), v);
        }

        #[test]
        fn prop_varint_len_matches_encoding(v in 0u64..=MAX_VARINT) {
            // The arithmetic size used by packet accounting must agree
            // with the bytes actually produced.
            let mut w = Writer::new();
            put_varint(&mut w, v);
            prop_assert_eq!(varint_len(v), w.len());
        }

        #[test]
        fn prop_encoding_is_minimal_ordering(a in 0u64..=MAX_VARINT, b in 0u64..=MAX_VARINT) {
            // Encoded size is monotone in the value.
            let (sa, sb) = (VarInt::new(a).unwrap().size(), VarInt::new(b).unwrap().size());
            if a <= b {
                prop_assert!(sa <= sb);
            }
        }
    }
}
