//! Record-change (churn) processes (paper §2, Fig 1b).
//!
//! The paper observed each record for 300 consecutive TTL intervals and
//! counted changes between lexicographically ordered samples (countering
//! round-robin reordering):
//!
//! > "the lower the TTL the more changes are performed: while TTLs of
//! > 300 s and below show a high change rate with at least 71 changes in
//! > the 90th percentile over 300 subsequent observations, TTLs of 600 s
//! > and above show no changes at all up to the same percentile."
//!
//! [`ChurnModel`] assigns each domain a per-observation change probability
//! drawn from a TTL-dependent mixture: low-TTL records are a mix of static
//! domains and highly dynamic (CDN load-balanced) domains; high-TTL
//! records are almost all static.

use moqdns_dns::rdata::RData;
use moqdns_dns::rr::Record;
use rand::rngs::StdRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// Per-TTL-cluster churn mixture.
#[derive(Debug, Clone, Copy)]
pub struct ChurnModel {
    /// Fraction of low-TTL (≤ 300 s) domains that are dynamic.
    pub low_ttl_dynamic_fraction: f64,
    /// Per-observation change probability range for dynamic domains.
    pub dynamic_rate: (f64, f64),
    /// Fraction of high-TTL (≥ 600 s) domains that ever change.
    pub high_ttl_dynamic_fraction: f64,
    /// Per-observation change probability for the rare high-TTL changers.
    pub high_ttl_rate: f64,
}

impl Default for ChurnModel {
    fn default() -> ChurnModel {
        ChurnModel {
            // Calibrated so the p90 of changes over 300 observations for
            // TTL ≤ 300 lands at ≥ 71 (Fig 1b) while the median stays low.
            low_ttl_dynamic_fraction: 0.35,
            dynamic_rate: (0.25, 0.95),
            high_ttl_dynamic_fraction: 0.02,
            high_ttl_rate: 0.01,
        }
    }
}

impl ChurnModel {
    /// Draws the per-observation change probability for a domain whose
    /// record has the given TTL.
    pub fn sample_rate(&self, ttl: u32, rng: &mut StdRng) -> f64 {
        if ttl <= 300 {
            if rng.random::<f64>() < self.low_ttl_dynamic_fraction {
                rng.random_range(self.dynamic_rate.0..self.dynamic_rate.1)
            } else {
                0.0
            }
        } else if rng.random::<f64>() < self.high_ttl_dynamic_fraction {
            self.high_ttl_rate
        } else {
            0.0
        }
    }

    /// Simulates the paper's §2 methodology for one domain: `observations`
    /// samples spaced one TTL apart, returning the number of changes
    /// between lexicographically ordered consecutive samples.
    pub fn simulate_observations(&self, ttl: u32, observations: usize, rng: &mut StdRng) -> usize {
        let rate = self.sample_rate(ttl, rng);
        let mut churner = RecordChurner::new(rng.random(), rate);
        let mut changes = 0;
        let mut prev = churner.canonical();
        for _ in 1..observations {
            churner.step(rng);
            let cur = churner.canonical();
            if cur != prev {
                changes += 1;
            }
            prev = cur;
        }
        changes
    }
}

/// Evolves one domain's A record set over time; used both by the Fig 1b
/// analysis and by the live experiments that mutate zones.
#[derive(Debug, Clone)]
pub struct RecordChurner {
    /// Current addresses (the record set).
    addrs: Vec<Ipv4Addr>,
    /// Per-step change probability.
    rate: f64,
    /// Counter for generating fresh addresses.
    counter: u32,
}

impl RecordChurner {
    /// Creates a churner with a seed-derived initial record set.
    pub fn new(seed: u32, rate: f64) -> RecordChurner {
        let base = Ipv4Addr::from(0xC633_0000 | (seed & 0xFFFF)); // 198.51.x.y
        RecordChurner {
            addrs: vec![base],
            rate,
            counter: seed,
        }
    }

    /// The change rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Advances one observation interval; the record set may change.
    /// Returns true if it did.
    pub fn step(&mut self, rng: &mut StdRng) -> bool {
        if rng.random::<f64>() >= self.rate {
            // Round-robin reorder without content change (the bias the
            // paper's lexicographic comparison cancels out).
            self.addrs.rotate_left(1);
            return false;
        }
        self.counter = self.counter.wrapping_add(1);
        let fresh = Ipv4Addr::from(0xC633_0000 | (self.counter & 0xFFFF));
        self.addrs = vec![fresh];
        true
    }

    /// Lexicographically ordered sample (the paper's comparison key).
    pub fn canonical(&self) -> Vec<String> {
        let mut v: Vec<String> = self.addrs.iter().map(|a| a.to_string()).collect();
        v.sort();
        v
    }

    /// Current record set as DNS records.
    pub fn records(&self, name: &moqdns_dns::name::Name, ttl: u32) -> Vec<Record> {
        self.addrs
            .iter()
            .map(|a| Record::new(name.clone(), ttl, RData::A(*a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Reproduce Fig 1b's headline numbers from the synthetic model.
    #[test]
    fn fig1b_percentiles_match_paper_shape() {
        let model = ChurnModel::default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut low: Vec<usize> = Vec::new();
        let mut high: Vec<usize> = Vec::new();
        for _ in 0..500 {
            low.push(model.simulate_observations(300, 300, &mut rng));
            high.push(model.simulate_observations(600, 300, &mut rng));
        }
        low.sort_unstable();
        high.sort_unstable();
        let p90_low = low[(0.9 * low.len() as f64) as usize];
        let p90_high = high[(0.9 * high.len() as f64) as usize];
        assert!(
            p90_low >= 71,
            "TTL ≤ 300: ≥71 changes at p90 (got {p90_low})"
        );
        assert_eq!(
            p90_high, 0,
            "TTL ≥ 600: no changes up to p90 (got {p90_high})"
        );
    }

    #[test]
    fn low_ttl_has_static_majority() {
        // The paper's median change count for low TTLs is modest: only a
        // minority of domains are highly dynamic.
        let model = ChurnModel::default();
        let mut rng = StdRng::seed_from_u64(12);
        let zeros = (0..500)
            .filter(|_| model.simulate_observations(60, 300, &mut rng) == 0)
            .count();
        assert!(zeros > 250, "most low-TTL domains are static ({zeros}/500)");
    }

    #[test]
    fn rotation_does_not_count_as_change() {
        // Round-robin reordering must not register as churn (the paper's
        // lexicographic-comparison methodology).
        let mut churner = RecordChurner::new(7, 0.0);
        churner.addrs = vec![Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)];
        let mut rng = StdRng::seed_from_u64(0);
        let before = churner.canonical();
        let changed = churner.step(&mut rng);
        assert!(!changed);
        assert_eq!(churner.canonical(), before);
        // But the raw order did rotate.
        assert_eq!(churner.addrs[0], Ipv4Addr::new(2, 2, 2, 2));
    }

    #[test]
    fn full_rate_changes_every_step() {
        let mut churner = RecordChurner::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut changes = 0;
        let mut prev = churner.canonical();
        for _ in 0..50 {
            churner.step(&mut rng);
            let cur = churner.canonical();
            if cur != prev {
                changes += 1;
            }
            prev = cur;
        }
        assert_eq!(changes, 50);
    }

    #[test]
    fn records_materialize() {
        let churner = RecordChurner::new(9, 0.5);
        let name: moqdns_dns::name::Name = "x.com".parse().unwrap();
        let recs = churner.records(&name, 300);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ttl, 300);
    }
}
