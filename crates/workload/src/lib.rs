//! # moqdns-workload
//!
//! Synthetic workloads calibrated to the paper's §2 measurement study:
//!
//! * [`toplist`] — a Tranco-like top-10k domain list with Zipf popularity
//!   and per-record-type presence matching Fig 1a's counts (8435 A, 2870
//!   AAAA, 1835 HTTPS out of 10 000 domains);
//! * [`ttl_model`] — TTL assignment from the clusters
//!   {20, 60, 300, 600, 1200, 3600} s, with HTTPS records "almost
//!   exclusively" at 300 s;
//! * [`churn`] — record-change processes reproducing Fig 1b: records with
//!   TTL ≤ 300 s change often (≥ 71 changes in the 90th percentile of 300
//!   consecutive observations) while TTL ≥ 600 s records essentially never
//!   change;
//! * [`queries`] — query arrival processes (Poisson, Zipf-over-toplist);
//! * [`live`] — the models above compiled into a pure-data [`LivePlan`]
//!   replayed by `moqdns-loadgen` against a real daemon over sockets;
//! * [`scenarios`] — the §5.3 use-case parameter sets (DDNS, CDN, deep
//!   space) with the paper's back-of-envelope arithmetic reproduced
//!   exactly.
//!
//! **Substitution note (DESIGN.md §2):** the paper measured the live
//! Internet from one vantage point; we regenerate the published
//! distributions synthetically and run the same analysis pipeline over
//! them.

pub mod churn;
pub mod live;
pub mod queries;
pub mod scenarios;
pub mod toplist;
pub mod ttl_model;

pub use churn::ChurnModel;
pub use live::{LivePlan, LiveSpec};
pub use toplist::{Toplist, ToplistDomain};
pub use ttl_model::TtlModel;
