//! Live replay plans: the workload models compiled into a pure-data
//! schedule a real-socket load generator can execute.
//!
//! The simulator binaries sample the toplist/query/churn models *inline*
//! while virtual time advances. A live run cannot: `moqdns-loadgen` drives
//! wall-clock sockets, so every sampling decision is made up front —
//! deterministically from a seed — and the io loop merely executes the
//! resulting [`LivePlan`]. The plan composes three models from this crate:
//!
//! * **toplist** ([`Toplist`]): which tracks each client subscribes to,
//!   sampled Zipf so popular tracks get the fan-out the paper's relay
//!   coalescing argument is about;
//! * **queries** ([`PoissonArrivals`]): staggered client join offsets, so
//!   subscribes arrive as a Poisson process instead of a thundering herd;
//! * **churn**: a fraction of clients bounce (unsubscribe, then resubscribe
//!   after a pause), exercising the PR 6 session teardown paths against a
//!   live daemon.
//!
//! Determinism matters even live: the same `(spec, seed)` produces the same
//! plan, so invariants phrased as *final-state* properties ("every planned
//! subscription reaches the final zone version") are checkable despite
//! nondeterministic wall-clock interleaving.

use crate::queries::PoissonArrivals;
use crate::toplist::Toplist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Parameters for a live replay plan.
#[derive(Debug, Clone)]
pub struct LiveSpec {
    /// DNS zone the daemon serves (e.g. `live.moqdns.test`).
    pub zone: String,
    /// Distinct published names (`t<i>.<zone>` for `i < tracks`).
    pub tracks: usize,
    /// Number of generator clients.
    pub clients: usize,
    /// Distinct track subscriptions per client (Zipf-sampled).
    pub subs_per_client: usize,
    /// Client join rate (Poisson arrivals per second).
    pub join_rate_per_sec: f64,
    /// Fraction of clients that bounce a subscription (churn).
    pub bounce_fraction: f64,
    /// How long after joining a bouncing client tears down and rejoins.
    pub bounce_after: Duration,
    /// Plan RNG seed.
    pub seed: u64,
}

impl LiveSpec {
    /// The CI smoke profile: small enough to finish inside a 30 s budget
    /// on a loaded runner, large enough that fan-out coalescing and churn
    /// paths are actually exercised.
    pub fn smoke() -> LiveSpec {
        LiveSpec {
            zone: "live.moqdns.test".into(),
            tracks: 8,
            clients: 12,
            subs_per_client: 2,
            join_rate_per_sec: 20.0,
            bounce_fraction: 0.25,
            bounce_after: Duration::from_millis(900),
            seed: 92,
        }
    }
}

/// One client's schedule.
#[derive(Debug, Clone)]
pub struct ClientPlan {
    /// When this client connects + subscribes, relative to run start.
    pub join_at: Duration,
    /// Distinct track indices (each `< spec.tracks`), Zipf-popular.
    pub tracks: Vec<usize>,
    /// When set, the client unsubscribes its first track at this offset
    /// and resubscribes [`LiveSpec::bounce_after`] later.
    pub bounce_at: Option<Duration>,
}

/// A fully-sampled live replay schedule (pure data; no io).
#[derive(Debug, Clone)]
pub struct LivePlan {
    /// The generating parameters.
    pub spec: LiveSpec,
    /// Per-client schedules, join-ordered.
    pub clients: Vec<ClientPlan>,
}

impl LivePlan {
    /// Compiles `spec` into a concrete schedule. Pure function of the
    /// spec (including its seed).
    pub fn generate(spec: LiveSpec) -> LivePlan {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        // Zipf popularity over track indices via the toplist model: a
        // sampled domain's rank-1 maps onto track index.
        let pop = Toplist::generate(spec.tracks, spec.seed ^ 0x746f70);
        let joins = PoissonArrivals::new(spec.join_rate_per_sec);
        let mut at = Duration::ZERO;
        let mut clients = Vec::with_capacity(spec.clients);
        let bouncers = (spec.clients as f64 * spec.bounce_fraction).round() as usize;
        for c in 0..spec.clients {
            at += joins.next_gap(&mut rng);
            let mut tracks = Vec::with_capacity(spec.subs_per_client);
            while tracks.len() < spec.subs_per_client && tracks.len() < spec.tracks {
                let idx = pop.sample_zipf(&mut rng).rank - 1;
                if !tracks.contains(&idx) {
                    tracks.push(idx);
                }
            }
            // Spread bouncers across the join order (every k-th client)
            // so churn is not concentrated on the earliest joiners.
            let bounce_at = if bouncers > 0 && c % spec.clients.div_ceil(bouncers) == 0 {
                Some(at + spec.bounce_after)
            } else {
                None
            };
            clients.push(ClientPlan {
                join_at: at,
                tracks,
                bounce_at,
            });
        }
        LivePlan { spec, clients }
    }

    /// The published name for track `idx` (`t<idx>.<zone>`).
    pub fn track_name(&self, idx: usize) -> String {
        format!("t{idx}.{}", self.spec.zone)
    }

    /// Total planned subscriptions across all clients (bounces resubscribe
    /// the same track, so they do not add to this count).
    pub fn total_subscriptions(&self) -> usize {
        self.clients.iter().map(|c| c.tracks.len()).sum()
    }

    /// When the last scheduled action (join or resubscribe) fires.
    pub fn last_action_at(&self) -> Duration {
        self.clients
            .iter()
            .map(|c| {
                c.bounce_at
                    .map(|b| b + self.spec.bounce_after)
                    .unwrap_or(c.join_at)
            })
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        let a = LivePlan::generate(LiveSpec::smoke());
        let b = LivePlan::generate(LiveSpec::smoke());
        assert_eq!(a.clients.len(), b.clients.len());
        for (x, y) in a.clients.iter().zip(&b.clients) {
            assert_eq!(x.join_at, y.join_at);
            assert_eq!(x.tracks, y.tracks);
            assert_eq!(x.bounce_at, y.bounce_at);
        }
    }

    #[test]
    fn plan_shape_matches_spec() {
        let spec = LiveSpec::smoke();
        let plan = LivePlan::generate(spec.clone());
        assert_eq!(plan.clients.len(), spec.clients);
        for c in &plan.clients {
            assert_eq!(c.tracks.len(), spec.subs_per_client);
            assert!(c.tracks.iter().all(|&t| t < spec.tracks));
            let mut dedup = c.tracks.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), c.tracks.len(), "tracks are distinct");
        }
        let bouncers = plan
            .clients
            .iter()
            .filter(|c| c.bounce_at.is_some())
            .count();
        assert!(bouncers >= 1, "smoke plan exercises churn");
        assert_eq!(
            plan.total_subscriptions(),
            spec.clients * spec.subs_per_client
        );
    }

    #[test]
    fn joins_are_staggered_and_ordered() {
        let plan = LivePlan::generate(LiveSpec::smoke());
        let mut prev = Duration::ZERO;
        for c in &plan.clients {
            assert!(c.join_at > prev, "strictly increasing join offsets");
            prev = c.join_at;
        }
        assert!(plan.last_action_at() >= prev);
    }

    #[test]
    fn track_names_live_under_the_zone() {
        let plan = LivePlan::generate(LiveSpec::smoke());
        assert_eq!(plan.track_name(3), "t3.live.moqdns.test");
    }
}
