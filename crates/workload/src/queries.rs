//! Query arrival processes.

use crate::toplist::{Toplist, ToplistDomain};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Duration;

/// A Poisson arrival process (exponential inter-arrivals).
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    /// Mean arrivals per second.
    pub rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_sec` mean arrivals per second.
    pub fn new(rate_per_sec: f64) -> PoissonArrivals {
        PoissonArrivals { rate_per_sec }
    }

    /// Draws the next inter-arrival gap.
    pub fn next_gap(&self, rng: &mut StdRng) -> Duration {
        let u: f64 = rng.random::<f64>().max(1e-12);
        let secs = -u.ln() / self.rate_per_sec;
        Duration::from_secs_f64(secs)
    }

    /// Generates arrival offsets within a window of `horizon`.
    pub fn arrivals_within(&self, horizon: Duration, rng: &mut StdRng) -> Vec<Duration> {
        let mut out = Vec::new();
        let mut t = Duration::ZERO;
        loop {
            t += self.next_gap(rng);
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// A browsing model: Zipf-popularity queries over a toplist.
///
/// §5.3: "the average user may visit 100+ web sites per day … close to
/// 1,000 per week" — the default rate matches 100 visits/day.
#[derive(Debug, Clone)]
pub struct BrowsingModel {
    arrivals: PoissonArrivals,
}

impl BrowsingModel {
    /// A user issuing `visits_per_day` site visits (≈ lookups).
    pub fn per_day(visits_per_day: f64) -> BrowsingModel {
        BrowsingModel {
            arrivals: PoissonArrivals::new(visits_per_day / 86_400.0),
        }
    }

    /// The paper's typical user: 100+ visits per day.
    pub fn typical_user() -> BrowsingModel {
        BrowsingModel::per_day(100.0)
    }

    /// Generates `(offset, domain)` query events within `horizon`.
    pub fn queries_within<'a>(
        &self,
        toplist: &'a Toplist,
        horizon: Duration,
        rng: &mut StdRng,
    ) -> Vec<(Duration, &'a ToplistDomain)> {
        self.arrivals
            .arrivals_within(horizon, rng)
            .into_iter()
            .map(|t| (t, toplist.sample_zipf(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_rate() {
        let p = PoissonArrivals::new(10.0);
        let mut rng = StdRng::seed_from_u64(4);
        let arrivals = p.arrivals_within(Duration::from_secs(1000), &mut rng);
        // Expect ~10_000 arrivals; ±5%.
        assert!(
            (9_500..=10_500).contains(&arrivals.len()),
            "{}",
            arrivals.len()
        );
        // Strictly increasing offsets.
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn browsing_visits_per_day() {
        let m = BrowsingModel::typical_user();
        let toplist = Toplist::generate(100, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let day = Duration::from_secs(86_400);
        let qs = m.queries_within(&toplist, day, &mut rng);
        assert!((70..=130).contains(&qs.len()), "{} visits", qs.len());
    }

    #[test]
    fn weekly_unique_domains_near_paper_estimate() {
        // §5.3: "close to 1,000 per week" total visits; uniques are fewer
        // under Zipf popularity but still in the hundreds.
        let m = BrowsingModel::typical_user();
        let toplist = Toplist::generate(10_000, 2);
        let mut rng = StdRng::seed_from_u64(6);
        let week = Duration::from_secs(7 * 86_400);
        let qs = m.queries_within(&toplist, week, &mut rng);
        assert!((500..=900).contains(&qs.len()), "{} visits", qs.len());
        let uniq: std::collections::HashSet<usize> = qs.iter().map(|(_, d)| d.rank).collect();
        assert!(uniq.len() > 100, "{} unique domains", uniq.len());
    }
}
