//! The §5.3 use-case parameter sets, with the paper's back-of-envelope
//! arithmetic reproduced exactly (experiments E6–E8).

use std::time::Duration;

/// Dynamic DNS (paper §5.3, first scenario).
///
/// "Let us assume 100M users worldwide with 1,000 other users each
/// interested in their hosted services and involving 5 MoQ relays on
/// average. At two IP address updates per day and 300 B update size, this
/// would yield a globally distributed application layer update traffic of
/// some 5.5 Gbps."
#[derive(Debug, Clone, Copy)]
pub struct DdnsScenario {
    /// DDNS users hosting services.
    pub users: u64,
    /// Subscribers interested in each user's records.
    pub interested_per_user: u64,
    /// Average MoQ relays on each distribution path.
    pub relays_per_path: u64,
    /// Record updates per user per day.
    pub updates_per_day: f64,
    /// Bytes per pushed update.
    pub update_size: u64,
}

impl Default for DdnsScenario {
    fn default() -> DdnsScenario {
        DdnsScenario {
            users: 100_000_000,
            interested_per_user: 1_000,
            relays_per_path: 5,
            updates_per_day: 2.0,
            update_size: 300,
        }
    }
}

impl DdnsScenario {
    /// Deliveries per day across the system: each update reaches every
    /// interested party once (the relay tree aggregates the distribution,
    /// so intermediate hops do not multiply delivered copies — this is the
    /// paper's arithmetic, which lands at ≈5.5 Gbps).
    pub fn messages_per_day(&self) -> f64 {
        self.users as f64 * self.updates_per_day * self.interested_per_user as f64
    }

    /// Hop-count-weighted transmissions per day: the same traffic counted
    /// at every relay hop (an upper bound on infrastructure load).
    pub fn hop_transmissions_per_day(&self) -> f64 {
        self.messages_per_day() * self.relays_per_path as f64
    }

    /// Global application-layer update traffic in bits per second — the
    /// paper's ≈5.5 Gbps figure.
    pub fn global_bps(&self) -> f64 {
        self.messages_per_day() * self.update_size as f64 * 8.0 / 86_400.0
    }
}

/// CDN load balancing via short-TTL records (paper §5.3, second scenario).
///
/// "Conservatively assuming that a stub resolver subscribes to 1,000
/// different domains and all domains are updated at the lowest observed
/// clustered TTL of 10 s with 300 B per update, we obtain a downstream
/// update traffic of 240 kbps."
#[derive(Debug, Clone, Copy)]
pub struct CdnScenario {
    /// Domains a stub resolver is subscribed to.
    pub subscribed_domains: u64,
    /// Update interval (the lowest observed clustered TTL).
    pub update_interval: Duration,
    /// Bytes per pushed update.
    pub update_size: u64,
}

impl Default for CdnScenario {
    fn default() -> CdnScenario {
        CdnScenario {
            subscribed_domains: 1_000,
            update_interval: Duration::from_secs(10),
            update_size: 300,
        }
    }
}

impl CdnScenario {
    /// Downstream update traffic at one stub, bits per second — the
    /// paper's 240 kbps figure.
    pub fn stub_downstream_bps(&self) -> f64 {
        self.subscribed_domains as f64 * self.update_size as f64 * 8.0
            / self.update_interval.as_secs_f64()
    }
}

/// Deep space DNS replication (paper §5.3, third scenario; TIPTOP WG).
#[derive(Debug, Clone, Copy)]
pub struct DeepSpaceScenario {
    /// One-way light delay to the remote site (Mars: ~3 to ~22 minutes).
    pub one_way_delay: Duration,
    /// Domains replicated to the remote resolver.
    pub replicated_domains: u64,
    /// Update rate cap after throttling high-churn (load-balancing) records
    /// (§5.3: "forwarding of records for domains observed to provide high
    /// update rates could be throttled").
    pub max_updates_per_domain_per_hour: f64,
    /// Bytes per pushed update.
    pub update_size: u64,
}

impl Default for DeepSpaceScenario {
    fn default() -> DeepSpaceScenario {
        DeepSpaceScenario {
            one_way_delay: Duration::from_secs(8 * 60), // Mars, mid-range
            replicated_domains: 10_000,
            max_updates_per_domain_per_hour: 1.0,
            update_size: 300,
        }
    }
}

impl DeepSpaceScenario {
    /// Lookup latency without replication: a classic recursive lookup needs
    /// at least one round trip to Earth.
    pub fn lookup_latency_unreplicated(&self) -> Duration {
        self.one_way_delay * 2
    }

    /// Lookup latency with pub/sub replication: the record is already on
    /// the remote resolver.
    pub fn lookup_latency_replicated(&self) -> Duration {
        Duration::ZERO
    }

    /// Throttled update traffic on the deep-space link, bits per second.
    pub fn link_bps(&self) -> f64 {
        self.replicated_domains as f64
            * self.max_updates_per_domain_per_hour
            * self.update_size as f64
            * 8.0
            / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddns_matches_paper_5_5_gbps() {
        let s = DdnsScenario::default();
        let gbps = s.global_bps() / 1e9;
        // 100e6 * 2 * 1000 * 5 * 300 B * 8 / 86400 s = 5.55… Gbps.
        assert!((5.0..6.0).contains(&gbps), "{gbps} Gbps");
        assert!((gbps - 5.555).abs() < 0.1);
    }

    #[test]
    fn cdn_matches_paper_240_kbps() {
        let s = CdnScenario::default();
        let kbps = s.stub_downstream_bps() / 1e3;
        // 1000 * 300 B * 8 / 10 s = 240 kbps exactly.
        assert!((kbps - 240.0).abs() < 1e-9, "{kbps} kbps");
    }

    #[test]
    fn deep_space_round_trip_vs_replicated() {
        let s = DeepSpaceScenario::default();
        assert_eq!(
            s.lookup_latency_unreplicated(),
            Duration::from_secs(16 * 60)
        );
        assert_eq!(s.lookup_latency_replicated(), Duration::ZERO);
        // Throttled updates keep the link load tiny.
        assert!(s.link_bps() < 10_000.0, "{} bps", s.link_bps());
    }

    #[test]
    fn scaling_behaviour() {
        let mut s = DdnsScenario::default();
        let base = s.global_bps();
        s.users *= 2;
        assert!(
            (s.global_bps() / base - 2.0).abs() < 1e-9,
            "linear in users"
        );
    }
}
