//! The §5.3 use-case parameter sets, with the paper's back-of-envelope
//! arithmetic reproduced exactly (experiments E6–E8), plus
//! [`TreeScenario`]: scaled-down versions of those worlds that run as
//! *simulated* multi-relay distribution trees instead of closed-form
//! arithmetic.

use std::time::Duration;

/// Dynamic DNS (paper §5.3, first scenario).
///
/// "Let us assume 100M users worldwide with 1,000 other users each
/// interested in their hosted services and involving 5 MoQ relays on
/// average. At two IP address updates per day and 300 B update size, this
/// would yield a globally distributed application layer update traffic of
/// some 5.5 Gbps."
#[derive(Debug, Clone, Copy)]
pub struct DdnsScenario {
    /// DDNS users hosting services.
    pub users: u64,
    /// Subscribers interested in each user's records.
    pub interested_per_user: u64,
    /// Average MoQ relays on each distribution path.
    pub relays_per_path: u64,
    /// Record updates per user per day.
    pub updates_per_day: f64,
    /// Bytes per pushed update.
    pub update_size: u64,
}

impl Default for DdnsScenario {
    fn default() -> DdnsScenario {
        DdnsScenario {
            users: 100_000_000,
            interested_per_user: 1_000,
            relays_per_path: 5,
            updates_per_day: 2.0,
            update_size: 300,
        }
    }
}

impl DdnsScenario {
    /// Deliveries per day across the system: each update reaches every
    /// interested party once (the relay tree aggregates the distribution,
    /// so intermediate hops do not multiply delivered copies — this is the
    /// paper's arithmetic, which lands at ≈5.5 Gbps).
    pub fn messages_per_day(&self) -> f64 {
        self.users as f64 * self.updates_per_day * self.interested_per_user as f64
    }

    /// Hop-count-weighted transmissions per day: the same traffic counted
    /// at every relay hop (an upper bound on infrastructure load).
    pub fn hop_transmissions_per_day(&self) -> f64 {
        self.messages_per_day() * self.relays_per_path as f64
    }

    /// Global application-layer update traffic in bits per second — the
    /// paper's ≈5.5 Gbps figure.
    pub fn global_bps(&self) -> f64 {
        self.messages_per_day() * self.update_size as f64 * 8.0 / 86_400.0
    }
}

/// CDN load balancing via short-TTL records (paper §5.3, second scenario).
///
/// "Conservatively assuming that a stub resolver subscribes to 1,000
/// different domains and all domains are updated at the lowest observed
/// clustered TTL of 10 s with 300 B per update, we obtain a downstream
/// update traffic of 240 kbps."
#[derive(Debug, Clone, Copy)]
pub struct CdnScenario {
    /// Domains a stub resolver is subscribed to.
    pub subscribed_domains: u64,
    /// Update interval (the lowest observed clustered TTL).
    pub update_interval: Duration,
    /// Bytes per pushed update.
    pub update_size: u64,
}

impl Default for CdnScenario {
    fn default() -> CdnScenario {
        CdnScenario {
            subscribed_domains: 1_000,
            update_interval: Duration::from_secs(10),
            update_size: 300,
        }
    }
}

impl CdnScenario {
    /// Downstream update traffic at one stub, bits per second — the
    /// paper's 240 kbps figure.
    pub fn stub_downstream_bps(&self) -> f64 {
        self.subscribed_domains as f64 * self.update_size as f64 * 8.0
            / self.update_interval.as_secs_f64()
    }
}

/// Deep space DNS replication (paper §5.3, third scenario; TIPTOP WG).
#[derive(Debug, Clone, Copy)]
pub struct DeepSpaceScenario {
    /// One-way light delay to the remote site (Mars: ~3 to ~22 minutes).
    pub one_way_delay: Duration,
    /// Domains replicated to the remote resolver.
    pub replicated_domains: u64,
    /// Update rate cap after throttling high-churn (load-balancing) records
    /// (§5.3: "forwarding of records for domains observed to provide high
    /// update rates could be throttled").
    pub max_updates_per_domain_per_hour: f64,
    /// Bytes per pushed update.
    pub update_size: u64,
}

impl Default for DeepSpaceScenario {
    fn default() -> DeepSpaceScenario {
        DeepSpaceScenario {
            one_way_delay: Duration::from_secs(8 * 60), // Mars, mid-range
            replicated_domains: 10_000,
            max_updates_per_domain_per_hour: 1.0,
            update_size: 300,
        }
    }
}

impl DeepSpaceScenario {
    /// Lookup latency without replication: a classic recursive lookup needs
    /// at least one round trip to Earth.
    pub fn lookup_latency_unreplicated(&self) -> Duration {
        self.one_way_delay * 2
    }

    /// Lookup latency with pub/sub replication: the record is already on
    /// the remote resolver.
    pub fn lookup_latency_replicated(&self) -> Duration {
        Duration::ZERO
    }

    /// Throttled update traffic on the deep-space link, bits per second.
    pub fn link_bps(&self) -> f64 {
        self.replicated_domains as f64
            * self.max_updates_per_domain_per_hour
            * self.update_size as f64
            * 8.0
            / 3600.0
    }
}

/// A scaled-down §5.3 world instantiated on a real 3-tier relay tree
/// (auth → tier-1 relays → edge relays → stubs) inside `netsim`.
///
/// The paper's 5.5 Gbps DDNS estimate and 240 kbps CDN estimate both rest
/// on one structural assumption: relays aggregate subscriptions, so an
/// update crosses each tree link **once** no matter how many subscribers
/// sit below it. This scenario type carries the tree shape and update
/// schedule; `moqdns-bench` builds the matching simulation and checks the
/// measured per-link traffic against [`TreeScenario::copies_per_link`]
/// (always 1) and the fan-out arithmetic below.
#[derive(Debug, Clone, Copy)]
pub struct TreeScenario {
    /// Scenario label ("ddns-tree", "cdn-tree", …).
    pub name: &'static str,
    /// Tier-1 relays attached to the authoritative server.
    pub tier1_relays: usize,
    /// Edge relays attached to each tier-1 relay.
    pub edges_per_tier1: usize,
    /// Stub subscribers attached to each edge relay.
    pub stubs_per_edge: usize,
    /// Distinct records (tracks); every stub subscribes to all of them.
    pub tracks: usize,
    /// Updates pushed per track during the measured window.
    pub updates_per_track: u64,
    /// Gap between update rounds.
    pub update_interval: Duration,
    /// One-way delay of every tree link.
    pub link_delay: Duration,
}

impl TreeScenario {
    /// DDNS flavour (§5.3 first scenario, scaled down): few records with
    /// a burst of address changes, fanned out through the tree.
    pub fn ddns_tree() -> TreeScenario {
        TreeScenario {
            name: "ddns-tree",
            tier1_relays: 2,
            edges_per_tier1: 2,
            stubs_per_edge: 16,
            tracks: 2,
            updates_per_track: 3,
            update_interval: Duration::from_secs(5),
            link_delay: Duration::from_millis(15),
        }
    }

    /// CDN flavour (§5.3 second scenario, scaled down): more records on a
    /// short-TTL update cadence.
    pub fn cdn_tree() -> TreeScenario {
        TreeScenario {
            name: "cdn-tree",
            tier1_relays: 2,
            edges_per_tier1: 2,
            stubs_per_edge: 8,
            tracks: 8,
            updates_per_track: 2,
            update_interval: Duration::from_secs(10),
            link_delay: Duration::from_millis(15),
        }
    }

    /// A tiny variant for CI smoke runs.
    pub fn smoke(self) -> TreeScenario {
        TreeScenario {
            stubs_per_edge: self.stubs_per_edge.min(2),
            tracks: self.tracks.min(2),
            updates_per_track: self.updates_per_track.min(2),
            ..self
        }
    }

    /// Total edge relays.
    pub fn edge_relays(&self) -> usize {
        self.tier1_relays * self.edges_per_tier1
    }

    /// Total relays across both tiers.
    pub fn relay_count(&self) -> usize {
        self.tier1_relays + self.edge_relays()
    }

    /// Total stub subscribers.
    pub fn stub_count(&self) -> usize {
        self.edge_relays() * self.stubs_per_edge
    }

    /// Updates pushed at the authoritative server over the whole run.
    pub fn total_updates(&self) -> u64 {
        self.updates_per_track * self.tracks as u64
    }

    /// §3 aggregation invariant: copies of one update crossing any single
    /// upstream (auth→tier1 or tier1→edge) link. Relays aggregate, so
    /// this is 1 — intermediate hops must not multiply delivered copies.
    pub fn copies_per_link(&self) -> u64 {
        1
    }

    /// Deliveries the run must produce: every stub sees every update of
    /// every track exactly once.
    pub fn expected_deliveries(&self) -> u64 {
        self.total_updates() * self.stub_count() as u64
    }

    /// Copies of one update a *naive* (relay-free) deployment would send
    /// from the authoritative server: one per stub. The tree sends
    /// [`TreeScenario::tier1_relays`] instead; the ratio is the paper's
    /// aggregation saving at the origin.
    pub fn origin_saving(&self) -> f64 {
        self.stub_count() as f64 / self.tier1_relays as f64
    }

    /// Update objects any single tier-1 relay forwards over the run:
    /// its share of the tracks' updates, one copy per attached edge relay.
    pub fn tier1_forwards(&self) -> u64 {
        self.total_updates() * self.edges_per_tier1 as u64
    }

    /// Update objects any single edge relay forwards over the run.
    pub fn edge_forwards(&self) -> u64 {
        self.total_updates() * self.stubs_per_edge as u64
    }
}

/// A multi-region hash-shard mesh instantiated on a real topology inside
/// `netsim`: origin → core relays (one shard each) → per-region edge
/// relays hash-sharding tracks across **all** cores → stubs.
///
/// Where [`TreeScenario`] pins the §3 one-copy-per-link invariant on a
/// tree, this scenario pins three more of the paper's assumptions:
///
/// 1. sharding preserves aggregation — each update still crosses each
///    upstream link at most once, summed per child exactly once;
/// 2. a joining-fetch stampede is *coalesced* — concurrent same-track
///    fetches produce one upstream fetch per relay per track, so the
///    origin sees `tracks` fetches, not `stubs × tracks`;
/// 3. shard recovery rebalances — killing a core re-routes its shard to
///    surviving cores (ring walk) with zero loss, and reviving it makes
///    every edge move the shard *back* with zero loss.
#[derive(Debug, Clone, Copy)]
pub struct MeshScenario {
    /// Scenario label.
    pub name: &'static str,
    /// Core relays (= hash shards) attached to the origin.
    pub cores: usize,
    /// Regions of edge relays.
    pub regions: usize,
    /// Edge relays per region (each attaches to all cores, aligned).
    pub edges_per_region: usize,
    /// Stub subscribers per edge relay.
    pub stubs_per_edge: usize,
    /// Distinct records (tracks); every stub subscribes to all of them.
    pub tracks: usize,
    /// Updates pushed per track during each measured round.
    pub updates_per_track: u64,
    /// Gap between update rounds.
    pub update_interval: Duration,
    /// One-way delay of every link.
    pub link_delay: Duration,
}

impl MeshScenario {
    /// The standing multi-region mesh drill.
    pub fn mesh() -> MeshScenario {
        MeshScenario {
            name: "mesh",
            cores: 3,
            regions: 3,
            edges_per_region: 2,
            stubs_per_edge: 8,
            tracks: 6,
            updates_per_track: 3,
            update_interval: Duration::from_secs(5),
            link_delay: Duration::from_millis(15),
        }
    }

    /// A tiny variant for CI smoke runs (shape preserved, volume shrunk).
    pub fn smoke(self) -> MeshScenario {
        MeshScenario {
            regions: self.regions.min(2),
            stubs_per_edge: self.stubs_per_edge.min(2),
            tracks: self.tracks.min(4),
            updates_per_track: self.updates_per_track.min(2),
            ..self
        }
    }

    /// Total edge relays across all regions.
    pub fn edge_count(&self) -> usize {
        self.regions * self.edges_per_region
    }

    /// Total stub subscribers.
    pub fn stub_count(&self) -> usize {
        self.edge_count() * self.stubs_per_edge
    }

    /// Updates pushed at the origin per round.
    pub fn total_updates(&self) -> u64 {
        self.updates_per_track * self.tracks as u64
    }

    /// Deliveries one update round must produce: every stub sees every
    /// update of every track exactly once.
    pub fn expected_deliveries(&self) -> u64 {
        self.total_updates() * self.stub_count() as u64
    }

    /// §3 aggregation under sharding: copies of one update crossing any
    /// single upstream link (origin→core, or the one core→edge link the
    /// track's shard selects). Always 1.
    pub fn copies_per_link(&self) -> u64 {
        1
    }

    /// Upstream fetches one edge relay may open under a joining-fetch
    /// stampede: one per track, however many stubs join at once.
    pub fn edge_fetch_bound(&self) -> u64 {
        self.tracks as u64
    }

    /// Upstream fetches the whole core tier may open under the stampede:
    /// one per track system-wide (each track has exactly one home core,
    /// which coalesces every edge's fetch).
    pub fn core_tier_fetch_bound(&self) -> u64 {
        self.tracks as u64
    }

    /// Fetches a naive (non-coalescing) deployment would escalate from
    /// the edge tier during the stampede: one per stub per track.
    pub fn naive_edge_fetches(&self) -> u64 {
        self.stub_count() as u64 * self.tracks as u64
    }
}

/// A cross-region **core federation** instantiated on a real topology:
/// origin → K regional cores (one hash shard each, full-mesh peer links
/// between them) → region-local edge relays → stubs.
///
/// Where [`MeshScenario`] lets every edge attach to every core (so shard
/// routing happens at the edges), a federation keeps edges *regional* —
/// each edge attaches only to its region's core — and moves the shard
/// routing into the core tier: a core serves tracks homed on a *peer*
/// core by subscribing/fetching over the peer link to that core, never
/// via the origin. The invariants this pins:
///
/// 1. **origin offload** — during a full-join stampede the origin sees
///    exactly one fetch per track (from its home core); every non-home
///    core fetches the track from its home peer exactly once, however
///    many regional edges stampede;
/// 2. **one copy per link under federation** — an update leaves the
///    origin once (to the home core) and crosses each home→peer core
///    link once, regardless of per-region subscriber counts;
/// 3. **origin independence** — after the origin dies, every
///    already-published track remains fully servable region-to-region
///    from the core tier's caches and peer subscriptions, with zero loss.
#[derive(Debug, Clone, Copy)]
pub struct FederationScenario {
    /// Scenario label.
    pub name: &'static str,
    /// Federated cores (= regions = hash shards).
    pub cores: usize,
    /// Edge relays per region (each attaches only to its region's core).
    pub edges_per_region: usize,
    /// Stub subscribers per edge relay.
    pub stubs_per_edge: usize,
    /// Distinct records (tracks); every stub subscribes to all of them.
    pub tracks: usize,
    /// Updates pushed per track during each measured round.
    pub updates_per_track: u64,
    /// Gap between update rounds.
    pub update_interval: Duration,
    /// One-way delay of intra-region links (core→edge, edge→stub).
    pub link_delay: Duration,
    /// One-way delay of inter-region links (origin→core, core↔core) —
    /// deliberately slower so the latency asymmetry shows in results.
    pub peer_delay: Duration,
}

impl FederationScenario {
    /// The standing cross-region federation drill.
    pub fn federation() -> FederationScenario {
        FederationScenario {
            name: "federation",
            cores: 3,
            edges_per_region: 2,
            stubs_per_edge: 4,
            tracks: 6,
            updates_per_track: 3,
            update_interval: Duration::from_secs(5),
            link_delay: Duration::from_millis(10),
            peer_delay: Duration::from_millis(40),
        }
    }

    /// A tiny variant for CI smoke runs (shape preserved, volume shrunk;
    /// the core count stays put so the shard map is unchanged).
    pub fn smoke(self) -> FederationScenario {
        FederationScenario {
            stubs_per_edge: self.stubs_per_edge.min(2),
            tracks: self.tracks.min(4),
            updates_per_track: self.updates_per_track.min(2),
            ..self
        }
    }

    /// Total edge relays across all regions.
    pub fn edge_count(&self) -> usize {
        self.cores * self.edges_per_region
    }

    /// Total stub subscribers.
    pub fn stub_count(&self) -> usize {
        self.edge_count() * self.stubs_per_edge
    }

    /// Updates pushed at the origin per round.
    pub fn total_updates(&self) -> u64 {
        self.updates_per_track * self.tracks as u64
    }

    /// Deliveries one update round must produce: every stub sees every
    /// update of every track exactly once.
    pub fn expected_deliveries(&self) -> u64 {
        self.total_updates() * self.stub_count() as u64
    }

    /// Peer fetches the whole core tier opens during the stampede: each
    /// of the K cores fetches every track *not* homed on it from the home
    /// peer, exactly once.
    pub fn peer_fetch_total(&self) -> u64 {
        (self.cores as u64 - 1) * self.tracks as u64
    }

    /// Fetches the origin sees during the stampede: one per track, from
    /// its home core only.
    pub fn origin_fetch_bound(&self) -> u64 {
        self.tracks as u64
    }

    /// Fetches the origin would see if the regional cores were *not*
    /// federated (every core escalates every regional miss): one per
    /// core per track.
    pub fn naive_origin_fetches(&self) -> u64 {
        self.cores as u64 * self.tracks as u64
    }

    /// Origin offload of the stampede as a percentage: the share of
    /// would-be origin fetches served core-to-core instead.
    pub fn offload_percent(&self) -> u64 {
        100 * self.peer_fetch_total() / self.naive_origin_fetches()
    }
}

/// A **metro-scale** cross-region federation: the [`FederationScenario`]
/// shape grown two orders of magnitude past anything else in the CI
/// matrix — 1 origin → K federated cores (full-mesh peer links, one hash
/// shard each) → K regions of region-local edges → **~10,000 stubs**
/// subscribing across **~64 tracks**.
///
/// At this scale no stub subscribes to *every* track (a metro population
/// doesn't): the track space is cut into `tracks / tracks_per_stub`
/// equal **slices** and stub `j` takes slice `(j / edge_count) %
/// slices`, so consecutive stubs under one edge walk all slices and
/// every edge still aggregates demand for the *full* track set
/// (guaranteed whenever `stubs_per_edge >= slices`, asserted at build).
/// That keeps every federation invariant meaningful at scale:
///
/// 1. **stampede coalescing** — ~10k stubs' joining fetches collapse to
///    exactly `tracks` upstream fetches per edge, `tracks` fetches at
///    the origin system-wide;
/// 2. **one copy per link** — an update still crosses origin→home-core
///    and each home→peer core link exactly once, with ~10k subscribers
///    below;
/// 3. **origin independence** — killing the origin leaves every
///    published track servable region-to-region, proven by cold edges +
///    stubs joining in every region with zero loss.
///
/// The scenario exists to measure the *simulator* as much as the
/// protocol: its full-size run is the wall-clock benchmark the sim
/// data-plane (zero-copy delivery, timing-wheel scheduler) is graded on.
#[derive(Debug, Clone, Copy)]
pub struct MetroScenario {
    /// Scenario label.
    pub name: &'static str,
    /// Federated cores (= regions = hash shards).
    pub cores: usize,
    /// Edge relays per region (each attaches only to its region's core).
    pub edges_per_region: usize,
    /// Stub subscribers per edge relay.
    pub stubs_per_edge: usize,
    /// Distinct records (tracks) across the whole metro.
    pub tracks: usize,
    /// Tracks each stub subscribes to (one contiguous slice).
    pub tracks_per_stub: usize,
    /// Updates pushed per track during each measured round.
    pub updates_per_track: u64,
    /// Gap between update rounds.
    pub update_interval: Duration,
    /// One-way delay of intra-region links (core→edge, edge→stub).
    pub link_delay: Duration,
    /// One-way delay of inter-region links (origin→core, core↔core).
    pub peer_delay: Duration,
}

impl MetroScenario {
    /// The standing metro drill: 3 regions × 4 edges × 833 stubs =
    /// 9,996 subscribers over 64 tracks (8 per stub).
    pub fn metro() -> MetroScenario {
        MetroScenario {
            name: "metro",
            cores: 3,
            edges_per_region: 4,
            stubs_per_edge: 833,
            tracks: 64,
            tracks_per_stub: 8,
            updates_per_track: 2,
            update_interval: Duration::from_secs(2),
            link_delay: Duration::from_millis(5),
            peer_delay: Duration::from_millis(30),
        }
    }

    /// A tiny variant for CI smoke runs: the federation shape and the
    /// slice machinery are preserved (cores and slice count stay put),
    /// only the population shrinks.
    pub fn smoke(self) -> MetroScenario {
        MetroScenario {
            edges_per_region: self.edges_per_region.min(2),
            stubs_per_edge: self.stubs_per_edge.min(8),
            tracks: self.tracks.min(16),
            tracks_per_stub: self.tracks_per_stub.min(2),
            ..self
        }
    }

    /// Distinct track slices (`tracks / tracks_per_stub`; the division
    /// must be exact).
    pub fn slices(&self) -> usize {
        assert!(
            self.tracks_per_stub > 0 && self.tracks.is_multiple_of(self.tracks_per_stub),
            "tracks_per_stub must divide tracks"
        );
        self.tracks / self.tracks_per_stub
    }

    /// The slice stub `j` (global index) subscribes to. Consecutive
    /// stubs under one edge (they sit `edge_count` apart in the global
    /// order) walk consecutive slices, so every edge sees every slice.
    pub fn slice_of_stub(&self, j: usize) -> usize {
        (j / self.edge_count()) % self.slices()
    }

    /// The track indices of slice `s`.
    pub fn slice_tracks(&self, s: usize) -> std::ops::Range<usize> {
        s * self.tracks_per_stub..(s + 1) * self.tracks_per_stub
    }

    /// Total edge relays across all regions.
    pub fn edge_count(&self) -> usize {
        self.cores * self.edges_per_region
    }

    /// Total stub subscribers.
    pub fn stub_count(&self) -> usize {
        self.edge_count() * self.stubs_per_edge
    }

    /// Total (stub, track) subscriptions — also the joining-fetch
    /// stampede size and the deliveries per update round.
    pub fn subscription_count(&self) -> u64 {
        self.stub_count() as u64 * self.tracks_per_stub as u64
    }

    /// Updates pushed at the origin per round.
    pub fn total_updates(&self) -> u64 {
        self.updates_per_track * self.tracks as u64
    }

    /// Deliveries the measured rounds must produce: every stub sees
    /// every update of every track it subscribes to, exactly once.
    pub fn expected_deliveries(&self) -> u64 {
        self.updates_per_track * self.subscription_count()
    }

    /// Upstream fetches one edge relay opens under the stampede: one per
    /// track (all slices are present under every edge), however many
    /// hundreds of stubs join at once.
    pub fn edge_fetch_bound(&self) -> u64 {
        self.tracks as u64
    }

    /// Fetches the origin sees during the stampede: one per track, from
    /// its home core only — the federation origin-offload invariant,
    /// unchanged at metro scale.
    pub fn origin_fetch_bound(&self) -> u64 {
        self.tracks as u64
    }

    /// The naive stampede the coalescing machinery absorbs: one fetch
    /// per (stub, track) subscription.
    pub fn naive_fetches(&self) -> u64 {
        self.subscription_count()
    }
}

/// A **planet-scale** federation: the [`MetroScenario`] shape grown one
/// more order of magnitude — dozens of regions, **~100,000 stubs** — with
/// two workload dimensions the metro deliberately leaves flat:
///
/// 1. **Zipf popularity** (from `workload::toplist`): the track space is
///    cut into slices as in the metro, but stub `j` picks its slice by a
///    Zipf quantile over track rank instead of a uniform walk, so slice 0
///    (the top-ranked records) holds the majority of subscribers and the
///    tail slices thin out — some edges never see them at all. Every
///    expectation is therefore *computed* from [`slice_of_stub`], never
///    assumed: the per-edge fetch bound sums the slices actually present
///    under each edge.
/// 2. **diurnal join/leave waves**: transient cohorts join every edge,
///    subscribe Zipf-popular slices, receive a round, and leave (their
///    connections close). The invariants: wave joining fetches are all
///    answered (zero loss from caches/aggregation), deliveries stay exact
///    for residents *and* waves, departed stubs receive nothing further,
///    and the edge tier's session state returns to its pre-wave size.
///
/// Everything is a pure function of the spec, so the scenario stays
/// machine-checkable at 100k scale and bit-identical between the
/// single-threaded and sharded ([`ParSim`]-backed) simulator builds.
///
/// [`slice_of_stub`]: PlanetScenario::slice_of_stub
/// [`ParSim`]: ../../moqdns_netsim/par/index.html
#[derive(Debug, Clone, Copy)]
pub struct PlanetScenario {
    /// Scenario label.
    pub name: &'static str,
    /// Federated cores (= regions = hash shards). "Dozens."
    pub cores: usize,
    /// Edge relays per region (each attaches only to its region's core).
    pub edges_per_region: usize,
    /// Resident stub subscribers per edge relay.
    pub stubs_per_edge: usize,
    /// Distinct records (tracks), rank-ordered: track 0 is the most
    /// popular (toplist rank 1).
    pub tracks: usize,
    /// Tracks each stub subscribes to (one contiguous rank slice).
    pub tracks_per_stub: usize,
    /// Zipf exponent for popularity (matches `Toplist::zipf_exponent`).
    pub zipf_s: f64,
    /// Diurnal waves: transient cohorts that join, stay a round, leave.
    pub waves: usize,
    /// Transient stubs each wave adds under every edge.
    pub wave_stubs_per_edge: usize,
    /// Updates pushed per track during each measured round.
    pub updates_per_track: u64,
    /// Gap between update rounds.
    pub update_interval: Duration,
    /// One-way delay of intra-region links (core→edge, edge→stub).
    pub link_delay: Duration,
    /// One-way delay of inter-region links (origin→core, core↔core).
    pub peer_delay: Duration,
}

impl PlanetScenario {
    /// The standing planet drill: 24 regions × 8 edges × 521 stubs =
    /// 100,032 resident subscribers over 96 tracks (8 per stub), plus
    /// 2 diurnal waves of 24×8×16 = 3,072 transient stubs each.
    pub fn planet() -> PlanetScenario {
        PlanetScenario {
            name: "planet",
            cores: 24,
            edges_per_region: 8,
            stubs_per_edge: 521,
            tracks: 96,
            tracks_per_stub: 8,
            zipf_s: 1.0,
            waves: 2,
            wave_stubs_per_edge: 16,
            updates_per_track: 2,
            update_interval: Duration::from_secs(2),
            link_delay: Duration::from_millis(5),
            peer_delay: Duration::from_millis(30),
        }
    }

    /// A tiny variant for CI smoke runs. The *shape* is the point and is
    /// preserved: still 24 regions (the planet's "dozens"), still 12
    /// slices, still 2 waves — only the population shrinks.
    pub fn smoke(self) -> PlanetScenario {
        PlanetScenario {
            edges_per_region: 1,
            stubs_per_edge: self.stubs_per_edge.min(12),
            tracks: self.tracks.min(24),
            tracks_per_stub: self.tracks_per_stub.min(2),
            wave_stubs_per_edge: self.wave_stubs_per_edge.min(2),
            ..self
        }
    }

    /// Distinct track slices (`tracks / tracks_per_stub`; exact).
    pub fn slices(&self) -> usize {
        assert!(
            self.tracks_per_stub > 0 && self.tracks.is_multiple_of(self.tracks_per_stub),
            "tracks_per_stub must divide tracks"
        );
        self.tracks / self.tracks_per_stub
    }

    /// The track indices of slice `s`.
    pub fn slice_tracks(&self, s: usize) -> std::ops::Range<usize> {
        s * self.tracks_per_stub..(s + 1) * self.tracks_per_stub
    }

    /// Cumulative Zipf weight per slice: `cum[s]` sums `1/rank^s` over
    /// every track of slices `0..=s` (track `t` has rank `t + 1`).
    fn slice_cum(&self) -> Vec<f64> {
        let mut cum = Vec::with_capacity(self.slices());
        let mut acc = 0.0;
        for s in 0..self.slices() {
            for t in self.slice_tracks(s) {
                acc += 1.0 / ((t + 1) as f64).powf(self.zipf_s);
            }
            cum.push(acc);
        }
        cum
    }

    /// The slice at popularity quantile `u ∈ [0, 1)`: low `u` lands on
    /// the head slices, which hold most of the Zipf mass.
    pub fn slice_at_quantile(&self, u: f64) -> usize {
        let cum = self.slice_cum();
        let total = *cum.last().expect("at least one slice");
        cum.partition_point(|w| *w <= u * total)
            .min(self.slices() - 1)
    }

    /// The slice resident stub `j` (global index) subscribes to: stubs
    /// are spread evenly over the popularity quantile axis, so slice
    /// populations follow the Zipf weights. A pure function of `j`, so
    /// every subscriber-count expectation below is computable.
    pub fn slice_of_stub(&self, j: usize) -> usize {
        self.slice_at_quantile((j as f64 + 0.5) / self.stub_count() as f64)
    }

    /// The slice the `i`-th transient stub of a wave subscribes to (the
    /// same per-edge cohort shape for every wave and edge).
    pub fn wave_slice_of(&self, i: usize) -> usize {
        self.slice_at_quantile((i as f64 + 0.5) / self.wave_stubs_per_edge as f64)
    }

    /// Total edge relays across all regions.
    pub fn edge_count(&self) -> usize {
        self.cores * self.edges_per_region
    }

    /// The region edge `j` serves (the builder wires edge `j`'s parent
    /// round-robin: core `j % cores`).
    pub fn region_of_edge(&self, j: usize) -> usize {
        j % self.cores
    }

    /// Total resident stub subscribers.
    pub fn stub_count(&self) -> usize {
        self.edge_count() * self.stubs_per_edge
    }

    /// Total resident (stub, track) subscriptions — the joining-fetch
    /// stampede size and the per-round resident delivery count.
    pub fn subscription_count(&self) -> u64 {
        self.stub_count() as u64 * self.tracks_per_stub as u64
    }

    /// Resident stubs subscribed to slice `s`.
    pub fn slice_population(&self, s: usize) -> usize {
        (0..self.stub_count())
            .filter(|&j| self.slice_of_stub(j) == s)
            .count()
    }

    /// Which slices are present under edge `e` (resident population):
    /// `present[s]` is true when some resident stub of edge `e`
    /// subscribes slice `s`. Zipf-tail slices are absent under many
    /// edges — that is the point.
    pub fn slices_under_edge(&self, e: usize) -> Vec<bool> {
        let mut present = vec![false; self.slices()];
        let ec = self.edge_count();
        for l in 0..self.stubs_per_edge {
            present[self.slice_of_stub(e + l * ec)] = true;
        }
        present
    }

    /// Which slices a wave cohort subscribes (identical for every edge).
    pub fn wave_slices(&self) -> Vec<bool> {
        let mut present = vec![false; self.slices()];
        for i in 0..self.wave_stubs_per_edge {
            present[self.wave_slice_of(i)] = true;
        }
        present
    }

    /// Which slices are demanded in region `r` (union over its edges).
    pub fn region_slices(&self, r: usize) -> Vec<bool> {
        let mut present = vec![false; self.slices()];
        for j in 0..self.edge_count() {
            if self.region_of_edge(j) == r {
                for (s, &p) in self.slices_under_edge(j).iter().enumerate() {
                    present[s] |= p;
                }
            }
        }
        present
    }

    /// Which tracks are demanded in region `r`.
    pub fn region_tracks(&self, r: usize) -> Vec<bool> {
        let mut present = vec![false; self.tracks];
        for (s, &p) in self.region_slices(r).iter().enumerate() {
            if p {
                for t in self.slice_tracks(s) {
                    present[t] = true;
                }
            }
        }
        present
    }

    /// Which tracks are demanded *anywhere* (some region wants them).
    pub fn demanded_tracks(&self) -> Vec<bool> {
        let mut present = vec![false; self.tracks];
        for r in 0..self.cores {
            for (t, &p) in self.region_tracks(r).iter().enumerate() {
                present[t] |= p;
            }
        }
        present
    }

    /// Upstream fetches the whole edge tier opens under the resident
    /// stampede: each edge fetches one per track of each slice actually
    /// present under it (coalescing makes it independent of population).
    pub fn edge_fetch_total(&self) -> u64 {
        (0..self.edge_count())
            .map(|e| {
                let n = self.slices_under_edge(e).iter().filter(|&&p| p).count();
                (n * self.tracks_per_stub) as u64
            })
            .sum()
    }

    /// Extra upstream fetches the edge tier opens when a wave joins:
    /// only slices the wave demands that the edge's residents do *not*
    /// cover need a fetch; everything else is served from the edge.
    pub fn wave_edge_fetch_delta(&self) -> u64 {
        let wave = self.wave_slices();
        (0..self.edge_count())
            .map(|e| {
                let under = self.slices_under_edge(e);
                let novel = wave.iter().zip(&under).filter(|&(&w, &u)| w && !u).count();
                (novel * self.tracks_per_stub) as u64
            })
            .sum()
    }

    /// Transient (stub, track) subscriptions one wave adds system-wide.
    pub fn wave_subscription_count(&self) -> u64 {
        (self.edge_count() * self.wave_stubs_per_edge * self.tracks_per_stub) as u64
    }

    /// Updates pushed at the origin per round.
    pub fn total_updates(&self) -> u64 {
        self.updates_per_track * self.tracks as u64
    }

    /// Resident deliveries the measured rounds must produce.
    pub fn expected_deliveries(&self) -> u64 {
        self.updates_per_track * self.subscription_count()
    }

    /// The naive stampede the coalescing machinery absorbs.
    pub fn naive_fetches(&self) -> u64 {
        self.subscription_count()
    }
}

/// The paper's depth-D relay chain ("involving 5 MoQ relays on average",
/// §5.3) as a standing drill: origin → `hops` single-relay tiers →
/// stubs, built by `TopoBuilder::chain`. Pins that aggregation holds at
/// *every* depth: one upstream fetch per track per hop under a joining
/// stampede, one copy of each update per hop link, complete delivery.
#[derive(Debug, Clone, Copy)]
pub struct ChainScenario {
    /// Scenario label.
    pub name: &'static str,
    /// Relay hops between origin and stubs.
    pub hops: usize,
    /// Stub subscribers attached to the last hop.
    pub stubs: usize,
    /// Distinct records (tracks); every stub subscribes to all of them.
    pub tracks: usize,
    /// Updates pushed per track during the measured window.
    pub updates_per_track: u64,
    /// One-way delay of every link.
    pub link_delay: Duration,
}

impl ChainScenario {
    /// The standing depth-5 chain (the paper's average path length).
    pub fn chain() -> ChainScenario {
        ChainScenario {
            name: "chain",
            hops: 5,
            stubs: 8,
            tracks: 4,
            updates_per_track: 3,
            link_delay: Duration::from_millis(10),
        }
    }

    /// A tiny variant for CI smoke runs — the depth is the point, so
    /// only the fan-in shrinks.
    pub fn smoke(self) -> ChainScenario {
        ChainScenario {
            stubs: self.stubs.min(3),
            tracks: self.tracks.min(2),
            updates_per_track: self.updates_per_track.min(2),
            ..self
        }
    }

    /// Updates pushed at the origin over the whole run.
    pub fn total_updates(&self) -> u64 {
        self.updates_per_track * self.tracks as u64
    }

    /// Deliveries the run must produce.
    pub fn expected_deliveries(&self) -> u64 {
        self.total_updates() * self.stubs as u64
    }

    /// §3 aggregation at depth: copies of one update crossing any single
    /// hop link. Always 1 — depth must not multiply copies.
    pub fn copies_per_link(&self) -> u64 {
        1
    }
}

/// The protocol-hardening drill (ISSUE 6): a small honest tree — origin →
/// core relay → edge relays → stubs — that must keep perfect delivery
/// while three attackers hang off one edge relay:
///
/// - a **byzantine** client feeding the edge garbage control bytes,
///   bogus-alias datagrams, and duplicate request ids (the session state
///   machine must poison + close, counting violations);
/// - a **slow-loris** subscriber that subscribes to every track and then
///   never drains (the per-session backlog bound must evict it);
/// - a **fetch bomber** stampeding cold tracks (the per-session fetch
///   budget must throttle and finally evict it).
///
/// The survival invariants the binary gates: honest stubs see every
/// update of every track (zero loss under attack), the attacked edge's
/// session state stays bounded (evictions actually reclaim), and each
/// attack leaves its fingerprint in the hardening counters
/// (`violations`, `dropped_datagrams`, `throttled_fetches`,
/// `evicted_sessions`) rather than in honest-path metrics.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialScenario {
    /// Scenario label.
    pub name: &'static str,
    /// Edge relays under the core (attackers target the first).
    pub edges: usize,
    /// Honest stub subscribers per edge relay.
    pub stubs_per_edge: usize,
    /// Distinct records (tracks); every honest stub subscribes to all.
    pub tracks: usize,
    /// Update rounds pushed per track during the attack window.
    pub updates_per_track: u64,
    /// Gap between update rounds.
    pub update_interval: Duration,
    /// One-way delay of every link.
    pub link_delay: Duration,
    /// Attack cadence (byzantine + fetch-bomb tick).
    pub attack_interval: Duration,
    /// Standalone cold-track FETCHes per fetch-bomb tick.
    pub fetch_burst: u32,
    /// Edge-relay limit: outstanding upstream fetches one session may
    /// hold before throttling.
    pub max_outstanding_fetches: u32,
    /// Edge-relay limit: throttles a session survives before eviction.
    pub evict_after_throttles: u32,
    /// Edge-relay bound on per-session unacked send backlog (bytes); a
    /// publish that finds the session above it evicts the session.
    pub session_backlog: usize,
}

impl AdversarialScenario {
    /// The standing hardening drill.
    pub fn adversarial() -> AdversarialScenario {
        AdversarialScenario {
            name: "adversarial",
            edges: 2,
            stubs_per_edge: 3,
            tracks: 8,
            updates_per_track: 8,
            update_interval: Duration::from_secs(2),
            link_delay: Duration::from_millis(10),
            attack_interval: Duration::from_millis(500),
            fetch_burst: 48,
            max_outstanding_fetches: 16,
            evict_after_throttles: 64,
            session_backlog: 4 * 1024,
        }
    }

    /// A tiny variant for CI smoke runs. The update-round count is NOT
    /// shrunk: the slow-loris eviction needs enough pushed-and-unacked
    /// updates to cross the backlog bound, so rounds are the shape here,
    /// not the volume.
    pub fn smoke(self) -> AdversarialScenario {
        AdversarialScenario {
            stubs_per_edge: self.stubs_per_edge.min(2),
            tracks: self.tracks.min(6),
            ..self
        }
    }

    /// Total honest stub subscribers.
    pub fn stub_count(&self) -> usize {
        self.edges * self.stubs_per_edge
    }

    /// Updates pushed at the origin over the attack window.
    pub fn total_updates(&self) -> u64 {
        self.updates_per_track * self.tracks as u64
    }

    /// Deliveries the honest population must see despite the attackers:
    /// every stub, every update, every track, exactly once.
    pub fn expected_deliveries(&self) -> u64 {
        self.total_updates() * self.stub_count() as u64
    }

    /// Throttles one fetch-bomb burst must produce once the budget is
    /// exhausted (burst size minus the outstanding allowance).
    pub fn throttles_per_burst(&self) -> u64 {
        self.fetch_burst
            .saturating_sub(self.max_outstanding_fetches) as u64
    }
}

/// The **chaos** drill: the metro-class federation world driven through
/// a composed, seeded fault plan — flap the busiest origin→core uplink
/// through an update round, partition one whole region, and
/// crash+restart an edge relay with a live subscriber cohort below it —
/// gating the recovery invariants the paper's always-on distribution
/// tree depends on:
///
/// 1. **zero honest post-recovery loss** — every update round pushed
///    before, during, or after a fault window is eventually delivered in
///    full (pushed objects ride reliable streams; flapped links
///    retransmit after healing, partitioned regions drain on reunion);
/// 2. **no duplicate delivery across a fault** — per-stub, per-track
///    version sequences never regress, across link flaps *and* across a
///    crash/redial/resubscribe cycle;
/// 3. **bounded redial storms** — disconnected subscribers re-attach
///    within a bounded number of dial attempts, and relay recovery
///    probes back off exponentially (capped) instead of hammering;
/// 4. **bounded state high-water** — relay session/state size returns to
///    its steady-state envelope once the faults heal (no leaked sessions
///    or subscriptions from the chaos).
///
/// The same plan replays bit-identically single-threaded and sharded
/// (`--par N`) — the fault plane applies at simulation barriers and all
/// loss draws are per-link deterministic (see `moqdns_netsim::faults`).
#[derive(Debug, Clone, Copy)]
pub struct ChaosScenario {
    /// Scenario label.
    pub name: &'static str,
    /// The underlying metro-class world.
    pub metro: MetroScenario,
    /// Subscribers on the crash-target edge (the redial cohort).
    pub chaos_stubs: usize,
    /// Idle timeout for the redial cohort: short, so a dial into a dead
    /// edge fails fast instead of probing into the void for an hour.
    pub stub_idle: Duration,
    /// Keep-alive interval for the redial cohort.
    pub stub_keep_alive: Duration,
    /// Redial cadence of the cohort after a lost connection.
    pub stub_redial: Duration,
    /// Length of the uplink flap window (covers an update round).
    pub flap_len: Duration,
    /// The region isolated by the partition drill.
    pub partition_region: usize,
    /// How long the partition holds (the paper-shaped drill: 10 s).
    pub partition_len: Duration,
    /// How long the crashed edge stays down before its restart.
    pub edge_downtime: Duration,
    /// Settle time after each fault heals before gating.
    pub settle: Duration,
    /// Seed for the fault plan's deterministic window jitter.
    pub fault_seed: u64,
}

impl ChaosScenario {
    /// The standing chaos drill on the metro world.
    pub fn chaos() -> ChaosScenario {
        ChaosScenario {
            name: "chaos",
            metro: MetroScenario::metro(),
            chaos_stubs: 8,
            stub_idle: Duration::from_secs(4),
            stub_keep_alive: Duration::from_secs(1),
            stub_redial: Duration::from_millis(500),
            flap_len: Duration::from_secs(3),
            partition_region: 1,
            partition_len: Duration::from_secs(10),
            edge_downtime: Duration::from_secs(12),
            settle: Duration::from_secs(5),
            fault_seed: 0xC4A05,
        }
    }

    /// The CI smoke variant: only the metro population shrinks — every
    /// fault window keeps its full length (the drill is about time
    /// constants, not volume).
    pub fn smoke(self) -> ChaosScenario {
        ChaosScenario {
            metro: self.metro.smoke(),
            ..self
        }
    }

    /// (stub, track) subscriptions held by the redial cohort — also the
    /// deliveries it must see per update round while attached.
    pub fn chaos_subscriptions(&self) -> u64 {
        self.chaos_stubs as u64 * self.metro.tracks_per_stub as u64
    }

    /// Upper bound on dial attempts per cohort stub across the whole
    /// run: the downtime divided by the fastest possible
    /// redial-and-time-out cycle, plus slack for the reconnect race.
    pub fn redials_per_stub_bound(&self) -> u64 {
        let cycle = (self.stub_idle + self.stub_redial).as_millis().max(1);
        (self.edge_downtime.as_millis() / cycle) as u64 + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_scenario_arithmetic() {
        let s = FederationScenario::federation();
        assert_eq!(s.edge_count(), 6);
        assert_eq!(s.stub_count(), 24);
        assert_eq!(s.total_updates(), 18);
        assert_eq!(s.expected_deliveries(), 18 * 24);
        // The offload headline: 18 naive origin fetches shrink to 6; the
        // other 12 are served core-to-core.
        assert_eq!(s.peer_fetch_total(), 12);
        assert_eq!(s.origin_fetch_bound(), 6);
        assert_eq!(s.naive_origin_fetches(), 18);
        assert_eq!(s.offload_percent(), 66);
    }

    #[test]
    fn federation_scenario_smoke_keeps_shards() {
        let s = FederationScenario::federation().smoke();
        assert!(s.stub_count() <= 12);
        assert!(s.total_updates() <= 8);
        assert_eq!(s.cores, 3, "shard map unchanged");
        assert!(s.peer_delay > s.link_delay, "asymmetry preserved");
    }

    #[test]
    fn metro_scenario_arithmetic() {
        let s = MetroScenario::metro();
        assert_eq!(s.edge_count(), 12);
        assert_eq!(s.stub_count(), 9_996, "~10k stubs");
        assert_eq!(s.slices(), 8);
        assert_eq!(s.subscription_count(), 9_996 * 8);
        assert_eq!(s.expected_deliveries(), 2 * 9_996 * 8);
        assert_eq!(s.edge_fetch_bound(), 64);
        assert_eq!(s.origin_fetch_bound(), 64);
        // The coalescing headline: ~80k naive joining fetches become 64
        // at the origin.
        assert_eq!(s.naive_fetches(), 79_968);
        // Every edge sees every slice: consecutive stubs under one edge
        // walk consecutive slices.
        assert!(s.stubs_per_edge >= s.slices());
        for e in 0..s.edge_count() {
            let mut seen = vec![false; s.slices()];
            for k in 0..s.slices() {
                seen[s.slice_of_stub(e + k * s.edge_count())] = true;
            }
            assert!(seen.iter().all(|&b| b), "edge {e} misses a slice");
        }
    }

    #[test]
    fn metro_scenario_smoke_keeps_shape() {
        let s = MetroScenario::metro().smoke();
        assert_eq!(s.cores, 3, "shard map unchanged");
        assert_eq!(s.slices(), 8, "slice machinery unchanged");
        assert!(s.stub_count() <= 48);
        assert!(
            s.stubs_per_edge >= s.slices(),
            "every edge sees every slice"
        );
        assert!(s.peer_delay > s.link_delay, "asymmetry preserved");
    }

    #[test]
    fn planet_scenario_arithmetic() {
        let s = PlanetScenario::planet();
        assert_eq!(s.edge_count(), 192);
        assert_eq!(s.stub_count(), 100_032, "~100k resident stubs");
        assert_eq!(s.slices(), 12);
        assert_eq!(s.subscription_count(), 100_032 * 8);
        assert_eq!(s.expected_deliveries(), 2 * 100_032 * 8);
        assert_eq!(s.wave_subscription_count(), 192 * 16 * 8);
        // Zipf skew: the head slice dwarfs the tail slice, and the
        // populations cover the whole resident population.
        let pops: Vec<usize> = (0..s.slices()).map(|x| s.slice_population(x)).collect();
        assert_eq!(pops.iter().sum::<usize>(), s.stub_count());
        assert!(
            pops[0] > 10 * pops[s.slices() - 1],
            "head {} vs tail {}",
            pops[0],
            pops[s.slices() - 1]
        );
        // Every slice has someone at full scale, so every track is
        // demanded somewhere.
        assert!(pops.iter().all(|&p| p > 0));
        assert!(s.demanded_tracks().iter().all(|&d| d));
        // At full scale the per-edge quantile grid (1/521 spacing) is
        // finer than the thinnest slice band, so every edge still covers
        // every slice and the fetch total hits the dense bound exactly.
        assert_eq!(s.edge_fetch_total(), (s.edge_count() * s.tracks) as u64);
    }

    #[test]
    fn planet_scenario_smoke_keeps_shape() {
        let s = PlanetScenario::planet().smoke();
        assert_eq!(s.cores, 24, "dozens of regions is the shape");
        assert_eq!(s.slices(), 12, "slice machinery unchanged");
        assert_eq!(s.waves, 2, "diurnal waves preserved");
        assert!(s.stub_count() <= 300);
        assert!(s.peer_delay > s.link_delay, "asymmetry preserved");
        // Quantile assignment stays total and in-range.
        for j in 0..s.stub_count() {
            assert!(s.slice_of_stub(j) < s.slices());
        }
        for i in 0..s.wave_stubs_per_edge {
            assert!(s.wave_slice_of(i) < s.slices());
        }
        // In the sparse smoke shape (12 stubs per edge, 8.3% quantile
        // spacing) Zipf-tail slices ARE absent under some edges — the
        // effect the planet exists to exercise.
        assert!(s.edge_fetch_total() < (s.edge_count() * s.tracks) as u64);
        // Yet system-wide every slice still has subscribers, so every
        // track is demanded somewhere.
        assert!((0..s.slices()).all(|x| s.slice_population(x) > 0));
        assert!(s.demanded_tracks().iter().all(|&d| d));
    }

    #[test]
    fn planet_quantiles_are_monotone_and_popular_heavy() {
        let s = PlanetScenario::planet();
        // Monotone: later quantiles never map to earlier slices.
        let mut last = 0;
        for k in 0..100 {
            let sl = s.slice_at_quantile(k as f64 / 100.0);
            assert!(sl >= last);
            last = sl;
        }
        // Popular-heavy: the median subscriber sits in the head slices.
        assert!(s.slice_at_quantile(0.5) < s.slices() / 2);
        // Wave cohorts lean on the head too but still reach past it.
        let wave = s.wave_slices();
        assert!(wave[0], "waves always demand the head slice");
    }

    #[test]
    fn chain_scenario_arithmetic() {
        let s = ChainScenario::chain();
        assert_eq!(s.hops, 5, "the paper's average path length");
        assert_eq!(s.total_updates(), 12);
        assert_eq!(s.expected_deliveries(), 96);
        assert_eq!(s.copies_per_link(), 1);
        let sm = s.smoke();
        assert_eq!(sm.hops, 5, "depth is the point of the drill");
        assert!(sm.expected_deliveries() <= 12);
    }

    #[test]
    fn mesh_scenario_arithmetic() {
        let s = MeshScenario::mesh();
        assert_eq!(s.edge_count(), 6);
        assert_eq!(s.stub_count(), 48);
        assert_eq!(s.total_updates(), 18);
        assert_eq!(s.expected_deliveries(), 18 * 48);
        assert_eq!(s.copies_per_link(), 1);
        // The stampede bound: 6 tracks -> 6 upstream fetches per edge and
        // 6 across the whole core tier, vs 288 naive edge escalations.
        assert_eq!(s.edge_fetch_bound(), 6);
        assert_eq!(s.core_tier_fetch_bound(), 6);
        assert_eq!(s.naive_edge_fetches(), 288);
    }

    #[test]
    fn mesh_scenario_smoke_shrinks() {
        let s = MeshScenario::mesh().smoke();
        assert!(s.stub_count() <= 8);
        assert!(s.total_updates() <= 8);
        // Shape is preserved — the shard count stays put.
        assert_eq!(s.cores, 3);
        assert_eq!(s.edges_per_region, 2);
    }

    #[test]
    fn tree_scenario_arithmetic() {
        let s = TreeScenario::ddns_tree();
        assert_eq!(s.edge_relays(), 4);
        assert_eq!(s.relay_count(), 6);
        assert_eq!(s.stub_count(), 64);
        assert_eq!(s.total_updates(), 6);
        assert_eq!(s.expected_deliveries(), 6 * 64);
        assert_eq!(s.copies_per_link(), 1);
        // Origin egress shrinks from 64 copies to 2 per update.
        assert!((s.origin_saving() - 32.0).abs() < 1e-9);
        // Per-relay forward arithmetic: each tier-1 serves 2 edges, each
        // edge serves 16 stubs.
        assert_eq!(s.tier1_forwards(), 12);
        assert_eq!(s.edge_forwards(), 96);
    }

    #[test]
    fn tree_scenario_smoke_shrinks() {
        let s = TreeScenario::cdn_tree().smoke();
        assert!(s.stub_count() <= 8);
        assert!(s.total_updates() <= 4);
        // Shape is preserved — only volume shrinks.
        assert_eq!(s.tier1_relays, 2);
        assert_eq!(s.edges_per_tier1, 2);
    }

    #[test]
    fn adversarial_scenario_arithmetic() {
        let s = AdversarialScenario::adversarial();
        assert_eq!(s.stub_count(), 6);
        assert_eq!(s.total_updates(), 64);
        assert_eq!(s.expected_deliveries(), 64 * 6);
        // Budget math: a 48-fetch burst against a 16-slot allowance
        // throttles 32 times per tick.
        assert_eq!(s.throttles_per_burst(), 32);
        assert!(
            s.fetch_burst > s.max_outstanding_fetches,
            "the bomb must actually exceed the budget"
        );
    }

    #[test]
    fn adversarial_scenario_smoke_keeps_attack_shape() {
        let s = AdversarialScenario::adversarial().smoke();
        assert!(s.stub_count() <= 4);
        // The limits, cadence, and round count survive the shrink — they
        // are what make the attacks trip their defenses.
        assert_eq!(s.updates_per_track, 8, "loris needs the full rounds");
        assert_eq!(s.fetch_burst, 48);
        assert_eq!(s.max_outstanding_fetches, 16);
        assert_eq!(s.session_backlog, 4 * 1024);
        assert!(s.throttles_per_burst() > 0);
    }

    #[test]
    fn ddns_matches_paper_5_5_gbps() {
        let s = DdnsScenario::default();
        let gbps = s.global_bps() / 1e9;
        // 100e6 * 2 * 1000 * 5 * 300 B * 8 / 86400 s = 5.55… Gbps.
        assert!((5.0..6.0).contains(&gbps), "{gbps} Gbps");
        assert!((gbps - 5.555).abs() < 0.1);
    }

    #[test]
    fn cdn_matches_paper_240_kbps() {
        let s = CdnScenario::default();
        let kbps = s.stub_downstream_bps() / 1e3;
        // 1000 * 300 B * 8 / 10 s = 240 kbps exactly.
        assert!((kbps - 240.0).abs() < 1e-9, "{kbps} kbps");
    }

    #[test]
    fn deep_space_round_trip_vs_replicated() {
        let s = DeepSpaceScenario::default();
        assert_eq!(
            s.lookup_latency_unreplicated(),
            Duration::from_secs(16 * 60)
        );
        assert_eq!(s.lookup_latency_replicated(), Duration::ZERO);
        // Throttled updates keep the link load tiny.
        assert!(s.link_bps() < 10_000.0, "{} bps", s.link_bps());
    }

    #[test]
    fn scaling_behaviour() {
        let mut s = DdnsScenario::default();
        let base = s.global_bps();
        s.users *= 2;
        assert!(
            (s.global_bps() / base - 2.0).abs() < 1e-9,
            "linear in users"
        );
    }
}
