//! Synthetic Tranco-like toplist (paper §2, Fig 1a counts).

use moqdns_dns::name::Name;
use moqdns_dns::rr::RecordType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fig 1a record counts for the top 10 000 domains.
pub const TOP_N: usize = 10_000;
/// Domains with an A record (8435/10 000).
pub const A_COUNT: usize = 8_435;
/// Domains with an AAAA record (2870/10 000).
pub const AAAA_COUNT: usize = 2_870;
/// Domains with an HTTPS record (1835/10 000).
pub const HTTPS_COUNT: usize = 1_835;

/// One toplist entry.
#[derive(Debug, Clone)]
pub struct ToplistDomain {
    /// Popularity rank (1 = most popular).
    pub rank: usize,
    /// The domain name.
    pub name: Name,
    /// Which record types this domain serves.
    pub has_a: bool,
    /// Serves AAAA.
    pub has_aaaa: bool,
    /// Serves HTTPS (RFC 9460).
    pub has_https: bool,
}

impl ToplistDomain {
    /// The record types present, in Fig 1a's order.
    pub fn types(&self) -> Vec<RecordType> {
        let mut v = Vec::new();
        if self.has_a {
            v.push(RecordType::A);
        }
        if self.has_aaaa {
            v.push(RecordType::AAAA);
        }
        if self.has_https {
            v.push(RecordType::HTTPS);
        }
        v
    }
}

/// A synthetic toplist with Zipf popularity.
#[derive(Debug, Clone)]
pub struct Toplist {
    domains: Vec<ToplistDomain>,
    /// Zipf exponent (s ≈ 1 matches web popularity well).
    zipf_s: f64,
    /// Cumulative Zipf weights for sampling.
    cum_weights: Vec<f64>,
}

impl Toplist {
    /// Generates a toplist of `n` domains seeded by `seed`. Record-type
    /// presence matches the Fig 1a proportions; AAAA/HTTPS presence skews
    /// toward popular domains (big sites deploy new record types first —
    /// consistent with the paper's HTTPS-uptake observation).
    pub fn generate(n: usize, seed: u64) -> Toplist {
        let mut rng = StdRng::seed_from_u64(seed);
        let p_a = A_COUNT as f64 / TOP_N as f64;
        let p_aaaa = AAAA_COUNT as f64 / TOP_N as f64;
        let p_https = HTTPS_COUNT as f64 / TOP_N as f64;
        let tlds = ["com", "net", "org", "io", "dev"];
        let mut domains = Vec::with_capacity(n);
        for rank in 1..=n {
            let tld = tlds[rng.random_range(0..tlds.len())];
            let name: Name = format!("site{rank:05}.{tld}").parse().expect("valid name");
            // Popularity bias: scale presence probability by rank position.
            let pop_boost = 1.5 - (rank as f64 / n as f64); // 1.5 → 0.5
            let has_a = rng.random::<f64>() < p_a;
            // AAAA/HTTPS exist only alongside A, so use the conditional
            // probability P(type | A) = p_type / p_a to hit Fig 1a's
            // unconditional counts.
            let has_aaaa = has_a && rng.random::<f64>() < (p_aaaa / p_a * pop_boost).min(1.0);
            let has_https = has_a && rng.random::<f64>() < (p_https / p_a * pop_boost).min(1.0);
            domains.push(ToplistDomain {
                rank,
                name,
                has_a,
                has_aaaa,
                has_https,
            });
        }
        let zipf_s = 1.0;
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(zipf_s);
            cum.push(acc);
        }
        Toplist {
            domains,
            zipf_s,
            cum_weights: cum,
        }
    }

    /// The Fig 1a-sized toplist (10 000 domains).
    pub fn top10k(seed: u64) -> Toplist {
        Toplist::generate(TOP_N, seed)
    }

    /// All domains, rank order.
    pub fn domains(&self) -> &[ToplistDomain] {
        &self.domains
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The Zipf exponent used for popularity sampling.
    pub fn zipf_exponent(&self) -> f64 {
        self.zipf_s
    }

    /// Counts of domains per record type — the Fig 1a bars.
    pub fn type_counts(&self) -> (usize, usize, usize) {
        let a = self.domains.iter().filter(|d| d.has_a).count();
        let aaaa = self.domains.iter().filter(|d| d.has_aaaa).count();
        let https = self.domains.iter().filter(|d| d.has_https).count();
        (a, aaaa, https)
    }

    /// Samples a domain index by Zipf popularity.
    pub fn sample_zipf(&self, rng: &mut StdRng) -> &ToplistDomain {
        let total = *self.cum_weights.last().expect("non-empty toplist");
        let x = rng.random::<f64>() * total;
        let idx = self.cum_weights.partition_point(|w| *w < x);
        &self.domains[idx.min(self.domains.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_fig1a_proportions() {
        let t = Toplist::top10k(1);
        let (a, aaaa, https) = t.type_counts();
        // Binomial sampling: within ±3σ of the published counts.
        assert!((a as i64 - A_COUNT as i64).abs() < 150, "A={a}");
        assert!((aaaa as i64 - AAAA_COUNT as i64).abs() < 200, "AAAA={aaaa}");
        assert!(
            (https as i64 - HTTPS_COUNT as i64).abs() < 200,
            "HTTPS={https}"
        );
        // Ordering from the paper: A >> AAAA > HTTPS.
        assert!(a > aaaa && aaaa > https);
    }

    #[test]
    fn aaaa_and_https_imply_a() {
        let t = Toplist::top10k(2);
        for d in t.domains() {
            if d.has_aaaa || d.has_https {
                assert!(d.has_a, "{}", d.name);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Toplist::generate(100, 7);
        let b = Toplist::generate(100, 7);
        for (x, y) in a.domains().iter().zip(b.domains()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.has_https, y.has_https);
        }
        let c = Toplist::generate(100, 8);
        let same = a
            .domains()
            .iter()
            .zip(c.domains())
            .all(|(x, y)| x.has_a == y.has_a && x.has_aaaa == y.has_aaaa);
        assert!(!same, "different seeds differ");
    }

    #[test]
    fn zipf_sampling_favours_low_ranks() {
        let t = Toplist::generate(1000, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let mut top10 = 0;
        const DRAWS: usize = 10_000;
        for _ in 0..DRAWS {
            if t.sample_zipf(&mut rng).rank <= 10 {
                top10 += 1;
            }
        }
        // Under Zipf(1, n=1000), ranks 1..10 hold ~39% of the mass.
        let frac = top10 as f64 / DRAWS as f64;
        assert!(frac > 0.3, "top-10 fraction {frac}");
    }

    #[test]
    fn names_parse_and_are_unique() {
        let t = Toplist::generate(500, 4);
        let mut seen = std::collections::HashSet::new();
        for d in t.domains() {
            assert!(seen.insert(d.name.clone()), "duplicate {}", d.name);
        }
    }
}
