//! TTL assignment (paper §2, Fig 1a).
//!
//! Observed TTLs "naturally cluster in the TTLs [20, 60, 300, 600, 1200,
//! 3600] s for A and AAAA records; notably, HTTPS records are observed
//! almost exclusively with a TTL of 300 s". The per-cluster weights below
//! are calibrated to reproduce the qualitative shape of Fig 1a: 300 s
//! dominating, meaningful mass at 20/60 s (CDN-style low TTLs), and a
//! long-TTL tail.

use moqdns_dns::rr::RecordType;
use rand::rngs::StdRng;
use rand::Rng;

/// The observed TTL clusters, seconds.
pub const TTL_CLUSTERS: [u32; 6] = [20, 60, 300, 600, 1200, 3600];

/// Per-type TTL distribution over [`TTL_CLUSTERS`].
#[derive(Debug, Clone)]
pub struct TtlModel {
    /// Weights per cluster for A records.
    pub a_weights: [f64; 6],
    /// Weights per cluster for AAAA records.
    pub aaaa_weights: [f64; 6],
    /// Weights per cluster for HTTPS records.
    pub https_weights: [f64; 6],
}

impl Default for TtlModel {
    fn default() -> TtlModel {
        TtlModel {
            // A: low-TTL mass from CDN-backed domains, 300 s default bulge,
            // long tail up to an hour.
            a_weights: [0.10, 0.15, 0.40, 0.12, 0.05, 0.18],
            // AAAA: similar shape (the paper observes the same clusters).
            aaaa_weights: [0.08, 0.13, 0.42, 0.13, 0.05, 0.19],
            // HTTPS: "almost exclusively" 300 s.
            https_weights: [0.005, 0.015, 0.95, 0.02, 0.005, 0.005],
        }
    }
}

impl TtlModel {
    fn weights_for(&self, t: RecordType) -> &[f64; 6] {
        match t {
            RecordType::AAAA => &self.aaaa_weights,
            RecordType::HTTPS => &self.https_weights,
            _ => &self.a_weights,
        }
    }

    /// Samples a TTL for a record of type `t`.
    pub fn sample(&self, t: RecordType, rng: &mut StdRng) -> u32 {
        let w = self.weights_for(t);
        let total: f64 = w.iter().sum();
        let mut x = rng.random::<f64>() * total;
        for (i, wi) in w.iter().enumerate() {
            if x < *wi {
                return TTL_CLUSTERS[i];
            }
            x -= wi;
        }
        *TTL_CLUSTERS.last().unwrap()
    }

    /// The probability of each cluster for type `t` (normalized weights).
    pub fn distribution(&self, t: RecordType) -> Vec<(u32, f64)> {
        let w = self.weights_for(t);
        let total: f64 = w.iter().sum();
        TTL_CLUSTERS
            .iter()
            .zip(w)
            .map(|(ttl, wi)| (*ttl, wi / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_many(t: RecordType, n: usize) -> Vec<u32> {
        let model = TtlModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        (0..n).map(|_| model.sample(t, &mut rng)).collect()
    }

    #[test]
    fn samples_stay_in_clusters() {
        for t in [RecordType::A, RecordType::AAAA, RecordType::HTTPS] {
            for ttl in sample_many(t, 1000) {
                assert!(TTL_CLUSTERS.contains(&ttl));
            }
        }
    }

    #[test]
    fn https_concentrates_at_300() {
        let samples = sample_many(RecordType::HTTPS, 2000);
        let at_300 = samples.iter().filter(|t| **t == 300).count();
        assert!(
            at_300 as f64 / samples.len() as f64 > 0.9,
            "HTTPS almost exclusively 300 s (paper §2)"
        );
    }

    #[test]
    fn a_records_have_dominant_300_and_low_ttl_mass() {
        let samples = sample_many(RecordType::A, 5000);
        let frac =
            |ttl: u32| samples.iter().filter(|t| **t == ttl).count() as f64 / samples.len() as f64;
        assert!(frac(300) > 0.3, "300 s is the biggest cluster");
        assert!(frac(20) + frac(60) > 0.15, "CDN-style low TTLs present");
        assert!(frac(3600) > 0.1, "long-TTL tail present");
    }

    #[test]
    fn distribution_normalizes() {
        let model = TtlModel::default();
        for t in [RecordType::A, RecordType::AAAA, RecordType::HTTPS] {
            let d = model.distribution(t);
            let total: f64 = d.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
