//! CDN load balancing (paper §1/§5.3): a CDN flips its A record every few
//! seconds to steer clients; classic resolvers serve stale copies for up
//! to a TTL, subscribed resolvers follow every flip.
//!
//!     cargo run --example cdn_load_balancing

use moqdns::core::recursive::UpstreamMode;
use moqdns::core::stub::{StubMode, StubResolver};
use moqdns_bench::worlds::{World, WorldSpec};
use std::time::Duration;

const TTL: u32 = 20; // the CDN cluster of Fig 1a's low-TTL mass
const FLIPS: u8 = 8;

fn run(moqt: bool) -> (usize, f64) {
    let spec = WorldSpec {
        seed: if moqt { 1 } else { 2 },
        mode: if moqt {
            UpstreamMode::Moqt
        } else {
            UpstreamMode::Classic
        },
        stub_mode: if moqt {
            StubMode::Moqt
        } else {
            StubMode::Classic
        },
        records: vec![("edge".into(), TTL)],
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    w.lookup(0, "edge", Duration::from_secs(5));

    // The CDN flips the record every 7 s; a classic client re-polls at the
    // TTL, a MoQT client just receives pushes.
    let mut seen_fresh = 0usize;
    let mut total_staleness = 0.0;
    for flip in 0..FLIPS {
        let change = w.update_record("edge", 100 + flip);
        if !moqt {
            // Classic: poll once per second until fresh (or the next flip).
            let target: moqdns::dns::rdata::RData =
                moqdns::dns::rdata::RData::A(std::net::Ipv4Addr::new(198, 51, 100, 100 + flip));
            let mut fresh_at = None;
            for _ in 0..7 {
                w.lookup(0, "edge", Duration::from_secs(1));
                let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
                if stub
                    .answer(&World::question("edge"))
                    .map(|a| a.iter().any(|r| r.rdata == target))
                    .unwrap_or(false)
                {
                    fresh_at = Some(w.sim.now());
                    break;
                }
            }
            if let Some(t) = fresh_at {
                seen_fresh += 1;
                total_staleness += (t - change).as_secs_f64();
            }
            // run out the rest of the flip interval
            let deadline = change + Duration::from_secs(7);
            w.sim.run_until(deadline);
        } else {
            let deadline = change + Duration::from_secs(7);
            w.sim.run_until(deadline);
            let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
            if let Some(u) = stub.metrics.updates.last() {
                if u.received >= change {
                    seen_fresh += 1;
                    total_staleness += (u.received - change).as_secs_f64();
                }
            }
        }
    }
    (seen_fresh, total_staleness / seen_fresh.max(1) as f64)
}

fn main() {
    println!("CDN flips edge.example.com every 7 s (TTL {TTL} s), {FLIPS} flips\n");
    let (classic_fresh, classic_stale) = run(false);
    let (moqt_fresh, moqt_stale) = run(true);
    println!(
        "classic DNS : followed {classic_fresh}/{FLIPS} flips, mean staleness {:.1} s",
        classic_stale
    );
    println!(
        "DNS over MoQT: followed {moqt_fresh}/{FLIPS} flips, mean staleness {:.3} s",
        moqt_stale
    );
    println!(
        "\nThe pub/sub resolver tracks every steering decision at push latency; \
         the classic one lags by up to a TTL and misses flips entirely when \
         they outpace it."
    );
}
