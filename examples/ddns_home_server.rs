//! Dynamic DNS (paper §1/§5.3): a home user's IP address changes; everyone
//! who cares learns about it at push latency through a MoQ relay, and the
//! update traffic is tiny.
//!
//!     cargo run --example ddns_home_server

use moqdns::core::auth::AuthServer;
use moqdns::core::mapping::{track_from_question, RequestFlags};
use moqdns::core::relay_node::RelayNode;
use moqdns::core::stack::{MoqtStack, StackEvent};
use moqdns::core::MOQT_PORT;
use moqdns::dns::message::Question;
use moqdns::dns::rdata::RData;
use moqdns::dns::rr::{Record, RecordType};
use moqdns::dns::server::Authority;
use moqdns::dns::zone::Zone;
use moqdns::moqt::session::SessionEvent;
use moqdns::netsim::{Addr, Ctx, LinkConfig, Node, Payload, SimTime, Simulator};
use moqdns::quic::TransportConfig;
use moqdns::stats::format_bps;
use moqdns::workload::scenarios::DdnsScenario;
use std::any::Any;
use std::net::Ipv4Addr;
use std::time::Duration;

/// A friend's device subscribed to the home server's record.
struct Friend {
    stack: MoqtStack,
    relay: Option<Addr>,
    question: Question,
    log: Vec<(SimTime, String)>,
}

impl Node for Friend {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let relay = self.relay.unwrap();
        let Some(h) = self.stack.connect(ctx.now(), relay, false) else {
            return;
        };
        let track = track_from_question(&self.question, RequestFlags::iterative()).unwrap();
        if let Some((sess, conn)) = self.stack.session_conn(h) {
            sess.subscribe_with_joining_fetch(conn, track, 1);
        }
        let evs = self.stack.flush(ctx);
        self.digest(evs, ctx.now());
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _p: u16, d: Payload) {
        let now = ctx.now();
        let evs = self.stack.on_datagram(ctx, from, &d);
        self.digest(evs, now);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let now = ctx.now();
        let evs = self.stack.on_timer(ctx);
        self.digest(evs, now);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

impl Friend {
    fn digest(&mut self, evs: Vec<StackEvent>, now: SimTime) {
        for e in evs {
            match e {
                StackEvent::Session(_, SessionEvent::FetchObjects { objects, .. }) => {
                    if let Some(o) = objects.first() {
                        if let Ok(m) = moqdns::core::response_from_object(o) {
                            self.log.push((now, format!("initial: {}", m.answers[0])));
                        }
                    }
                }
                StackEvent::Session(_, SessionEvent::SubscriptionObject { object, .. }) => {
                    if let Ok(m) = moqdns::core::response_from_object(&object) {
                        self.log.push((
                            now,
                            format!("update v{}: {}", object.group_id, m.answers[0]),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

fn main() {
    // The paper's back-of-envelope first.
    let s = DdnsScenario::default();
    println!(
        "paper estimate: {} users x {} interested x {} updates/day x {} B \
         => {} globally (\"negligible at global scale\")\n",
        s.users,
        s.interested_per_user,
        s.updates_per_day,
        s.update_size,
        format_bps(s.global_bps())
    );

    // Now the mechanics, at home scale: 1 home server, 1 relay, 5 friends.
    let mut sim = Simulator::new(42);
    sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(20)));

    let name: moqdns::dns::name::Name = "myhome.ddns.example".parse().unwrap();
    let mut zone = Zone::with_default_soa("ddns.example".parse().unwrap());
    zone.add_record(Record::new(
        name.clone(),
        60,
        RData::A(Ipv4Addr::new(203, 0, 113, 1)),
    ));
    let auth = sim.add_node(
        "ddns-anchor",
        Box::new(AuthServer::new(
            Authority::single(zone),
            TransportConfig::default(),
            1,
        )),
    );
    let relay = sim.add_node(
        "moq-relay",
        Box::new(RelayNode::new(Addr::new(auth, MOQT_PORT), 0, 2)),
    );
    let q = Question::new(name.clone(), RecordType::A);
    let friends: Vec<_> = (0..5)
        .map(|i| {
            sim.add_node(
                format!("friend{i}"),
                Box::new(Friend {
                    stack: MoqtStack::client(TransportConfig::default(), 10 + i),
                    relay: Some(Addr::new(relay, MOQT_PORT)),
                    question: q.clone(),
                    log: Vec::new(),
                }),
            )
        })
        .collect();
    sim.run_until(SimTime::from_secs(5));

    // The ISP renumbers the home connection twice today.
    for (i, ip) in [[203, 0, 113, 77], [203, 0, 113, 142]].iter().enumerate() {
        let at = sim.now() + Duration::from_secs(30 * (i as u64 + 1));
        let nm = name.clone();
        let ip = *ip;
        sim.schedule_at(at, move |sim| {
            println!(
                "[{}] home IP changed -> {}.{}.{}.{}",
                sim.now(),
                ip[0],
                ip[1],
                ip[2],
                ip[3]
            );
            sim.with_node::<AuthServer, _>(auth, |a, ctx| {
                a.update_zone(ctx, |authority| {
                    if let Some(z) = authority.find_zone_mut(&nm) {
                        z.set_records(
                            &nm,
                            RecordType::A,
                            vec![Record::new(nm.clone(), 60, RData::A(Ipv4Addr::from(ip)))],
                        );
                    }
                });
            });
        });
    }
    sim.run_until(SimTime::from_secs(120));

    println!("\nfriend0's view (through the relay):");
    for (t, line) in &sim.node_ref::<Friend>(friends[0]).log {
        println!("  [{t}] {line}");
    }
    let relay_ref = sim.node_ref::<RelayNode>(relay);
    println!(
        "\nrelay aggregation: {} downstream subscriptions -> 1 upstream (factor {:.0})",
        5,
        relay_ref.aggregation_factor()
    );
    let up = sim.stats().between(auth, relay).bytes;
    println!("anchor egress for 2 updates to 5 friends: {up} bytes (one copy per update)");
}
