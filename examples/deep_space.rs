//! Deep space DNS (paper §5.3, IETF TIPTOP): replicate records to Mars via
//! pub/sub so lookups don't pay interplanetary round trips.
//!
//!     cargo run --example deep_space

use moqdns::core::recursive::UpstreamMode;
use moqdns::core::stub::{StubMode, StubResolver};
use moqdns::netsim::LinkConfig;
use moqdns::quic::TransportConfig;
use moqdns::stats::format_duration;
use moqdns_bench::worlds::{World, WorldSpec};
use std::time::Duration;

const OWD: Duration = Duration::from_secs(8 * 60);

fn main() {
    println!(
        "Mars ↔ Earth one-way light delay: {}\n",
        format_duration(OWD.as_secs_f64())
    );

    let spec = WorldSpec {
        seed: 9,
        mode: UpstreamMode::Moqt,
        stub_mode: StubMode::Moqt,
        moqt_step_timeout: Some(Duration::from_secs(3 * 3600)),
        udp_rto: Some(Duration::from_secs(20 * 60)),
        auth_transport: Some(
            TransportConfig::default().idle_timeout(Duration::from_secs(24 * 3600)),
        ),
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    // Stub + recursive live on Mars; the hierarchy is on Earth.
    for earth in [w.root, w.tld, w.auth] {
        w.sim
            .set_link(w.recursive, earth, LinkConfig::with_delay(OWD));
    }

    println!("resolving www.example.com from Mars (cold, full chain)...");
    w.lookup(0, "www", Duration::from_secs(12 * 3600));
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    println!(
        "  first lookup : {} (pays interplanetary session setup per level)",
        format_duration(stub.metrics.lookups[0].latency().as_secs_f64())
    );

    w.lookup(0, "www", Duration::from_secs(60));
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    println!(
        "  second lookup: {} (record replicated on Mars)",
        format_duration(stub.metrics.lookups[1].latency().as_secs_f64())
    );

    let change = w.update_record("www", 123);
    w.sim.run_for(Duration::from_secs(2 * 3600));
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    let arrival = stub.metrics.updates.last().unwrap().received;
    println!(
        "  record update: pushed Earth → Mars in {} (one light delay)",
        format_duration((arrival - change).as_secs_f64())
    );
    println!(
        "\nActive replication is the only way a Mars resolver can be \"fresh\": \
         polling at any TTL would either hammer the link or serve stale data."
    );
}
