//! The same protocol stack over **real UDP sockets** — proof the sans-io
//! cores are a transport, not just a simulation artifact.
//!
//!     cargo run --example live_udp_loopback
//!
//! Starts a MoQT server endpoint and a client endpoint on 127.0.0.1,
//! performs the QUIC-like handshake, MoQT session setup, a SUBSCRIBE +
//! joining FETCH for a DNS question, and pushes one record update — all
//! over the loopback interface with wall-clock time. Then the crash
//! drill: the server's io thread is stopped *without* sending
//! CONNECTION_CLOSE (the in-process analog of `kill -9`), the client —
//! running a short idle timeout, §5.1's liveness contract — detects the
//! dead peer, and a fresh server on the same address serves the
//! reconnect's joining FETCH.
//!
//! This is the minimal single-socket demo wired by hand at the endpoint
//! layer. The **production path** is `moqdns-relayd` (`crates/relayd`):
//! the full `AuthServer`/`RelayNode` nodes over N `SO_REUSEPORT` socket
//! shards with worker threads, batched io, and a graceful SIGTERM drain —
//! plus `moqdns-loadgen` replaying the workload models against it (the
//! CI `live` job, `ci/live_smoke.sh`). The full-process version of the
//! crash drill — SIGKILL a relay daemon mid-run, restart it, gate that
//! every auto-redialing client reconverges — is `ci/live_chaos.sh`.

use moqdns::core::mapping::{
    object_from_response, question_from_track, track_from_question, RequestFlags,
};
use moqdns::dns::message::{Message, Question};
use moqdns::dns::rdata::RData;
use moqdns::dns::rr::{Record, RecordType};
use moqdns::moqt::session::{Session, SessionConfig, SessionEvent};
use moqdns::moqt::MOQT_ALPN;
use moqdns::quic::udp_driver::UdpDriver;
use moqdns::quic::{Endpoint, TransportConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- server ---
    let server_ep: Endpoint<SocketAddr> = Endpoint::server(
        TransportConfig::default(),
        moqdns_quic::alpn_list(&[MOQT_ALPN]),
        2,
    );
    let server = UdpDriver::start(server_ep, "127.0.0.1:0").expect("bind server");
    let server_addr = server.local_addr();
    println!("MoQT nameserver listening on {server_addr}");

    let sessions: Arc<Mutex<HashMap<u64, Session>>> = Arc::new(Mutex::new(HashMap::new()));

    // --- client ---
    // Short idle timeout: a SIGKILLed peer sends nothing, so this timer
    // *is* the crash detector (the keep-alive holds the timer off while
    // the peer is actually alive).
    let client_transport = TransportConfig::default()
        .idle_timeout(Duration::from_millis(600))
        .keep_alive(Duration::from_millis(200));
    let client_ep: Endpoint<SocketAddr> = Endpoint::client(client_transport, 1);
    let client = UdpDriver::start(client_ep, "127.0.0.1:0").expect("bind client");
    let question = Question::new("www.example.com".parse().unwrap(), RecordType::A);
    let track = track_from_question(&question, RequestFlags::recursive()).unwrap();

    // Connect + start the session.
    let (ch, mut client_session) = {
        let ep = client.endpoint();
        let mut ep = ep.lock();
        let now = client.now();
        let ch = ep.connect(
            now,
            server_addr,
            moqdns_quic::alpn_list(&[MOQT_ALPN]),
            false,
        );
        let mut session = Session::client(SessionConfig::default());
        session.start(ep.conn_mut(ch).unwrap());
        (ch, session)
    };

    // Event loops are just polling the shared endpoints; a real server
    // would own this, but 60 lines of example must stay readable.
    let serve = |sessions: &Arc<Mutex<HashMap<u64, Session>>>, server: &UdpDriver| {
        let ep = server.endpoint();
        let mut ep = ep.lock();
        while let Some(h) = ep.poll_incoming() {
            sessions
                .lock()
                .insert(h.0, Session::server(SessionConfig::default()));
        }
        let mut events = Vec::new();
        while let Some((h, ev)) = ep.poll_event() {
            events.push((h, ev));
        }
        for (h, ev) in events {
            let mut sess_map = sessions.lock();
            let (Some(session), Some(conn)) = (sess_map.get_mut(&h.0), ep.conn_mut(h)) else {
                continue;
            };
            session.on_conn_event(conn, &ev);
            while let Some(sev) = session.poll_event() {
                match sev {
                    SessionEvent::IncomingSubscribe { request_id, track } => {
                        let (q, _) = question_from_track(&track).unwrap();
                        println!("[server] SUBSCRIBE for {q}");
                        session.accept_subscribe(conn, request_id, Some((1, 0)));
                    }
                    SessionEvent::IncomingFetch { request_id, .. } => {
                        println!("[server] joining FETCH -> current record (v1)");
                        let mut resp = Message::response(Message::query(0, question.clone()));
                        resp.answers.push(Record::new(
                            question.qname.clone(),
                            300,
                            RData::A("192.0.2.1".parse().unwrap()),
                        ));
                        let obj = object_from_response(&resp, 1);
                        session.respond_fetch(conn, request_id, (1, 0), vec![obj]);
                    }
                    _ => {}
                }
            }
        }
    };

    // Wait for the lookup to complete on the client side.
    let mut got_initial = false;
    let mut got_push = false;
    let mut server_push_done = false;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !got_push && std::time::Instant::now() < deadline {
        serve(&sessions, &server);
        {
            let ep = client.endpoint();
            let mut ep = ep.lock();
            let mut events = Vec::new();
            while let Some((h, ev)) = ep.poll_event() {
                if h == ch {
                    events.push(ev);
                }
            }
            for ev in events {
                if let Some(conn) = ep.conn_mut(ch) {
                    client_session.on_conn_event(conn, &ev);
                }
            }
            if client_session.is_ready() && client_session.subscription_count() == 0 {
                if let Some(conn) = ep.conn_mut(ch) {
                    println!("[client] session ready; SUBSCRIBE + joining FETCH");
                    client_session.subscribe_with_joining_fetch(conn, track.clone(), 1);
                }
            }
            while let Some(sev) = client_session.poll_event() {
                match sev {
                    SessionEvent::FetchObjects { objects, .. } => {
                        let m = moqdns::core::response_from_object(&objects[0]).unwrap();
                        println!("[client] initial answer: {}", m.answers[0]);
                        got_initial = true;
                    }
                    SessionEvent::SubscriptionObject { object, .. } => {
                        let m = moqdns::core::response_from_object(&object).unwrap();
                        println!(
                            "[client] pushed update v{}: {}",
                            object.group_id, m.answers[0]
                        );
                        got_push = true;
                    }
                    _ => {}
                }
            }
        }
        // After the initial answer, the server pushes one update.
        if got_initial && !server_push_done {
            server_push_done = true;
            let ep = server.endpoint();
            let mut ep = ep.lock();
            let mut sess_map = sessions.lock();
            for (hraw, session) in sess_map.iter_mut() {
                if let Some(conn) = ep.conn_mut(moqdns::quic::ConnHandle(*hraw)) {
                    let mut resp = Message::response(Message::query(0, question.clone()));
                    resp.answers.push(Record::new(
                        question.qname.clone(),
                        300,
                        RData::A("192.0.2.99".parse().unwrap()),
                    ));
                    let obj = object_from_response(&resp, 2);
                    // Publish to every accepted peer subscription (id 0).
                    session.publish(conn, 0, obj);
                    println!("[server] record changed -> pushing v2");
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(got_push, "live loopback example timed out");
    println!("\nReal packets, real sockets, same state machines.");

    // --- crash drill: silent server death, detection, reconnect ---
    // `shutdown` stops the io thread without closing any connection — no
    // CONNECTION_CLOSE ever reaches the client, exactly like `kill -9`
    // on the relay daemon. The client's only signal is silence.
    println!("\n[chaos] killing the server (no CONNECTION_CLOSE sent)");
    server.shutdown();

    let detected = client.wait_for(Duration::from_secs(5), |ep| {
        while let Some((h, ev)) = ep.poll_event() {
            if let (true, moqdns::quic::Event::Closed { reason, .. }) = (h == ch, ev) {
                return Some(reason);
            }
        }
        None
    });
    let reason = detected.expect("client never noticed the dead server");
    println!("[client] peer declared dead: {reason}");

    // Restart on the same address — a brand-new process image: fresh
    // endpoint state, none of its predecessor's connections. The client
    // redials and replays the SUBSCRIBE + joining FETCH; the fetch is
    // what recovers the state published while the server was down.
    let server2_ep: Endpoint<SocketAddr> = Endpoint::server(
        TransportConfig::default(),
        moqdns_quic::alpn_list(&[MOQT_ALPN]),
        3,
    );
    let server2 = UdpDriver::start(server2_ep, &server_addr.to_string()).expect("rebind server");
    println!("[chaos] server restarted on {server_addr}");
    let sessions2: Arc<Mutex<HashMap<u64, Session>>> = Arc::new(Mutex::new(HashMap::new()));

    let (ch2, mut rejoin_session) = {
        let ep = client.endpoint();
        let mut ep = ep.lock();
        let now = client.now();
        let ch2 = ep.connect(
            now,
            server_addr,
            moqdns_quic::alpn_list(&[MOQT_ALPN]),
            false,
        );
        let mut session = Session::client(SessionConfig::default());
        session.start(ep.conn_mut(ch2).unwrap());
        (ch2, session)
    };

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        serve(&sessions2, &server2);
        let ep = client.endpoint();
        let mut ep = ep.lock();
        let mut events = Vec::new();
        while let Some((h, ev)) = ep.poll_event() {
            if h == ch2 {
                events.push(ev);
            }
        }
        for ev in events {
            if let Some(conn) = ep.conn_mut(ch2) {
                rejoin_session.on_conn_event(conn, &ev);
            }
        }
        if rejoin_session.is_ready() && rejoin_session.subscription_count() == 0 {
            if let Some(conn) = ep.conn_mut(ch2) {
                println!("[client] redialed; re-SUBSCRIBE + joining FETCH");
                rejoin_session.subscribe_with_joining_fetch(conn, track.clone(), 1);
            }
        }
        while let Some(sev) = rejoin_session.poll_event() {
            if let SessionEvent::FetchObjects { objects, .. } = sev {
                let m = moqdns::core::response_from_object(&objects[0]).unwrap();
                println!(
                    "[client] recovered answer from restarted server: {}",
                    m.answers[0]
                );
                println!("\nCrash, silence, detection, redial — recovery is part of the protocol.");
                return;
            }
        }
        drop(ep);
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("crash-recovery act timed out");
}
