//! Incremental deployment (paper §4.5 + §5): a traditional stub resolver
//! keeps speaking classic DNS to a local **forwarder**, which talks
//! DNS-over-MoQT to the recursive resolver — "thereby also enabling
//! backwards compatibility with traditional DNS stub resolvers".
//!
//!     cargo run --example mixed_deployment

use moqdns::core::auth::AuthServer;
use moqdns::core::forwarder::Forwarder;
use moqdns::core::recursive::{RecursiveConfig, RecursiveResolver, UpstreamMode};
use moqdns::core::{node_ip, DNS_PORT};
use moqdns::dns::message::{Message, Question};
use moqdns::dns::rdata::RData;
use moqdns::dns::resolver::RootHint;
use moqdns::dns::rr::{Record, RecordType};
use moqdns::dns::server::Authority;
use moqdns::dns::zone::Zone;
use moqdns::netsim::{Addr, Ctx, LinkConfig, Node, Payload, SimTime, Simulator};
use moqdns::quic::TransportConfig;
use std::any::Any;
use std::net::IpAddr;
use std::time::Duration;

/// A completely traditional DNS client: fires a UDP query, prints replies.
struct LegacyClient {
    forwarder: Option<Addr>,
    replies: Vec<(SimTime, Message)>,
}

impl Node for LegacyClient {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, _from: Addr, _p: u16, d: Payload) {
        if let Ok(m) = Message::decode(&d) {
            self.replies.push((ctx.now(), m));
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

impl LegacyClient {
    fn query(&self, ctx: &mut Ctx<'_>, id: u16, q: Question) {
        let msg = Message::query(id, q);
        ctx.send(
            5353,
            Addr::new(self.forwarder.unwrap().node, DNS_PORT),
            msg.encode(),
        );
    }
}

fn main() {
    let mut sim = Simulator::new(17);
    sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(10)));

    // One authoritative zone (doubling as the root for brevity).
    let name: moqdns::dns::name::Name = "www.example.com".parse().unwrap();
    let mut zone = Zone::with_default_soa("example.com".parse().unwrap());
    zone.add_record(Record::new(
        name.clone(),
        300,
        RData::A("192.0.2.1".parse().unwrap()),
    ));
    let auth = sim.add_node(
        "auth",
        Box::new(AuthServer::new(
            Authority::single(zone),
            TransportConfig::default(),
            1,
        )),
    );
    let roots = vec![RootHint {
        name: "ns1.example.com".parse().unwrap(),
        addr: IpAddr::V4(node_ip(auth)),
    }];
    let recursive = sim.add_node(
        "recursive",
        Box::new(RecursiveResolver::new(RecursiveConfig::new(
            UpstreamMode::Moqt,
            roots,
            2,
        ))),
    );
    // The forwarder runs "on the client's device".
    let forwarder = sim.add_node(
        "forwarder",
        Box::new(Forwarder::new(Addr::new(recursive, 0), 3)),
    );
    let client = sim.add_node(
        "legacy-client",
        Box::new(LegacyClient {
            forwarder: Some(Addr::new(forwarder, 0)),
            replies: Vec::new(),
        }),
    );
    // Client ↔ forwarder is on-device: instantaneous.
    sim.set_link(client, forwarder, LinkConfig::instant());
    sim.run_until_idle();

    // Plain UDP query from the legacy client.
    let q = Question::new(name.clone(), RecordType::A);
    let qq = q.clone();
    sim.with_node::<LegacyClient, _>(client, |c, ctx| c.query(ctx, 1, qq));
    sim.run_until(SimTime::from_secs(5));
    let c = sim.node_ref::<LegacyClient>(client);
    println!(
        "legacy query #1 answered: {} (forwarder went over MoQT and subscribed)",
        c.replies[0].1.answers[0]
    );

    // The record changes; the forwarder receives the push.
    sim.with_node::<AuthServer, _>(auth, |a, ctx| {
        a.update_zone(ctx, |authority| {
            if let Some(z) = authority.find_zone_mut(&name) {
                z.set_records(
                    &name,
                    RecordType::A,
                    vec![Record::new(
                        name.clone(),
                        300,
                        RData::A("192.0.2.200".parse().unwrap()),
                    )],
                );
            }
        });
    });
    sim.run_until(sim.now() + Duration::from_secs(2));

    // Second legacy query: answered instantly from the forwarder's pushed
    // state — the legacy client gets pub/sub freshness without changing.
    let qq = q.clone();
    sim.with_node::<LegacyClient, _>(client, |c, ctx| c.query(ctx, 2, qq));
    sim.run_until(sim.now() + Duration::from_secs(1));
    let c = sim.node_ref::<LegacyClient>(client);
    let (t2, r2) = &c.replies[1];
    let (t1, _) = &c.replies[0];
    let _ = t1;
    println!(
        "legacy query #2 answered: {} (fresh, served on-device at {t2})",
        r2.answers[0]
    );
    let f = sim.node_ref::<Forwarder>(forwarder);
    println!(
        "forwarder: {} upstream subscription(s), {} pushed update(s) absorbed",
        f.subscription_count(),
        f.metrics.updates.len()
    );
    println!(
        "\nThe client never spoke anything but classic DNS, yet its second \
         answer reflects a change no TTL had expired on."
    );
}
