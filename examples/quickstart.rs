//! Quickstart: the paper's Fig 2 lookup sequence plus an update push,
//! end to end, in one deterministic simulated world.
//!
//!     cargo run --example quickstart
//!
//! Builds root → TLD → authoritative servers, a recursive resolver and a
//! stub (all speaking DNS-over-MoQT), resolves `www.example.com`, then
//! changes the record at the authoritative server and watches the update
//! arrive at the stub without any new lookup.

use moqdns::core::auth::AuthServer;
use moqdns::core::stub::StubResolver;
use moqdns_bench::worlds::{World, WorldSpec};
use std::time::Duration;

fn main() {
    let spec = WorldSpec::default(); // MoQT everywhere, 10 ms links
    let mut world = World::build(&spec);
    println!("world: root, .com TLD, example.com auth, recursive, 1 stub\n");

    // 1. First lookup: QUIC + MoQT session + SUBSCRIBE/FETCH per Fig 2.
    world.lookup(0, "www", Duration::from_secs(5));
    let stub = world.sim.node_ref::<StubResolver>(world.stubs[0]);
    let lookup = &stub.metrics.lookups[0];
    println!(
        "first lookup : {:>8.1} ms  ok={} (subscribe + joining fetch through the chain)",
        lookup.latency().as_secs_f64() * 1e3,
        lookup.ok
    );
    let answer = stub.answer(&World::question("www")).unwrap();
    println!("answer       : {}", answer[0]);
    println!("subscriptions: {}", stub.subscription_count());

    // 2. Second lookup: answered locally — zero network round trips (§5.2).
    world.lookup(0, "www", Duration::from_secs(1));
    let stub = world.sim.node_ref::<StubResolver>(world.stubs[0]);
    println!(
        "\nsecond lookup: {:>8.1} ms  (answered from the live subscription)",
        stub.metrics.lookups[1].latency().as_secs_f64() * 1e3
    );

    // 3. The record changes at the authoritative server → pushed to the
    //    stub through the recursive resolver (§4.2).
    let change_time = world.update_record("www", 99);
    world.sim.run_for(Duration::from_secs(2));
    let stub = world.sim.node_ref::<StubResolver>(world.stubs[0]);
    let update = stub.metrics.updates.last().expect("update pushed");
    println!(
        "\nrecord update: pushed to the stub {:.1} ms after the zone changed",
        (update.received - change_time).as_secs_f64() * 1e3
    );
    println!(
        "new answer   : {}",
        stub.answer(&World::question("www")).unwrap()[0]
    );

    let auth = world.sim.node_ref::<AuthServer>(world.auth);
    println!(
        "\nauthoritative: {} subscription(s), {} update object(s) pushed",
        auth.subscription_count(),
        auth.stats.updates_pushed
    );
    println!("\nNo TTL was waited on. That is the paper's point.");
}
