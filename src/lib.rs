//! # moqdns — DNS over Media-over-QUIC Transport
//!
//! A complete, from-scratch implementation of the publish-subscribe DNS
//! variant proposed in *"From req/res to pub/sub: Exploring Media over
//! QUIC Transport for DNS"* (Engelbart, Kosek, Eggert, Ott — HotNets '25),
//! including every substrate it rides on:
//!
//! | layer | crate | what it is | perf notes (see `BENCH_PR1.json`) |
//! |---|---|---|---|
//! | facade | `moqdns` (this crate) | re-exports + examples + integration tests | — |
//! | contribution | [`core`] | DNS↔MoQT mapping, MoQT authoritative server, recursive resolver, stub, forwarder, relay node, teardown, fallback | `object_from_response` encodes once and patches the id bytes (2.0×); auth pushes encode once per track, shared across subscribers |
//! | pub/sub | [`moqt`] | MoQT (draft-ietf-moq-transport-12 subset): sessions, subscribe/fetch, objects, relays | relay fan-out clones payload *handles*, not bytes — publish is O(1) in subscriber count for bytes copied (1.86× at 256 subs); sessions reuse pooled encode buffers |
//! | transport | [`quic`] | sans-io QUIC-like transport: 1-RTT handshake, 0-RTT resumption, streams, recovery, datagrams | packets sized arithmetically and encoded once per transmit; datagram frames carry shared [`wire::Payload`] handles |
//! | naming | [`dns`] | DNS: wire format, zones + version numbers, caches, iterative resolution, classic UDP | cache is sharded with a heap expiry index + intrusive LRU: insert-at-capacity is O(log n), 6.6× faster at 4k entries |
//! | world | [`netsim`] | deterministic discrete-event network simulator | — |
//! | inputs | [`workload`] | synthetic toplist/TTL/churn models calibrated to the paper's Fig 1a/1b | — |
//! | output | [`stats`] | summaries, CDFs, tables | — |
//! | substrate | [`wire`] | varints, cursors, [`wire::Payload`] (Arc slice handles), [`wire::BufPool`] | `Payload::clone` is a refcount bump; `Writer::reuse` + pools make steady-state encodes allocation-free |
//!
//! ## Quickstart
//!
//! ```
//! use moqdns::core::auth::AuthServer;
//! use moqdns::core::stub::{StubMode, StubResolver};
//! use moqdns::core::recursive::{RecursiveConfig, RecursiveResolver, UpstreamMode};
//! use moqdns::core::node_ip;
//! use moqdns::dns::message::Question;
//! use moqdns::dns::rdata::RData;
//! use moqdns::dns::resolver::RootHint;
//! use moqdns::dns::rr::{Record, RecordType};
//! use moqdns::dns::server::Authority;
//! use moqdns::dns::zone::Zone;
//! use moqdns::netsim::{Addr, NodeId, Simulator};
//! use moqdns::quic::TransportConfig;
//! use std::net::IpAddr;
//! use std::time::Duration;
//!
//! // A one-zone world: an authoritative server, a resolver, a stub.
//! let mut sim = Simulator::new(7);
//! let mut zone = Zone::with_default_soa("example.com".parse().unwrap());
//! zone.add_record(Record::new(
//!     "www.example.com".parse().unwrap(),
//!     300,
//!     RData::A("192.0.2.1".parse().unwrap()),
//! ));
//! let auth = sim.add_node(
//!     "auth",
//!     Box::new(AuthServer::new(Authority::single(zone), TransportConfig::default(), 1)),
//! );
//! let roots = vec![RootHint {
//!     name: "ns1.example.com".parse().unwrap(),
//!     addr: IpAddr::V4(node_ip(auth)),
//! }];
//! let recursive = sim.add_node(
//!     "recursive",
//!     Box::new(RecursiveResolver::new(RecursiveConfig::new(UpstreamMode::Moqt, roots, 2))),
//! );
//! let stub = sim.add_node(
//!     "stub",
//!     Box::new(StubResolver::new(StubMode::Moqt, Addr::new(recursive, 0), 3)),
//! );
//! sim.run_until_idle();
//!
//! // Look up www.example.com over MoQT (subscribe + joining fetch).
//! let q = Question::new("www.example.com".parse().unwrap(), RecordType::A);
//! sim.with_node::<StubResolver, _>(stub, |s, ctx| s.lookup(ctx, q.clone()));
//! sim.run_for(Duration::from_secs(5));
//!
//! let s = sim.node_ref::<StubResolver>(stub);
//! assert!(s.metrics.lookups[0].ok);
//! assert_eq!(s.subscription_count(), 1, "subscribed for future updates");
//! ```

pub use moqdns_core as core;
pub use moqdns_dns as dns;
pub use moqdns_moqt as moqt;
pub use moqdns_netsim as netsim;
pub use moqdns_quic as quic;
pub use moqdns_stats as stats;
pub use moqdns_wire as wire;
pub use moqdns_workload as workload;
