//! Workspace integration tests: cross-crate behaviours that no single
//! crate's tests can cover — the forwarder chain, teardown + resubscribe,
//! poll-proxy fallback, loss resilience, and reconnection with 0-RTT.

use moqdns::core::auth::AuthServer;
use moqdns::core::forwarder::Forwarder;
use moqdns::core::recursive::{RecursiveConfig, RecursiveResolver, UpstreamMode};
use moqdns::core::stub::{StubMode, StubResolver};
use moqdns::core::teardown::TeardownPolicy;
use moqdns::core::{node_ip, DNS_PORT};
use moqdns::dns::message::{Message, Question};
use moqdns::dns::rdata::RData;
use moqdns::dns::resolver::RootHint;
use moqdns::dns::rr::{Record, RecordType};
use moqdns::dns::server::Authority;
use moqdns::dns::zone::Zone;
use moqdns::netsim::{Addr, Ctx, LinkConfig, Node, Payload, Simulator};
use moqdns::quic::TransportConfig;
use moqdns_bench::worlds::{World, WorldSpec};
use std::any::Any;
use std::net::IpAddr;
use std::time::Duration;

fn question(host: &str) -> Question {
    Question::new(
        format!("{host}.example.com").parse().unwrap(),
        RecordType::A,
    )
}

#[test]
fn forwarder_bridges_legacy_clients_into_pubsub() {
    // Classic client → forwarder → recursive (MoQT) → hierarchy.
    let mut sim = Simulator::new(3);
    sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(10)));

    let name: moqdns::dns::name::Name = "www.example.com".parse().unwrap();
    let mut zone = Zone::with_default_soa("example.com".parse().unwrap());
    zone.add_record(Record::new(
        name.clone(),
        300,
        RData::A("192.0.2.1".parse().unwrap()),
    ));
    let auth = sim.add_node(
        "auth",
        Box::new(AuthServer::new(
            Authority::single(zone),
            TransportConfig::default(),
            1,
        )),
    );
    let roots = vec![RootHint {
        name: "ns1.example.com".parse().unwrap(),
        addr: IpAddr::V4(node_ip(auth)),
    }];
    let recursive = sim.add_node(
        "recursive",
        Box::new(RecursiveResolver::new(RecursiveConfig::new(
            UpstreamMode::Moqt,
            roots,
            2,
        ))),
    );
    let forwarder = sim.add_node(
        "forwarder",
        Box::new(Forwarder::new(Addr::new(recursive, 0), 3)),
    );

    /// A bare UDP client.
    struct Client {
        replies: Vec<Message>,
    }
    impl Node for Client {
        fn on_datagram(&mut self, _c: &mut Ctx<'_>, _f: Addr, _p: u16, d: Payload) {
            if let Ok(m) = Message::decode(&d) {
                self.replies.push(m);
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }
    let client = sim.add_node("client", Box::new(Client { replies: vec![] }));
    sim.run_until_idle();

    let q = Message::query(7, Question::new(name.clone(), RecordType::A));
    sim.with_node::<Client, _>(client, |_, ctx| {
        ctx.send(5353, Addr::new(forwarder, DNS_PORT), q.encode());
    });
    sim.run_for(Duration::from_secs(5));
    {
        let c = sim.node_ref::<Client>(client);
        assert_eq!(c.replies.len(), 1);
        assert_eq!(c.replies[0].header.id, 7);
        assert_eq!(
            c.replies[0].answers[0].rdata,
            RData::A("192.0.2.1".parse().unwrap())
        );
    }

    // Update the record; the forwarder absorbs the push; a second classic
    // query is answered fresh, on-device, with the new address.
    sim.with_node::<AuthServer, _>(auth, |a, ctx| {
        a.update_zone(ctx, |authority| {
            if let Some(z) = authority.find_zone_mut(&name) {
                z.set_records(
                    &name,
                    RecordType::A,
                    vec![Record::new(
                        name.clone(),
                        300,
                        RData::A("192.0.2.77".parse().unwrap()),
                    )],
                );
            }
        });
    });
    sim.run_for(Duration::from_secs(2));
    let q2 = Message::query(8, Question::new(name.clone(), RecordType::A));
    sim.with_node::<Client, _>(client, |_, ctx| {
        ctx.send(5353, Addr::new(forwarder, DNS_PORT), q2.encode());
    });
    sim.run_for(Duration::from_secs(2));
    let c = sim.node_ref::<Client>(client);
    assert_eq!(c.replies.len(), 2);
    assert_eq!(
        c.replies[1].answers[0].rdata,
        RData::A("192.0.2.77".parse().unwrap()),
        "legacy client sees the pushed update without any TTL expiry"
    );
}

#[test]
fn forwarder_propagates_client_header_flags() {
    // RFC 1035 §4.1.1: the forwarder must carry the client's RD (and
    // OPCODE/CD) upstream — RD is part of the Fig 3 namespace byte, so
    // rd=0 and rd=1 queries must land on *different* tracks — and echo
    // the client's RD with RA set in responses.
    let mut sim = Simulator::new(31);
    sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(10)));

    let name: moqdns::dns::name::Name = "www.example.com".parse().unwrap();
    let mut zone = Zone::with_default_soa("example.com".parse().unwrap());
    zone.add_record(Record::new(
        name.clone(),
        300,
        RData::A("192.0.2.1".parse().unwrap()),
    ));
    let auth = sim.add_node(
        "auth",
        Box::new(AuthServer::new(
            Authority::single(zone),
            TransportConfig::default(),
            1,
        )),
    );
    let roots = vec![RootHint {
        name: "ns1.example.com".parse().unwrap(),
        addr: IpAddr::V4(node_ip(auth)),
    }];
    let recursive = sim.add_node(
        "recursive",
        Box::new(RecursiveResolver::new(RecursiveConfig::new(
            UpstreamMode::Moqt,
            roots,
            2,
        ))),
    );
    let forwarder = sim.add_node(
        "forwarder",
        Box::new(Forwarder::new(Addr::new(recursive, 0), 3)),
    );

    struct Client {
        replies: Vec<Message>,
    }
    impl Node for Client {
        fn on_datagram(&mut self, _c: &mut Ctx<'_>, _f: Addr, _p: u16, d: Payload) {
            if let Ok(m) = Message::decode(&d) {
                self.replies.push(m);
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }
    let client = sim.add_node("client", Box::new(Client { replies: vec![] }));
    sim.run_until_idle();

    // rd=1 then rd=0 for the same question.
    let q_rd = Message::query(7, Question::new(name.clone(), RecordType::A));
    let mut q_nord = Message::query(8, Question::new(name.clone(), RecordType::A));
    q_nord.header.rd = false;
    sim.with_node::<Client, _>(client, |_, ctx| {
        ctx.send(5353, Addr::new(forwarder, DNS_PORT), q_rd.encode());
    });
    sim.run_for(Duration::from_secs(5));
    sim.with_node::<Client, _>(client, |_, ctx| {
        ctx.send(5353, Addr::new(forwarder, DNS_PORT), q_nord.encode());
    });
    sim.run_for(Duration::from_secs(5));

    {
        let c = sim.node_ref::<Client>(client);
        assert_eq!(c.replies.len(), 2);
        let rd_reply = c.replies.iter().find(|m| m.header.id == 7).unwrap();
        let nord_reply = c.replies.iter().find(|m| m.header.id == 8).unwrap();
        assert!(rd_reply.header.rd, "rd=1 echoed");
        assert!(!nord_reply.header.rd, "rd=0 echoed, not forced to 1");
        assert!(rd_reply.header.ra && nord_reply.header.ra, "RA set");
    }
    // Distinct tracks → two upstream subscriptions at the forwarder.
    assert_eq!(
        sim.node_ref::<Forwarder>(forwarder).subscription_count(),
        2,
        "rd=0 and rd=1 map onto different tracks"
    );

    // Non-QUERY opcodes are answered NOTIMP, not silently forwarded.
    let mut notify = Message::query(9, Question::new(name.clone(), RecordType::A));
    notify.header.opcode = moqdns::dns::message::Opcode::Notify;
    sim.with_node::<Client, _>(client, |_, ctx| {
        ctx.send(5353, Addr::new(forwarder, DNS_PORT), notify.encode());
    });
    sim.run_for(Duration::from_secs(2));
    let c = sim.node_ref::<Client>(client);
    let notimp = c.replies.iter().find(|m| m.header.id == 9).unwrap();
    assert_eq!(notimp.header.rcode, moqdns::dns::message::Rcode::NotImp);
}

#[test]
fn teardown_then_resubscribe_on_next_lookup() {
    let spec = WorldSpec {
        seed: 11,
        stub_policy: TeardownPolicy::IdleTimeout(Duration::from_secs(60)),
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    w.lookup(0, "www", Duration::from_secs(5));
    assert_eq!(
        w.sim
            .node_ref::<StubResolver>(w.stubs[0])
            .subscription_count(),
        1
    );
    // Idle long enough for the sweep to tear the subscription down (§4.4).
    w.sim.run_for(Duration::from_secs(180));
    assert_eq!(
        w.sim
            .node_ref::<StubResolver>(w.stubs[0])
            .subscription_count(),
        0,
        "idle subscription torn down"
    );
    // The next lookup transparently re-subscribes.
    w.lookup(0, "www", Duration::from_secs(5));
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    assert_eq!(stub.subscription_count(), 1, "re-established");
    assert!(stub.metrics.lookups.iter().all(|l| l.ok));
}

#[test]
fn poll_proxy_synthesizes_updates_for_subscribers() {
    // The recursive uses classic upstream but poll-proxies at the TTL
    // (§4.5 last paragraph): stub subscriptions still receive updates.
    let spec = WorldSpec {
        seed: 13,
        mode: UpstreamMode::Classic,
        stub_mode: StubMode::Moqt,
        poll_proxy: true,
        records: vec![("www".into(), 20)],
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    w.lookup(0, "www", Duration::from_secs(5));
    assert_eq!(
        w.sim
            .node_ref::<StubResolver>(w.stubs[0])
            .subscription_count(),
        1,
        "poll-proxy mode accepts the subscription"
    );
    // Change the record; within ~a TTL the poll notices and pushes.
    w.update_record("www", 99);
    w.sim.run_for(Duration::from_secs(60));
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    assert!(
        !stub.metrics.updates.is_empty(),
        "synthesized update pushed to the stub"
    );
    let ans = stub.answer(&question("www")).unwrap();
    assert_eq!(ans[0].rdata, RData::A("198.51.100.99".parse().unwrap()));
}

#[test]
fn pushes_survive_a_lossy_last_mile() {
    let spec = WorldSpec {
        seed: 17,
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    // 20% loss between stub and recursive.
    let lossy = LinkConfig::with_delay(Duration::from_millis(10)).loss(0.2);
    w.sim.set_link(w.stubs[0], w.recursive, lossy);
    w.lookup(0, "www", Duration::from_secs(20));
    for i in 0..10u8 {
        w.update_record("www", 50 + i);
        w.sim.run_for(Duration::from_secs(15));
    }
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    // Streams + QUIC recovery: every version eventually arrives.
    assert!(
        stub.metrics.updates.len() >= 10,
        "all {} updates delivered despite loss (got {})",
        10,
        stub.metrics.updates.len()
    );
    let ans = stub.answer(&question("www")).unwrap();
    assert_eq!(ans[0].rdata, RData::A("198.51.100.59".parse().unwrap()));
}

#[test]
fn suspension_reconnect_uses_ticket() {
    let spec = WorldSpec {
        seed: 19,
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    w.lookup(0, "www", Duration::from_secs(5));
    let first_latency = w.sim.node_ref::<StubResolver>(w.stubs[0]).metrics.lookups[0].latency();

    // Device suspends (§4.4): connection state vanishes silently.
    let stub_id = w.stubs[0];
    w.sim.with_node::<StubResolver, _>(stub_id, |s, _| {
        s.debug_drop_connection();
        s.debug_forget_subscriptions();
    });
    // Reconnect: the stored ticket makes the new lookup cheaper than the
    // first (0-RTT: no separate QUIC round trip).
    w.lookup(0, "www", Duration::from_secs(5));
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    let second_latency = stub.metrics.lookups[1].latency();
    assert!(stub.metrics.lookups[1].ok);
    assert!(
        second_latency < first_latency,
        "0-RTT reconnect ({second_latency:?}) beats the cold lookup ({first_latency:?})"
    );
    assert_eq!(stub.subscription_count(), 1, "re-subscribed after suspend");
}

#[test]
fn many_stubs_share_one_upstream_subscription() {
    let spec = WorldSpec {
        seed: 23,
        n_stubs: 8,
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    for i in 0..8 {
        w.lookup(i, "www", Duration::from_secs(2));
    }
    w.sim.run_for(Duration::from_secs(5));
    let rec = w.sim.node_ref::<RecursiveResolver>(w.recursive);
    assert_eq!(rec.downstream_subscriber_count(), 8);
    // The recursive aggregates: per lookup step at most one upstream
    // subscription per track (3 steps: root, TLD, auth).
    assert!(
        rec.upstream_subscription_count() <= 3,
        "upstream subs: {} (aggregation at the recursive)",
        rec.upstream_subscription_count()
    );
    // One update fans out to all 8 stubs.
    w.update_record("www", 200);
    w.sim.run_for(Duration::from_secs(3));
    for i in 0..8 {
        let stub = w.sim.node_ref::<StubResolver>(w.stubs[i]);
        assert!(
            !stub.metrics.updates.is_empty(),
            "stub {i} received the push"
        );
    }
}
